"""In-process metrics: counters, gauges, histograms, timers.

Zero-dependency aggregation designed for the simulation pipeline: a
metric is a named slot in a :class:`MetricsRegistry`; histograms keep
streaming aggregates (count/sum/min/max) plus a bounded sample buffer
so snapshots can report percentiles without unbounded memory.

Naming convention (see ``docs/observability.md``): dot-separated,
``<subsystem>.<stage>.<quantity>`` — e.g. ``uplink.mrc.weight``,
``mac.airtime_s``. Unit suffixes (``_s``, ``_db``, ``_m``) are part of
the name.
"""

from __future__ import annotations

import math
import time
from typing import Dict, Iterable, List, Optional

from repro.errors import ConfigurationError
from repro.obs.export import escape_measurement as _escape_measurement
from repro.obs.export import escape_tag as _escape_tag
from repro.obs.fleet.sketch import QuantileSketch, SpaceSavingSketch
from repro.obs.perf.timeseries import TimeSeries, percentile_of

#: Bound on stored histogram samples; aggregates keep counting past it.
MAX_SAMPLES = 2048


class Counter:
    """Monotonically increasing count."""

    kind = "counter"

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ConfigurationError("counters only go up; use a gauge")
        self.value += amount

    def summary(self) -> Dict[str, object]:
        return {"type": self.kind, "value": self.value}


class Gauge:
    """Last-written value (plus how many times it was written)."""

    kind = "gauge"

    __slots__ = ("name", "value", "writes")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: Optional[float] = None
        self.writes = 0

    def set(self, value: float) -> None:
        self.value = float(value)
        self.writes += 1

    def summary(self) -> Dict[str, object]:
        return {"type": self.kind, "value": self.value, "writes": self.writes}


class Histogram:
    """Streaming distribution aggregate with a bounded sample buffer."""

    kind = "histogram"

    __slots__ = ("name", "count", "total", "min", "max", "samples")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf
        self.samples: List[float] = []

    def observe(self, value: float) -> None:
        v = float(value)
        self.count += 1
        self.total += v
        if v < self.min:
            self.min = v
        if v > self.max:
            self.max = v
        if len(self.samples) < MAX_SAMPLES:
            self.samples.append(v)

    def observe_many(self, values: Iterable[float]) -> None:
        for v in values:
            self.observe(v)

    @property
    def mean(self) -> Optional[float]:
        return self.total / self.count if self.count else None

    def percentile(self, p: float) -> Optional[float]:
        """Percentile from the stored samples (None when empty).

        Args:
            p: percentile in [0, 100].
        """
        if not 0 <= p <= 100:
            raise ConfigurationError("percentile must be in [0, 100]")
        if not self.samples:
            return None
        return percentile_of(sorted(self.samples), p)

    def summary(self) -> Dict[str, object]:
        if self.count == 0:
            return {"type": self.kind, "count": 0}
        return {
            "type": self.kind,
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
            "p50": self.percentile(50),
            "p95": self.percentile(95),
        }


class Timer(Histogram):
    """Histogram of elapsed wall-clock seconds with a timing helper."""

    kind = "timer"

    __slots__ = ()

    def time(self) -> "_TimerContext":
        """Context manager recording the block's duration in seconds."""
        return _TimerContext(self)


class _TimerContext:
    __slots__ = ("_timer", "_start")

    def __init__(self, timer: Timer) -> None:
        self._timer = timer
        self._start = 0.0

    def __enter__(self) -> "_TimerContext":
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self._timer.observe(time.perf_counter() - self._start)
        return False


class MetricsRegistry:
    """Named metrics with typed accessors and snapshot export.

    Accessors create the metric on first use; requesting an existing
    name as a different type raises :class:`ConfigurationError` (a
    nearly-always-a-bug situation worth failing loudly on).
    """

    def __init__(self) -> None:
        self._metrics: Dict[str, object] = {}

    def _get(self, name: str, cls):
        metric = self._metrics.get(name)
        if metric is None:
            if not name:
                raise ConfigurationError("metric name must be non-empty")
            metric = cls(name)
            self._metrics[name] = metric
        elif not isinstance(metric, cls) or metric.kind != cls.kind:
            raise ConfigurationError(
                f"metric {name!r} is a {metric.kind}, not a {cls.kind}"
            )
        return metric

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        # A Timer is-a Histogram; keep the kinds distinct.
        metric = self._metrics.get(name)
        if isinstance(metric, Timer):
            raise ConfigurationError(f"metric {name!r} is a timer, not a histogram")
        return self._get(name, Histogram)

    def timer(self, name: str) -> Timer:
        return self._get(name, Timer)

    def timeseries(self, name: str, capacity: Optional[int] = None) -> TimeSeries:
        """A ring-buffer :class:`TimeSeries` (created on first use).

        ``capacity`` only applies at creation; re-requesting an
        existing series with a different capacity is not an error (the
        original ring is kept — capacity is a creation-time hint).
        """
        metric = self._metrics.get(name)
        if metric is None:
            if not name:
                raise ConfigurationError("metric name must be non-empty")
            if capacity is None:
                metric = TimeSeries(name)
            else:
                metric = TimeSeries(name, capacity=capacity)
            self._metrics[name] = metric
        elif not isinstance(metric, TimeSeries):
            raise ConfigurationError(
                f"metric {name!r} is a {metric.kind}, not a timeseries"
            )
        return metric

    def quantile_sketch(
        self,
        name: str,
        alpha: Optional[float] = None,
        max_buckets: Optional[int] = None,
    ) -> QuantileSketch:
        """A mergeable :class:`QuantileSketch` (created on first use).

        Like :meth:`timeseries`, ``alpha``/``max_buckets`` are
        creation-time hints: re-requesting an existing sketch with
        different values keeps the original (the bucket grid is fixed
        at creation).
        """
        metric = self._metrics.get(name)
        if metric is None:
            if not name:
                raise ConfigurationError("metric name must be non-empty")
            kwargs = {}
            if alpha is not None:
                kwargs["alpha"] = alpha
            if max_buckets is not None:
                kwargs["max_buckets"] = max_buckets
            metric = QuantileSketch(name, **kwargs)
            self._metrics[name] = metric
        elif not isinstance(metric, QuantileSketch):
            raise ConfigurationError(
                f"metric {name!r} is a {metric.kind}, "
                "not a quantile_sketch"
            )
        return metric

    def heavy_hitters(
        self, name: str, capacity: Optional[int] = None
    ) -> SpaceSavingSketch:
        """A mergeable :class:`SpaceSavingSketch` (created on first
        use); ``capacity`` is a creation-time hint like
        :meth:`timeseries` capacity."""
        metric = self._metrics.get(name)
        if metric is None:
            if not name:
                raise ConfigurationError("metric name must be non-empty")
            if capacity is None:
                metric = SpaceSavingSketch(name)
            else:
                metric = SpaceSavingSketch(name, capacity=capacity)
            self._metrics[name] = metric
        elif not isinstance(metric, SpaceSavingSketch):
            raise ConfigurationError(
                f"metric {name!r} is a {metric.kind}, "
                "not a heavy_hitters sketch"
            )
        return metric

    def __len__(self) -> int:
        return len(self._metrics)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def names(self) -> List[str]:
        return sorted(self._metrics)

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """All metrics as ``{name: summary}``, sorted by name."""
        return {name: self._metrics[name].summary() for name in self.names()}

    def to_line_protocol(self, timestamp_ns: Optional[int] = None) -> str:
        """One InfluxDB line-protocol line per metric:
        ``<name>,type=<kind> <field>=<value>,... <timestamp_ns>``.

        Measurement names and tag values are escaped per the line
        protocol spec (commas and spaces in measurements; commas,
        spaces, and equals signs in tag keys/values).  Every line
        carries the same nanosecond timestamp — the snapshot instant —
        so an ingester sees one coherent scrape.

        Args:
            timestamp_ns: snapshot time in nanoseconds since the epoch;
                defaults to ``time.time_ns()``.
        """
        if timestamp_ns is None:
            timestamp_ns = time.time_ns()
        ts = int(timestamp_ns)
        lines = []
        for name, summary in self.snapshot().items():
            summary = dict(summary)
            kind = summary.pop("type", "?")
            fields = ",".join(
                f"{_escape_tag(k)}={v}"
                for k, v in summary.items() if v is not None
            )
            measurement = _escape_measurement(name)
            tag = f"type={_escape_tag(str(kind))}"
            lines.append(f"{measurement},{tag} {fields} {ts}")
        return "\n".join(lines)

    def reset(self) -> None:
        self._metrics.clear()

    def to_payload(self) -> Dict[str, Dict[str, object]]:
        """Lossless export for cross-process merging.

        Unlike :meth:`snapshot` (a human/report-facing aggregate view),
        the payload preserves everything :meth:`merge_payload` needs to
        reconstruct equivalent state in another registry: raw counter
        values, gauge write counts, histogram sample buffers, and
        timeseries rings.  The result is pickle-safe (plain dicts,
        lists, floats) so a `ProcessPoolExecutor` worker can ship it
        back to the parent.
        """
        out: Dict[str, Dict[str, object]] = {}
        for name, metric in self._metrics.items():
            if isinstance(metric, TimeSeries):
                entry: Dict[str, object] = {"kind": "timeseries",
                                            **metric.to_payload()}
            elif isinstance(metric, (QuantileSketch, SpaceSavingSketch)):
                entry = {"kind": metric.kind, **metric.to_payload()}
            elif isinstance(metric, Timer) or isinstance(metric, Histogram):
                entry = {
                    "kind": metric.kind,
                    "count": metric.count,
                    "total": metric.total,
                    "min": metric.min,
                    "max": metric.max,
                    "samples": list(metric.samples),
                }
            elif isinstance(metric, Gauge):
                entry = {"kind": "gauge", "value": metric.value,
                         "writes": metric.writes}
            elif isinstance(metric, Counter):
                entry = {"kind": "counter", "value": metric.value}
            else:  # pragma: no cover - registry only stores known kinds
                continue
            out[name] = entry
        return out

    def merge_payload(self, payload: Dict[str, Dict[str, object]]) -> None:
        """Fold a worker registry payload into this registry.

        Counters add, gauges take the worker's last write (when it
        wrote at all), histograms/timers merge aggregates and append
        samples up to the buffer bound, timeseries append samples in
        worker order.  Merging payloads in trial order therefore gives
        the same registry state a serial run would have produced, up to
        histogram-sample truncation at ``MAX_SAMPLES``.
        """
        for name, entry in payload.items():
            kind = entry.get("kind")
            if kind == "counter":
                self.counter(name).inc(float(entry["value"]))
            elif kind == "gauge":
                gauge = self.gauge(name)
                writes = int(entry.get("writes", 0))
                if writes > 0:
                    gauge.value = entry["value"]
                gauge.writes += writes
            elif kind in ("histogram", "timer"):
                hist = self.timer(name) if kind == "timer" else self.histogram(name)
                count = int(entry["count"])
                if count:
                    hist.count += count
                    hist.total += float(entry["total"])
                    hist.min = min(hist.min, float(entry["min"]))
                    hist.max = max(hist.max, float(entry["max"]))
                    room = MAX_SAMPLES - len(hist.samples)
                    if room > 0:
                        hist.samples.extend(entry["samples"][:room])
            elif kind == "timeseries":
                series = self.timeseries(name, capacity=entry.get("capacity"))
                series.merge_payload(entry)
            elif kind == "quantile_sketch":
                self.quantile_sketch(
                    name,
                    alpha=entry.get("alpha"),
                    max_buckets=entry.get("max_buckets"),
                ).merge_payload(entry)
            elif kind == "heavy_hitters":
                self.heavy_hitters(
                    name, capacity=entry.get("capacity")
                ).merge_payload(entry)
            else:
                raise ConfigurationError(
                    f"unknown metric kind {kind!r} in payload entry {name!r}"
                )


# Line-protocol escaping lives in obs.export (shared with the
# telemetry exporters); _escape_measurement/_escape_tag are imported
# at the top of this module under their historical private names.


class NullMetric:
    """No-op stand-in returned while metrics are disabled.

    Implements the union of the metric write APIs so instrumentation
    call sites never branch on type.
    """

    __slots__ = ()

    def inc(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def observe_many(self, values: Iterable[float]) -> None:
        pass

    def sample(self, value: float, t: Optional[float] = None) -> None:
        pass

    def offer(self, key: object, weight: float = 1.0) -> None:
        pass

    def time(self) -> "_NullTimerContext":
        return _NULL_TIMER_CONTEXT


class _NullTimerContext:
    __slots__ = ()

    def __enter__(self) -> "_NullTimerContext":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


#: Shared no-op instances (one allocation for the process lifetime).
NULL_METRIC = NullMetric()
_NULL_TIMER_CONTEXT = _NullTimerContext()
