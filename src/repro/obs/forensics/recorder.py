"""The decode flight recorder: a bounded ring buffer of stage records.

One *record* describes one decode attempt (an uplink transmission, a
coded correlation message, a downlink chunk, an ARQ frame) and carries:

* correlation IDs — ``run_id`` (minted by the driver from its name and
  effective seed), ``trial`` (index within the sweep), ``packet``
  (frame/attempt index within the trial);
* a ``stages`` dict — each pipeline stage contributes one entry of
  plain-data diagnostics (conditioning stats, correlation scores, MRC
  weights, per-bit slicer margins, fault evidence, ...);
* the outcome — bit-error count, erroneous bit indices, and a terminal
  ``failure`` exception name when the decode died outright.

Records contain **no wall-clock data** — every field is a deterministic
function of the seeded simulation, which is what makes the
``workers=N == serial`` record-identity contract testable.

Memory is bounded by ``capacity`` with three sampling policies:

* ``"head"`` — keep the first ``capacity`` records (startup captures);
* ``"tail"`` — ring buffer of the most recent ``capacity`` records;
* ``"errors"`` — keep only records with bit errors or a failure, most
  recent ``capacity`` of them (the triage default: healthy decodes
  vastly outnumber interesting ones).

The disabled path mirrors the profiler's null-object contract: module
level :func:`stage`/:func:`begin`/:func:`commit` are a single boolean
check while recording is off, and :data:`NULL_RECORD_CONTEXT` is the
shared no-op context :func:`ensure_record` hands out.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Dict, List, Optional

from repro.errors import ConfigurationError
from repro.obs import state
from repro.obs.export import jsonable

#: Default ring capacity (records, not bytes — a record is a few KB).
DEFAULT_CAPACITY = 256

#: Supported sampling policies.
POLICIES = ("head", "tail", "errors")


class FlightRecorder:
    """Bounded collector of per-decode stage records.

    Like the rest of :mod:`repro.obs` this is deliberately
    single-threaded; nesting (an ARQ frame opening per-attempt decode
    records) goes through an explicit stack, not locks.

    Attributes:
        capacity: maximum retained records.
        policy: one of :data:`POLICIES`.
        records: the retained records (plain dicts, JSON-safe).
        seen: records committed since the last reset (retained or not).
        errors_seen: committed records that carried errors or a failure.
        dropped: committed records the policy declined to retain (or
            evicted from the ring).
    """

    def __init__(
        self, capacity: int = DEFAULT_CAPACITY, policy: str = "errors"
    ) -> None:
        self.capacity = DEFAULT_CAPACITY
        self.policy = "errors"
        self.configure(capacity=capacity, policy=policy)
        self.records: List[Dict[str, Any]] = []
        self.seen = 0
        self.errors_seen = 0
        self.dropped = 0
        #: Open (begun, not yet committed) records, innermost last.
        self._stack: List[Dict[str, Any]] = []

    def configure(
        self, capacity: Optional[int] = None, policy: Optional[str] = None
    ) -> None:
        """Adjust capacity/policy (existing records are untouched)."""
        if capacity is not None:
            if int(capacity) < 1:
                raise ConfigurationError("recorder capacity must be >= 1")
            self.capacity = int(capacity)
        if policy is not None:
            if policy not in POLICIES:
                raise ConfigurationError(
                    f"recorder policy must be one of {POLICIES}, got {policy!r}"
                )
            self.policy = policy

    def reset(self) -> None:
        self.records.clear()
        self._stack.clear()
        self.seen = 0
        self.errors_seen = 0
        self.dropped = 0

    # -- capture ---------------------------------------------------------------

    @property
    def open_record(self) -> Optional[Dict[str, Any]]:
        """The innermost open record, or None."""
        return self._stack[-1] if self._stack else None

    def begin(
        self,
        kind: str,
        run_id: str = "",
        trial: int = 0,
        packet: int = 0,
    ) -> Dict[str, Any]:
        """Open a record for one decode attempt.

        Nested ``begin`` calls stack: stage data lands in the innermost
        open record until its :meth:`commit`.
        """
        record: Dict[str, Any] = {
            "kind": str(kind),
            "run_id": str(run_id),
            "trial": int(trial),
            "packet": int(packet),
            "stages": {},
            "errors": 0,
            "error_bits": [],
            "failure": None,
        }
        self._stack.append(record)
        return record

    def stage(self, name: str, **fields: Any) -> None:
        """Attach one stage's diagnostics to the innermost open record.

        Fields are coerced to plain JSON-safe python eagerly (numpy
        arrays become lists) so records pickle cheaply across the
        process pool and compare bit-for-bit between serial and pooled
        runs. Re-staging the same name merges/overwrites fields — an
        ARQ frame's later attempts supersede earlier ones, leaving the
        attempt that decided the frame's fate.
        """
        if not self._stack:
            return
        stages = self._stack[-1]["stages"]
        entry = stages.get(name)
        data = jsonable(fields)
        if entry is None:
            stages[name] = data
        else:
            entry.update(data)

    def commit(
        self,
        errors: int = 0,
        error_bits: Any = (),
        failure: Optional[str] = None,
    ) -> None:
        """Close the innermost open record and apply the sampling policy."""
        if not self._stack:
            return
        record = self._stack.pop()
        record["errors"] = int(errors)
        record["error_bits"] = [int(b) for b in error_bits]
        record["failure"] = failure
        self.seen += 1
        interesting = record["errors"] > 0 or failure is not None
        if interesting:
            self.errors_seen += 1
        if self.policy == "errors" and not interesting:
            self.dropped += 1
            return
        if self.policy == "head" and len(self.records) >= self.capacity:
            self.dropped += 1
            return
        self._retain(record)

    def _retain(self, record: Dict[str, Any]) -> None:
        """Append with ring eviction (head policy never gets here full)."""
        self.records.append(record)
        if len(self.records) > self.capacity:
            del self.records[0]
            self.dropped += 1

    # -- cross-process merge ---------------------------------------------------

    def to_payload(self) -> Dict[str, Any]:
        """Lossless export for the engine's worker->parent channel."""
        return {
            "seen": self.seen,
            "errors_seen": self.errors_seen,
            "dropped": self.dropped,
            "records": list(self.records),
        }

    def absorb(self, payload: Dict[str, Any]) -> None:
        """Fold a worker recorder's :meth:`to_payload` into this one.

        The engine merges payloads in task order and each worker's
        retained records are (a prefix-or-filter of) its task's records
        under the same policy, so absorbing reproduces exactly the
        record sequence a serial run would have retained.
        """
        self.seen += int(payload.get("seen", 0))
        self.errors_seen += int(payload.get("errors_seen", 0))
        self.dropped += int(payload.get("dropped", 0))
        for record in payload.get("records", ()):
            if self.policy == "head" and len(self.records) >= self.capacity:
                self.dropped += 1
                continue
            self._retain(record)


# -- module-level capture API (the zero-overhead call sites) -------------------


def begin(kind: str, run_id: str = "", trial: int = 0, packet: int = 0) -> None:
    """Open a record on the live recorder (no-op while recording is off)."""
    if state.recording_enabled():
        state.get_recorder().begin(
            kind, run_id=run_id, trial=trial, packet=packet
        )


def stage(name: str, **fields: Any) -> None:
    """Stage diagnostics into the open record (one boolean check when off)."""
    if state.recording_enabled():
        state.get_recorder().stage(name, **fields)


def commit(
    errors: int = 0, error_bits: Any = (), failure: Optional[str] = None
) -> None:
    """Commit the open record (no-op while recording is off)."""
    if state.recording_enabled():
        state.get_recorder().commit(
            errors=errors, error_bits=error_bits, failure=failure
        )


class _EnsureRecordContext:
    """Live context: owns an ad-hoc record unless one is already open.

    Decoders use this so direct calls (outside a driver that minted
    correlation IDs) still produce records, while driver-opened records
    simply accumulate the decoder's stages.
    """

    __slots__ = ("_kind", "_owned")

    def __init__(self, kind: str) -> None:
        self._kind = kind
        self._owned = False

    def __enter__(self) -> "_EnsureRecordContext":
        recorder = state.get_recorder()
        if recorder.open_record is None:
            recorder.begin(self._kind, run_id="adhoc")
            self._owned = True
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if self._owned:
            recorder = state.get_recorder()
            if exc is not None:
                recorder.commit(failure=type(exc).__name__)
            elif recorder.open_record is not None:
                recorder.commit()
        return False


class _NullRecordContext:
    __slots__ = ()

    def __enter__(self) -> "_NullRecordContext":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


#: Shared disabled-path context (one allocation per process).
NULL_RECORD_CONTEXT = _NullRecordContext()


def ensure_record(kind: str):
    """A record context for a decoder entry point.

    While recording is on: opens an ad-hoc record if none is open
    (committing it on exit, with the exception name as ``failure`` if
    the decode raises); nests silently otherwise. While off: the shared
    no-op context.
    """
    if state.recording_enabled():
        return _EnsureRecordContext(kind)
    return NULL_RECORD_CONTEXT
