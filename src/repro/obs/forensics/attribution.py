"""Root-cause attribution for recorded decode failures.

Given a flight-recorder record (see
:mod:`repro.obs.forensics.recorder`), the attribution engine walks the
recorded pipeline stages for each erroneous bit — and for frame-level
failures — and assigns the root-cause label of the stage that lost the
decision margin:

``fault_window_overlap``
    The erroneous bit's transmission window intersects injected-fault
    evidence (dropped packets, unpowered tag, corrupted measurements);
    the ``detail`` names the responsible injector family.
``arq_exhaustion``
    An ARQ frame burned through ``max_attempts`` without a CRC pass.
``shed``
    The serve gateway dropped the request under backpressure before it
    reached a decoder; the ``detail`` carries the shed reason
    (``queue_full``, ``tag_quarantined``, ``egress_full``, ``drain``).
``deadline_abandoned``
    The request's latency budget could not be met at dispatch time and
    the gateway abandoned it early.
``worker_lost``
    The decode worker crashed or hung past the supervised retry budget
    and the request was dead-lettered.
``erasure``
    No measurement survived into the bit's slot (zero vote support).
``mrc_weight_collapse``
    One sub-channel dominates the MRC combiner (its weight share
    exceeds :data:`WEIGHT_COLLAPSE_SHARE`), so a single bad channel
    controls the decision.
``bad_subchannel_selection``
    The preamble-correlation selection barely separates chosen from
    rejected sub-channels (ratio below :data:`SELECTION_RATIO_FLOOR`).
``low_margin_slice``
    The pipeline was healthy but the slicer decided inside/near the
    hysteresis dead band — ordinary noise-limited errors land here.
``detector_noise``
    Downlink analytic-model errors (missed peaks / spurious ones) that
    are not explained by a brownout window — the envelope detector's
    intrinsic operating point.
``unknown``
    No recorded stage explains the error (e.g. recording started
    mid-pipeline).

The walk is evidence-ordered: injected-fault overlap wins over
structural labels, which win over the low-margin fallback, so the chaos
suite's "each injector family maps to its label" contract holds.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

#: All labels :func:`attribute_record` can emit, most specific first.
LABELS = (
    "fault_window_overlap",
    "arq_exhaustion",
    "shed",
    "deadline_abandoned",
    "worker_lost",
    "erasure",
    "mrc_weight_collapse",
    "bad_subchannel_selection",
    "low_margin_slice",
    "detector_noise",
    "unknown",
)

#: A single sub-channel carrying more than this share of total |weight|
#: means the combiner has collapsed onto it.
WEIGHT_COLLAPSE_SHARE = 0.9

#: Selected-vs-rejected preamble-correlation ratio below which the
#: sub-channel selection is considered indiscriminate.
SELECTION_RATIO_FLOOR = 1.5

#: Exception names that are direct fault-injection outcomes.
_FAULT_FAILURES = {
    "BrownoutError": "brownout",
    "FaultInjectionError": "fault",
}

#: Serve-layer dispositions: the gateway never decoded these requests,
#: and the record's ``serve`` stage says why.
_SERVE_FAILURES = {
    "Shed": "shed",
    "DeadlineAbandoned": "deadline_abandoned",
    "WorkerLost": "worker_lost",
}

#: Injector families that corrupt measurement values (vs drop/unpower).
_CORRUPTING_INJECTORS = ("csi_dropout", "nan", "interference", "agc_jump")


def _bit_units(faults: Dict[str, Any], bit: int) -> range:
    """Transmission-unit indices carrying payload bit ``bit``."""
    offset = int(faults.get("unit_offset", 0))
    per_bit = max(1, int(faults.get("units_per_bit", 1)))
    return range(offset + bit * per_bit, offset + (bit + 1) * per_bit)


def _fault_detail(
    faults: Dict[str, Any], units: Iterable[int], smear: int = 0
) -> Optional[str]:
    """Injector family whose evidence overlaps ``units``, if any.

    ``smear`` widens the bit's unit window for evidence that acts
    through the conditioning normalizer (dark tag, corrupted values):
    a dark or saturated stretch shifts the moving-average baseline for
    every bit within the conditioning window, so its errors land up to
    ``window_s / unit_s`` units away from the fault itself.  Dropped
    packets only remove samples, so they stay direct-overlap.
    """
    units = set(units)
    injectors = list(faults.get("injectors", ()))
    dark = set(faults.get("dark_units", ()))
    dropped = set(faults.get("dropped_units", ()))
    corrupted = set(faults.get("corrupted_units", ()))
    if smear and units:
        lo, hi = min(units) - smear, max(units) + smear
        smeared = set(range(lo, hi + 1))
    else:
        smeared = units
    if units & dark or smeared & dark:
        return "brownout" if "brownout" in injectors else "unpowered"
    if units & dropped:
        return "outage" if "outage" in injectors else "dropped"
    if units & corrupted or smeared & corrupted:
        for name in _CORRUPTING_INJECTORS:
            if name in injectors:
                return name
        return "corrupted"
    return None


def _smear_radius(stages: Dict[str, Any]) -> int:
    """Conditioning-window influence radius in transmission units."""
    faults = stages.get("faults") or {}
    cond = stages.get("condition") or {}
    unit_s = faults.get("unit_s")
    window_s = cond.get("window_s")
    if not unit_s or not window_s:
        return 0
    return int(-(-float(window_s) // float(unit_s)))


def _margin_at(stages: Dict[str, Any], bit: int) -> Optional[float]:
    """Per-bit slicer/correlation decision margin, if recorded."""
    for stage_name in ("slice", "correlate"):
        stage = stages.get(stage_name)
        if not stage:
            continue
        margins = stage.get("bit_margins")
        if margins is not None and 0 <= bit < len(margins):
            value = margins[bit]
            if isinstance(value, (int, float)):
                return float(value)
    return None


def _attribute_bit(
    stages: Dict[str, Any], bit: int
) -> Tuple[str, str, Optional[float]]:
    """(label, detail, margin) for one erroneous payload bit."""
    margin = _margin_at(stages, bit)

    faults = stages.get("faults")
    if faults:
        detail = _fault_detail(
            faults, _bit_units(faults, bit), smear=_smear_radius(stages)
        )
        if detail is not None:
            return "fault_window_overlap", detail, margin

    slice_stage = stages.get("slice")
    if slice_stage:
        support = slice_stage.get("support")
        if support is not None and 0 <= bit < len(support):
            if not support[bit]:
                return "erasure", "zero vote support", margin

    combine = stages.get("combine")
    if combine:
        share = combine.get("weight_max_share")
        if share is not None and float(share) > WEIGHT_COLLAPSE_SHARE:
            return (
                "mrc_weight_collapse",
                f"max weight share {float(share):.3f}",
                margin,
            )

    select = stages.get("select")
    if select:
        ratio = select.get("selection_ratio")
        if ratio is not None and float(ratio) < SELECTION_RATIO_FLOOR:
            return (
                "bad_subchannel_selection",
                f"selection ratio {float(ratio):.3f}",
                margin,
            )

    if margin is not None:
        return "low_margin_slice", f"margin {margin:.4g}", margin
    return "unknown", "no stage evidence", margin


def _frame_failure_label(record: Dict[str, Any]) -> Optional[Tuple[str, str]]:
    """Label for records that died outright (no per-bit evidence)."""
    failure = record.get("failure")
    stages = record.get("stages", {})
    if failure == "arq_exhaustion":
        arq = stages.get("arq") or {}
        attempts = arq.get("attempts", "all")
        return "arq_exhaustion", f"{attempts} attempts without CRC pass"
    if failure in _SERVE_FAILURES:
        serve = stages.get("serve") or {}
        reason = serve.get("reason", "")
        label = _SERVE_FAILURES[failure]
        return label, reason or label
    if failure in _FAULT_FAILURES:
        return "fault_window_overlap", _FAULT_FAILURES[failure]
    if failure is not None:
        # Any abort (DecodeError, ConfigurationError from a starved
        # decoder, ...) with injected-fault evidence on record is the
        # faults' doing: packets were dropped or the tag went dark
        # before the decoder ever had a chance.
        faults = stages.get("faults")
        if faults is not None:
            dark = len(list(faults.get("dark_units", ())))
            dropped = len(list(faults.get("dropped_units", ())))
            corrupted = len(list(faults.get("corrupted_units", ())))
            injectors = list(faults.get("injectors", ()))
            if dark or dropped or corrupted:
                if dark >= max(dropped, corrupted):
                    detail = (
                        "brownout" if "brownout" in injectors
                        else "unpowered"
                    )
                elif dropped >= corrupted:
                    detail = (
                        "outage" if "outage" in injectors else "dropped"
                    )
                else:
                    detail = next(
                        (n for n in _CORRUPTING_INJECTORS
                         if n in injectors),
                        "corrupted",
                    )
                return "fault_window_overlap", detail
        if failure == "DecodeError":
            return "unknown", "decode failed before slicing"
        return "unknown", f"failure {failure}"
    return None


def attribute_record(record: Dict[str, Any]) -> Dict[str, Any]:
    """Attribute every error in one record to a root-cause label.

    Returns ``{"label", "detail", "bits"}`` where ``label`` is the
    frame-level verdict (the failure's label, else the modal per-bit
    label, else ``None`` for clean records) and ``bits`` holds one
    ``{"bit", "label", "detail", "margin"}`` entry per erroneous bit.
    """
    stages = record.get("stages", {})
    bits: List[Dict[str, Any]] = []
    for bit in record.get("error_bits", ()):
        label, detail, margin = _attribute_bit(stages, int(bit))
        bits.append(
            {"bit": int(bit), "label": label, "detail": detail,
             "margin": margin}
        )

    failure_label = _frame_failure_label(record)
    downlink = stages.get("downlink_model")
    if failure_label is not None:
        label, detail = failure_label
    elif downlink is not None and record.get("errors", 0):
        # Analytic-model chunks carry summary counts, not per-bit
        # evidence: split the verdict between the brownout window and
        # the detector's intrinsic miss/false-positive floor.
        brownout = int(downlink.get("brownout_misses", 0) or 0)
        noise = int(record.get("errors", 0)) - brownout
        if brownout > noise:
            label = "fault_window_overlap"
            detail = f"brownout ({brownout} dark-bit misses)"
        else:
            label = "detector_noise"
            detail = (
                f"{noise} detector errors "
                f"(miss p={downlink.get('miss_probability')})"
            )
    elif bits:
        counts: Dict[str, int] = {}
        for entry in bits:
            counts[entry["label"]] = counts.get(entry["label"], 0) + 1
        label = max(counts, key=lambda name: (counts[name], name))
        detail = next(
            e["detail"] for e in bits if e["label"] == label
        )
    elif record.get("errors", 0):
        label, detail = "unknown", "errors without recorded bit indices"
    else:
        label, detail = None, ""
    return {"label": label, "detail": detail, "bits": bits}


def summarize(records: Sequence[Dict[str, Any]]) -> Dict[str, Any]:
    """Aggregate attribution over a record set.

    Returns a JSON-safe summary: counts by label at both bit and frame
    granularity, the per-stage error budget (each label's share of
    attributed error bits), decision margins of erroneous bits (for
    histograms), and the worst offending records.
    """
    by_label: Dict[str, int] = {}
    frames_by_label: Dict[str, int] = {}
    margins: List[float] = []
    worst: List[Dict[str, Any]] = []
    total_error_bits = 0
    records_with_errors = 0

    for record in records:
        verdict = attribute_record(record)
        if verdict["label"] is None:
            continue
        records_with_errors += 1
        frames_by_label[verdict["label"]] = (
            frames_by_label.get(verdict["label"], 0) + 1
        )
        for entry in verdict["bits"]:
            total_error_bits += 1
            by_label[entry["label"]] = by_label.get(entry["label"], 0) + 1
            if entry["margin"] is not None:
                margins.append(entry["margin"])
        worst.append(
            {
                "run_id": record.get("run_id", ""),
                "trial": record.get("trial", 0),
                "packet": record.get("packet", 0),
                "kind": record.get("kind", ""),
                "errors": record.get("errors", 0),
                "failure": record.get("failure"),
                "label": verdict["label"],
                "detail": verdict["detail"],
            }
        )

    worst.sort(
        key=lambda r: (-r["errors"], r["run_id"], r["trial"], r["packet"])
    )
    budget = {
        label: count / total_error_bits
        for label, count in sorted(by_label.items())
    } if total_error_bits else {}
    return {
        "total_records": len(records),
        "records_with_errors": records_with_errors,
        "total_error_bits": total_error_bits,
        "by_label": dict(sorted(by_label.items())),
        "frames_by_label": dict(sorted(frames_by_label.items())),
        "error_budget": budget,
        "margins": margins,
        "worst": worst[:10],
    }
