"""Crash-safe flight-recorder flush: atexit + SIGTERM.

The flight recorder lives in process memory, which is exactly where
evidence dies when a soak run is OOM-killed, a CI job hits its wall
clock, or an operator Ctrl-backslashes a wedged gateway.  Arming
:func:`install_crash_flush` registers one idempotent handler on both
``atexit`` and ``SIGTERM`` that writes whatever the recorder currently
holds to the ``--record`` JSONL path, stamped ``interrupted: true`` in
the header so triage knows the artifact is a partial capture rather
than a completed run.

Contract:

* **Idempotent** — the flush fires at most once no matter how many of
  the registered paths trigger (SIGTERM then atexit, repeated
  installs, explicit :func:`flush_now`).
* **Disarmable** — the normal end-of-run artifact write calls
  :func:`disarm` so a clean exit produces exactly the usual artifact,
  with the prior ``SIGTERM`` disposition restored.
* **Chained** — a previously installed ``SIGTERM`` handler still runs
  after the flush; with no prior handler the default die-by-signal
  disposition is re-raised so exit status stays honest.
* **Best-effort** — flush failures during interpreter teardown are
  swallowed; a crash handler must never mask the original failure.

Beyond the flight recorder, other crash-worthy streams (the serve
telemetry snapshotter) can hook the same atexit/SIGTERM triggers via
:func:`register_aux_flush` — one handler pair serves every armed
stream, and the SIGTERM disposition is only restored once the last
armed party stands down.

Signal registration only works on the main thread; elsewhere the
handler degrades to atexit-only coverage.
"""

from __future__ import annotations

import atexit
import os
import signal
import sys
import threading
from typing import Any, Callable, Dict, Optional

_lock = threading.Lock()

#: Armed state: {"path": str, "meta": dict}.
_armed: Optional[Dict[str, Any]] = None

#: True once the flush has fired (further triggers are no-ops until
#: the next install re-arms).
_fired = False

#: Auxiliary flush callbacks, keyed by registration name.  Each is
#: called with ``interrupted`` (bool) on atexit/SIGTERM and popped
#: first, so it runs at most once per registration.
_aux: Dict[str, Callable[[bool], None]] = {}

#: True while the atexit/SIGTERM handler pair is installed.
_handlers_on = False

#: Prior SIGTERM handler to chain/restore (None = default or
#: unavailable).
_prev_sigterm: Optional[Any] = None


def _flush(interrupted: bool) -> Optional[str]:
    """Write the recorder's current records; at most once per arm."""
    global _fired
    with _lock:
        if _armed is None or _fired:
            return None
        _fired = True
        path = _armed["path"]
        meta = dict(_armed["meta"])
    try:
        from repro import obs
        from repro.obs.forensics.format import write_jsonl

        recorder = obs.get_recorder()
        payload = recorder.to_payload()
        meta.update({
            "interrupted": interrupted,
            "policy": recorder.policy,
            "capacity": recorder.capacity,
            "recorder": {
                "seen": payload["seen"],
                "errors_seen": payload["errors_seen"],
                "dropped": payload["dropped"],
            },
        })
        return write_jsonl(path, payload["records"], meta=meta)
    except Exception:  # noqa: BLE001 - teardown must not raise
        return None


def _run_aux(interrupted: bool) -> None:
    """Run (and consume) every registered aux flush, best-effort."""
    with _lock:
        callbacks = list(_aux.items())
        _aux.clear()
    for _name, callback in callbacks:
        try:
            callback(interrupted)
        except Exception:  # noqa: BLE001 - teardown must not raise
            pass


def _on_atexit() -> None:
    _flush(interrupted=True)
    _run_aux(interrupted=True)


def _on_sigterm(signum: int, frame: Any) -> None:
    path = _flush(interrupted=True)
    _run_aux(interrupted=True)
    if path is not None:
        try:
            sys.stderr.write(
                f"SIGTERM: partial forensics records flushed to {path}\n"
            )
        except Exception:  # noqa: BLE001
            pass
    prev = _prev_sigterm
    if callable(prev):
        prev(signum, frame)
        return
    # Restore the default disposition and re-raise so the process
    # still dies "killed by SIGTERM" (exit status matters to CI).
    signal.signal(signal.SIGTERM, signal.SIG_DFL)
    os.kill(os.getpid(), signal.SIGTERM)


def _ensure_handlers() -> None:
    """Install the atexit + SIGTERM handler pair once."""
    global _handlers_on, _prev_sigterm
    with _lock:
        if _handlers_on:
            return
        _handlers_on = True
    atexit.register(_on_atexit)
    try:
        previous = signal.signal(signal.SIGTERM, _on_sigterm)
    except ValueError:
        # Not the main thread: atexit still covers normal interpreter
        # shutdown; signals stay with whoever owns them.
        previous = None
    else:
        if previous in (signal.SIG_DFL, signal.SIG_IGN, None):
            previous = None
    with _lock:
        _prev_sigterm = previous


def _maybe_release_handlers() -> None:
    """Remove the handler pair once no stream needs it any more."""
    global _handlers_on, _prev_sigterm
    with _lock:
        if not _handlers_on or _armed is not None or _aux:
            return
        _handlers_on = False
        prev = _prev_sigterm
        _prev_sigterm = None
    atexit.unregister(_on_atexit)
    try:
        current = signal.getsignal(signal.SIGTERM)
        if current is _on_sigterm:
            signal.signal(signal.SIGTERM, prev or signal.SIG_DFL)
    except ValueError:
        pass


def install_crash_flush(
    path: str, meta: Optional[Dict[str, Any]] = None
) -> None:
    """Arm the atexit + SIGTERM flush targeting ``path``.

    Re-installing simply retargets (and re-arms) the existing handler;
    handlers are never stacked.
    """
    global _armed, _fired
    with _lock:
        _armed = {"path": str(path), "meta": dict(meta or {})}
        _fired = False
    _ensure_handlers()


def register_aux_flush(
    name: str, callback: Callable[[bool], None]
) -> None:
    """Register an auxiliary crash-flush callback under ``name``.

    The callback is invoked with ``interrupted=True`` on atexit or
    SIGTERM, at most once per registration (it is consumed when run).
    Re-registering the same name replaces the callback.  Streams that
    close cleanly must call :func:`unregister_aux_flush`.
    """
    with _lock:
        _aux[str(name)] = callback
    _ensure_handlers()


def unregister_aux_flush(name: str) -> None:
    """Remove an aux callback; releases the handlers when it was the
    last armed party.  No-op for unknown names."""
    with _lock:
        _aux.pop(str(name), None)
    _maybe_release_handlers()


def disarm() -> None:
    """Disarm without flushing; restores the prior SIGTERM handler
    (unless aux streams are still registered, which keep it armed).

    Safe to call when not armed (no-op), so every CLI exit path can
    call it unconditionally.
    """
    global _armed, _fired
    with _lock:
        _armed = None
        _fired = False
    _maybe_release_handlers()


def armed() -> bool:
    """True when a crash flush is currently armed (test hook)."""
    with _lock:
        return _armed is not None and not _fired


def flush_now(interrupted: bool = True) -> Optional[str]:
    """Trigger the flush explicitly (test hook); returns the path."""
    return _flush(interrupted=interrupted)
