"""JSONL artifact format for flight-recorder records.

A forensics artifact is a UTF-8 text file: line 1 is a header object
(schema tag + recorder counters + whatever run metadata the writer
passes), every following line is one record exactly as the
:class:`~repro.obs.forensics.recorder.FlightRecorder` retained it.
JSONL keeps artifacts streamable and greppable — ``wc -l`` counts
records, ``head -1`` shows provenance — and the per-line encoding
reuses :mod:`repro.obs.export`'s lossless NaN/Infinity string round
trip.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.obs.export import decode_nonfinite, dumps_line, jsonable

#: Schema tag stamped into (and required from) the header line.
SCHEMA = "repro.forensics/1"


def write_jsonl(
    path: str,
    records: Sequence[Dict[str, Any]],
    meta: Optional[Dict[str, Any]] = None,
) -> str:
    """Write records as a forensics JSONL artifact; returns ``path``.

    ``meta`` (recorder counters, run name, seed, policy, ...) is merged
    into the header line after the schema tag.
    """
    header: Dict[str, Any] = {"schema": SCHEMA, "records": len(records)}
    if meta:
        header.update(jsonable(meta))
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(dumps_line(header))
        fh.write("\n")
        for record in records:
            fh.write(dumps_line(record))
            fh.write("\n")
    return path


def read_jsonl(path: str) -> Tuple[Dict[str, Any], List[Dict[str, Any]]]:
    """Read a forensics artifact; returns ``(header, records)``.

    Raises :class:`~repro.errors.ConfigurationError` on a missing or
    mismatched schema tag so stale/foreign files fail loudly rather
    than attributing garbage.
    """
    with open(path, "r", encoding="utf-8") as fh:
        first = fh.readline()
        if not first.strip():
            raise ConfigurationError(f"{path}: empty forensics artifact")
        header = json.loads(first)
        if not isinstance(header, dict) or header.get("schema") != SCHEMA:
            raise ConfigurationError(
                f"{path}: not a {SCHEMA} artifact "
                f"(header schema {header.get('schema') if isinstance(header, dict) else None!r})"
            )
        records: List[Dict[str, Any]] = []
        for line in fh:
            if line.strip():
                records.append(decode_nonfinite(json.loads(line)))
    return decode_nonfinite(header), records
