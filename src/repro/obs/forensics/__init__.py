"""Decode flight recorder + failure-attribution forensics.

Metrics and spans (PR 1) say *how much* went wrong and the profiler
(PR 3) says *how slow* — this package answers *why a bit flipped*. A
bounded ring-buffer :class:`FlightRecorder` captures per-packet stage
intermediates from every core decoder (conditioning stats, per
sub-channel preamble correlations, MRC weights, slicer margins and
hysteresis state, chip-correlation peaks, active fault injectors), and
the attribution engine walks those stages for each erroneous bit/frame
to assign a root-cause label: which stage lost the decision margin.

The contract matches the rest of :mod:`repro.obs`: recording is off by
default and every capture site is a single boolean check
(:func:`repro.obs.state.recording_enabled`), so the hot decode paths
pay effectively nothing — the same zero-overhead discipline as the
:class:`~repro.obs.perf.profiler.Profiler`.

Usage::

    from repro import obs
    from repro.obs.forensics import attribution

    obs.configure(recording=True)
    run_uplink_ber(0.6, 12, seed=7, faults=plan)
    summary = attribution.summarize(obs.get_recorder().records)
    print(summary["by_label"])

Correlation IDs (run/trial/packet) are minted by the drivers in
:mod:`repro.sim.link` and survive process-pool fan-out: worker-side
records ship back through the :mod:`repro.sim.engine` payload channel
and merge into the parent recorder in task order, so ``workers=N``
yields records identical to serial.
"""

from __future__ import annotations

from repro.obs.forensics.attribution import (
    LABELS,
    attribute_record,
    summarize,
)
from repro.obs.forensics.crash_flush import (
    disarm as disarm_crash_flush,
    install_crash_flush,
    register_aux_flush,
    unregister_aux_flush,
)
from repro.obs.forensics.format import read_jsonl, write_jsonl
from repro.obs.forensics.recorder import (
    DEFAULT_CAPACITY,
    POLICIES,
    FlightRecorder,
    begin,
    commit,
    ensure_record,
    stage,
)
from repro.obs.forensics.report import render_forensics

__all__ = [
    "DEFAULT_CAPACITY",
    "FlightRecorder",
    "LABELS",
    "POLICIES",
    "attribute_record",
    "begin",
    "commit",
    "disarm_crash_flush",
    "ensure_record",
    "install_crash_flush",
    "read_jsonl",
    "register_aux_flush",
    "render_forensics",
    "stage",
    "summarize",
    "unregister_aux_flush",
    "write_jsonl",
]
