"""Failure-attribution report rendering.

Turns an :func:`repro.obs.forensics.attribution.summarize` summary into
the same ASCII-table style the rest of the CLI prints: counts by root
cause, the worst offending packets, and a margin histogram showing how
close the slicer decisions were to the dead band.
"""

from __future__ import annotations

import math
from typing import Any, Dict, List, Optional, Sequence

from repro.analysis.report import format_table

#: Histogram resolution for the margin distribution.
HISTOGRAM_BINS = 8
_BAR_WIDTH = 32


def margin_histogram(
    margins: Sequence[float], bins: int = HISTOGRAM_BINS
) -> List[Dict[str, Any]]:
    """Fixed-width histogram of finite decision margins.

    Returns ``[{"low", "high", "count"}, ...]``; empty when no finite
    margins were recorded.
    """
    finite = [float(m) for m in margins if isinstance(m, (int, float))
              and math.isfinite(float(m))]
    if not finite:
        return []
    lo, hi = min(finite), max(finite)
    if hi <= lo:
        return [{"low": lo, "high": hi, "count": len(finite)}]
    width = (hi - lo) / bins
    counts = [0] * bins
    for value in finite:
        index = min(int((value - lo) / width), bins - 1)
        counts[index] += 1
    return [
        {"low": lo + i * width, "high": lo + (i + 1) * width, "count": c}
        for i, c in enumerate(counts)
    ]


def _render_histogram(margins: Sequence[float]) -> str:
    rows = margin_histogram(margins)
    if not rows:
        return "(no decision margins recorded)"
    peak = max(row["count"] for row in rows)
    lines = []
    for row in rows:
        bar = "#" * max(
            1 if row["count"] else 0,
            round(_BAR_WIDTH * row["count"] / peak) if peak else 0,
        )
        lines.append(
            f"  [{row['low']:+10.4g}, {row['high']:+10.4g})"
            f"  {row['count']:6d}  {bar}"
        )
    return "\n".join(lines)


def render_forensics(
    summary: Dict[str, Any], header: Optional[Dict[str, Any]] = None
) -> str:
    """Full failure-attribution report for a forensics summary.

    ``header`` is the JSONL artifact header (recorder counters and run
    metadata) when the summary came from a file.
    """
    sections: List[str] = []

    overview_rows: List[List[Any]] = []
    if header:
        for key in ("run", "name", "policy", "capacity", "seed"):
            if key in header:
                overview_rows.append([key, header[key]])
        for key in ("seen", "errors_seen", "dropped"):
            if key in header:
                overview_rows.append([f"recorder.{key}", header[key]])
    overview_rows.extend(
        [
            ["records", summary.get("total_records", 0)],
            ["records with errors", summary.get("records_with_errors", 0)],
            ["error bits", summary.get("total_error_bits", 0)],
        ]
    )
    sections.append(
        format_table(["field", "value"], overview_rows, title="forensics")
    )

    by_label = summary.get("by_label") or {}
    frames = summary.get("frames_by_label") or {}
    budget = summary.get("error_budget") or {}
    if by_label or frames:
        labels = sorted(set(by_label) | set(frames))
        rows = [
            [
                label,
                by_label.get(label, 0),
                frames.get(label, 0),
                f"{100.0 * budget.get(label, 0.0):.1f}%",
            ]
            for label in labels
        ]
        sections.append(
            format_table(
                ["root cause", "error bits", "frames", "bit share"],
                rows,
                title="attribution",
            )
        )
    else:
        sections.append("attribution\n(no errors recorded)")

    worst = summary.get("worst") or []
    if worst:
        rows = [
            [
                w.get("run_id", ""),
                w.get("trial", 0),
                w.get("packet", 0),
                w.get("kind", ""),
                w.get("errors", 0),
                w.get("failure") or "",
                w.get("label", ""),
                w.get("detail", ""),
            ]
            for w in worst
        ]
        sections.append(
            format_table(
                ["run", "trial", "pkt", "kind", "errs", "failure",
                 "label", "detail"],
                rows,
                title="worst packets",
            )
        )

    sections.append(
        "margin histogram (erroneous bits)\n"
        + _render_histogram(summary.get("margins") or [])
    )
    return "\n\n".join(sections)
