"""Process-wide registry of the simulation's bounded ``lru_cache``\\ s.

Every memoized hot-path helper (Friis gains, code pairs, chip
templates, subcarrier grids) registers itself here at import time, so
one call can answer "how are the caches doing?" across the whole
pipeline.  :func:`publish` mirrors each cache's hit/miss/size counters
into the metrics registry as ``cache.<name>.*`` gauges; the manifest
builder calls it before snapshotting, so every run manifest carries
cache effectiveness alongside the decode metrics.

The caches themselves stay plain :func:`functools.lru_cache` objects —
registration only records the wrapper so ``cache_info()`` can be read
later; it adds zero overhead to cache lookups.
"""

from __future__ import annotations

from typing import Any, Callable, Dict

from repro.errors import ConfigurationError

#: name -> lru_cache-wrapped callable (must expose ``cache_info()``).
_REGISTRY: Dict[str, Callable[..., Any]] = {}


def register_cache(name: str, fn: Callable[..., Any]) -> Callable[..., Any]:
    """Register a bounded lru_cache under ``name``; returns ``fn``.

    Idempotent for the same function object (modules may be reloaded);
    a different function under an existing name is a naming collision.
    """
    if not hasattr(fn, "cache_info"):
        raise ConfigurationError(
            f"cache {name!r} has no cache_info(); wrap it with "
            "functools.lru_cache(maxsize=...) first"
        )
    current = _REGISTRY.get(name)
    if current is not None and current is not fn:
        raise ConfigurationError(f"cache name {name!r} already registered")
    _REGISTRY[name] = fn
    return fn


def registered_caches() -> Dict[str, Callable[..., Any]]:
    """Snapshot of the registered caches (name -> wrapper)."""
    return dict(_REGISTRY)


def cache_stats() -> Dict[str, Dict[str, Any]]:
    """Current hit/miss/size counters for every registered cache."""
    stats: Dict[str, Dict[str, Any]] = {}
    for name, fn in sorted(_REGISTRY.items()):
        info = fn.cache_info()
        total = info.hits + info.misses
        stats[name] = {
            "hits": info.hits,
            "misses": info.misses,
            "currsize": info.currsize,
            "maxsize": info.maxsize,
            "hit_rate": (info.hits / total) if total else 0.0,
        }
    return stats


def scan_lru_caches(package: str = "repro") -> Dict[str, Callable[..., Any]]:
    """Find every ``lru_cache`` wrapper defined under *package*.

    Imports each submodule (import is what registers caches anyway) and
    duck-types module- and class-level attributes for the lru_cache
    wrapper API (``cache_info`` + ``cache_parameters``).  Wrappers are
    attributed to the module that *defines* them — re-exports are
    skipped via the wrapped function's ``__module__`` — so each cache
    appears exactly once, keyed ``module.qualname``.

    This is the audit half of the registry contract: the registry says
    which caches someone remembered to register; the scan says which
    exist.  ``unregistered_caches()`` is their difference, and the
    cache-registry test asserts it is empty, so adding a new memoized
    helper without registering it fails CI instead of silently
    vanishing from the manifests.
    """
    import importlib
    import inspect
    import pkgutil

    root = importlib.import_module(package)
    found: Dict[str, Callable[..., Any]] = {}
    seen: set = set()
    mod_names = [package]
    if hasattr(root, "__path__"):
        mod_names += [
            name for _, name, _ in pkgutil.walk_packages(
                root.__path__, prefix=package + "."
            )
        ]
    for mod_name in sorted(mod_names):
        try:
            mod = importlib.import_module(mod_name)
        except Exception:  # pragma: no cover - optional deps may be absent
            continue
        candidates = list(vars(mod).items())
        for cls_name, cls in list(vars(mod).items()):
            if inspect.isclass(cls) and cls.__module__ == mod_name:
                candidates += [
                    (f"{cls_name}.{attr}", obj)
                    for attr, obj in vars(cls).items()
                ]
        for attr, obj in candidates:
            # static/classmethod descriptors hide the wrapper one level
            # down; plain methods and functions are the wrapper itself.
            fn = getattr(obj, "__func__", obj)
            if not (callable(fn) and hasattr(fn, "cache_info")
                    and hasattr(fn, "cache_parameters")):
                continue
            if getattr(
                getattr(fn, "__wrapped__", fn), "__module__", None
            ) != mod_name:
                continue
            if id(fn) in seen:
                continue
            seen.add(id(fn))
            found[f"{mod_name}.{attr}"] = fn
    return found


def unregistered_caches(package: str = "repro") -> Dict[str, Callable[..., Any]]:
    """``lru_cache`` wrappers under *package* missing from the registry.

    Empty dict means the registry is complete; anything returned is a
    memoized helper whose hit/miss counters would never reach the
    manifests.
    """
    # Scan first: importing the modules is what registers their caches,
    # so the registry snapshot must be taken *after* the walk.
    scanned = scan_lru_caches(package)
    registered = {id(fn) for fn in _REGISTRY.values()}
    return {
        name: fn for name, fn in scanned.items()
        if id(fn) not in registered
    }


def publish() -> Dict[str, Dict[str, Any]]:
    """Mirror cache counters into the metrics registry as gauges.

    No-op (returning the raw stats regardless) when metrics are off.
    Gauge names: ``cache.<name>.hits|misses|currsize|maxsize|hit_rate``.
    """
    from repro.obs import state

    stats = cache_stats()
    if not state.metrics_enabled():
        return stats
    registry = state.get_registry()
    for name, entry in stats.items():
        for key, value in entry.items():
            if value is None:
                continue
            registry.gauge(f"cache.{name}.{key}").set(float(value))
    return stats
