"""Process-wide registry of the simulation's bounded ``lru_cache``\\ s.

Every memoized hot-path helper (Friis gains, code pairs, chip
templates, subcarrier grids) registers itself here at import time, so
one call can answer "how are the caches doing?" across the whole
pipeline.  :func:`publish` mirrors each cache's hit/miss/size counters
into the metrics registry as ``cache.<name>.*`` gauges; the manifest
builder calls it before snapshotting, so every run manifest carries
cache effectiveness alongside the decode metrics.

The caches themselves stay plain :func:`functools.lru_cache` objects —
registration only records the wrapper so ``cache_info()`` can be read
later; it adds zero overhead to cache lookups.
"""

from __future__ import annotations

from typing import Any, Callable, Dict

from repro.errors import ConfigurationError

#: name -> lru_cache-wrapped callable (must expose ``cache_info()``).
_REGISTRY: Dict[str, Callable[..., Any]] = {}


def register_cache(name: str, fn: Callable[..., Any]) -> Callable[..., Any]:
    """Register a bounded lru_cache under ``name``; returns ``fn``.

    Idempotent for the same function object (modules may be reloaded);
    a different function under an existing name is a naming collision.
    """
    if not hasattr(fn, "cache_info"):
        raise ConfigurationError(
            f"cache {name!r} has no cache_info(); wrap it with "
            "functools.lru_cache(maxsize=...) first"
        )
    current = _REGISTRY.get(name)
    if current is not None and current is not fn:
        raise ConfigurationError(f"cache name {name!r} already registered")
    _REGISTRY[name] = fn
    return fn


def registered_caches() -> Dict[str, Callable[..., Any]]:
    """Snapshot of the registered caches (name -> wrapper)."""
    return dict(_REGISTRY)


def cache_stats() -> Dict[str, Dict[str, Any]]:
    """Current hit/miss/size counters for every registered cache."""
    stats: Dict[str, Dict[str, Any]] = {}
    for name, fn in sorted(_REGISTRY.items()):
        info = fn.cache_info()
        total = info.hits + info.misses
        stats[name] = {
            "hits": info.hits,
            "misses": info.misses,
            "currsize": info.currsize,
            "maxsize": info.maxsize,
            "hit_rate": (info.hits / total) if total else 0.0,
        }
    return stats


def publish() -> Dict[str, Dict[str, Any]]:
    """Mirror cache counters into the metrics registry as gauges.

    No-op (returning the raw stats regardless) when metrics are off.
    Gauge names: ``cache.<name>.hits|misses|currsize|maxsize|hit_rate``.
    """
    from repro.obs import state

    stats = cache_stats()
    if not state.metrics_enabled():
        return stats
    registry = state.get_registry()
    for name, entry in stats.items():
        for key, value in entry.items():
            if value is None:
                continue
            registry.gauge(f"cache.{name}.{key}").set(float(value))
    return stats
