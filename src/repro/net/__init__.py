"""Application layer: bridging tags to the Internet via the reader."""

from repro.net.gateway import (
    BackscatterGateway,
    SensorReading,
    TagStatus,
)

__all__ = ["BackscatterGateway", "SensorReading", "TagStatus"]
