"""The Internet bridge: a gateway service over Wi-Fi Backscatter.

The paper's point is connectivity, not just a link: "we show that it
is possible to reuse existing Wi-Fi infrastructure to provide Internet
connectivity to RF-powered devices" (§1). The reader — a phone or AP —
is the bridge: it inventories nearby tags, polls them over the
query-response protocol, and forwards their readings upstream.

:class:`BackscatterGateway` is that application layer: a tag registry,
a polling loop with per-tag health tracking, and a pluggable publish
sink standing in for the cloud upstream.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from repro import obs
from repro.core.frames import bits_to_int
from repro.core.inventory import InventoryTag, SlottedAlohaInventory
from repro.core.protocol import CMD_READ_SENSOR, WiFiBackscatterReader
from repro.errors import ConfigurationError, ReproError
from repro.obs.perf.slo import AlertEvent, SloEngine

#: Sink for readings headed upstream ("the Internet").
PublishFn = Callable[["SensorReading"], None]

#: Circuit-breaker states (per tag).
BREAKER_CLOSED = "closed"        # healthy: poll every cycle
BREAKER_OPEN = "open"            # quarantined: skip polls until expiry
BREAKER_HALF_OPEN = "half_open"  # quarantine expired: one probe poll


@dataclass(frozen=True)
class SensorReading:
    """One reading forwarded upstream.

    Attributes:
        tag_address: source tag.
        value: decoded 32-bit sensor value.
        poll_index: the gateway poll cycle that produced it.
        attempts: downlink transmissions the transaction needed.
        probe: this reading came from a circuit-breaker reopen probe
            (the tag just recovered from quarantine).
    """

    tag_address: int
    value: int
    poll_index: int
    attempts: int
    probe: bool = False


@dataclass
class TagStatus:
    """Per-tag health bookkeeping, including its circuit breaker.

    The breaker bounds how hard the gateway hammers a dead tag: after
    ``offline_threshold`` consecutive failures the tag is quarantined
    (breaker opens) for a number of poll cycles that doubles on every
    re-failure, capped; after the quarantine expires the next cycle
    sends a single reopen probe (half-open) that either restores the
    tag or re-quarantines it.
    """

    address: int
    polls: int = 0
    successes: int = 0
    consecutive_failures: int = 0
    last_value: Optional[int] = None
    last_seen_poll: Optional[int] = None
    breaker_state: str = BREAKER_CLOSED
    quarantined_until_poll: int = 0
    quarantine_cycles: int = 0
    skipped_polls: int = 0
    give_ups: int = 0
    probes: int = 0
    total_attempts: int = 0

    @property
    def availability(self) -> float:
        """Fraction of attempted polls that produced a reading."""
        return self.successes / self.polls if self.polls else 0.0

    @property
    def quarantined(self) -> bool:
        return self.breaker_state == BREAKER_OPEN


class BackscatterGateway:
    """Polls registered tags and publishes their readings.

    Attributes:
        reader: the protocol engine used for every transaction.
        helper_rate_fn: returns the current helper packet rate; the
            reader's rate plan adapts to it each poll (§5).
        publish: upstream sink; ``None`` collects readings locally only.
        offline_threshold: consecutive failures after which a tag is
            reported offline by :meth:`offline_tags` and its circuit
            breaker opens.
        quarantine_base_cycles: initial quarantine length (poll cycles)
            when a tag's breaker opens; doubles on each consecutive
            re-failure.  0 disables the breaker (legacy behaviour: a
            dead tag is re-polled at full rate forever).
        quarantine_max_cycles: quarantine length ceiling.
        slo: optional :class:`SloEngine` evaluated after every poll
            cycle (requires metrics to be enabled).  A fired alert whose
            rule carries ``action == "quarantine"`` pre-empts the
            breaker: tags already failing (but still below the normal
            ``offline_threshold``) are quarantined immediately, cutting
            the polling budget spent on a link the SLO says is sick.
    """

    def __init__(
        self,
        reader: WiFiBackscatterReader,
        helper_rate_fn: Callable[[], float],
        publish: Optional[PublishFn] = None,
        offline_threshold: int = 3,
        quarantine_base_cycles: int = 4,
        quarantine_max_cycles: int = 64,
        slo: Optional[SloEngine] = None,
    ) -> None:
        if offline_threshold < 1:
            raise ConfigurationError("offline_threshold must be >= 1")
        if quarantine_base_cycles < 0:
            raise ConfigurationError("quarantine_base_cycles must be >= 0")
        if quarantine_max_cycles < quarantine_base_cycles:
            raise ConfigurationError(
                "quarantine_max_cycles must be >= quarantine_base_cycles"
            )
        self.reader = reader
        self.helper_rate_fn = helper_rate_fn
        self.publish = publish
        self.offline_threshold = offline_threshold
        self.quarantine_base_cycles = quarantine_base_cycles
        self.quarantine_max_cycles = quarantine_max_cycles
        self.slo = slo
        self.registry: Dict[int, TagStatus] = {}
        self.poll_index = 0
        self.published: List[SensorReading] = []
        self.alerts: List[AlertEvent] = []

    # -- registry ---------------------------------------------------------------

    def register(self, address: int) -> TagStatus:
        """Add a tag to the polling set (idempotent)."""
        if not 0 <= address < (1 << 16):
            raise ConfigurationError("address must fit in 16 bits")
        return self.registry.setdefault(address, TagStatus(address=address))

    def discover(
        self,
        population: Sequence[InventoryTag],
        inventory: Optional[SlottedAlohaInventory] = None,
    ) -> List[int]:
        """Inventory nearby tags and register everything identified."""
        engine = inventory or SlottedAlohaInventory()
        result = engine.run(population)
        for address in result.identified:
            self.register(address)
        return sorted(result.identified)

    # -- polling -----------------------------------------------------------------

    def _open_breaker(self, status: TagStatus) -> None:
        """Quarantine a tag, doubling its previous quarantine length."""
        if status.quarantine_cycles:
            status.quarantine_cycles = min(
                status.quarantine_cycles * 2, self.quarantine_max_cycles
            )
        else:
            status.quarantine_cycles = self.quarantine_base_cycles
        status.breaker_state = BREAKER_OPEN
        status.quarantined_until_poll = (
            self.poll_index + status.quarantine_cycles
        )
        status.give_ups += 1
        obs.counter("gateway.breaker.opened").inc()

    def _poll_tag(
        self, status: TagStatus, helper_rate: float, probe: bool
    ) -> Optional[SensorReading]:
        """One transaction with breaker bookkeeping; None on failure."""
        status.polls += 1
        if probe:
            status.probes += 1
            obs.counter("gateway.breaker.probes").inc()
        try:
            result = self.reader.query(
                status.address,
                helper_rate_pps=helper_rate,
                payload_len=32,
                command=CMD_READ_SENSOR,
            )
        except ReproError:
            # A transport blowing up (timeout escalation, brownout) is
            # a failed transaction, not a gateway crash: the breaker
            # absorbs it like any other miss.
            status.total_attempts += self.reader.max_attempts
            self._note_failure(status)
            return None
        status.total_attempts += result.attempts
        if not result.success:
            self._note_failure(status)
            return None
        value = bits_to_int(list(result.frame.payload_bits))
        status.successes += 1
        status.consecutive_failures = 0
        status.breaker_state = BREAKER_CLOSED
        status.quarantine_cycles = 0
        status.last_value = value
        status.last_seen_poll = self.poll_index
        if probe:
            obs.counter("gateway.breaker.recovered").inc()
        return SensorReading(
            tag_address=status.address,
            value=value,
            poll_index=self.poll_index,
            attempts=result.attempts,
            probe=probe,
        )

    def _note_failure(self, status: TagStatus) -> None:
        status.consecutive_failures += 1
        obs.counter("gateway.poll.failures").inc()
        breaker_on = self.quarantine_base_cycles > 0
        if not breaker_on:
            return
        if status.breaker_state == BREAKER_HALF_OPEN:
            self._open_breaker(status)  # probe failed: double + requarantine
        elif status.consecutive_failures >= self.offline_threshold:
            self._open_breaker(status)

    def poll_once(self) -> List[SensorReading]:
        """Query every registered tag once; returns this cycle's readings.

        Quarantined tags are skipped (their polling budget is the whole
        point of the breaker); tags whose quarantine just expired get a
        single reopen probe.
        """
        if not self.registry:
            raise ConfigurationError("no tags registered")
        self.poll_index += 1
        readings: List[SensorReading] = []
        helper_rate = self.helper_rate_fn()
        if helper_rate <= 0:
            raise ConfigurationError("helper_rate_fn must return > 0")
        attempted = 0
        for status in self.registry.values():
            probe = False
            if status.breaker_state == BREAKER_OPEN:
                if self.poll_index < status.quarantined_until_poll:
                    status.skipped_polls += 1
                    obs.counter("gateway.poll.skipped").inc()
                    continue
                status.breaker_state = BREAKER_HALF_OPEN
                probe = True
            attempted += 1
            reading = self._poll_tag(status, helper_rate, probe)
            if reading is not None:
                readings.append(reading)
                self.published.append(reading)
                if self.publish is not None:
                    self.publish(reading)
        obs.counter("gateway.polls").inc()
        if obs.metrics_enabled():
            if attempted:
                obs.timeseries("gateway.delivery").sample(
                    len(readings) / attempted
                )
            obs.gauge("gateway.breaker.open").set(
                len(self.quarantined_tags())
            )
        if self.slo is not None and obs.metrics_enabled():
            fired = self.slo.evaluate(
                context={"poll_index": self.poll_index}
            )
            if fired:
                self.handle_alerts(fired)
        return readings

    def handle_alerts(self, alerts: Sequence[AlertEvent]) -> None:
        """React to fired SLO alerts (alert-driven breaker pre-emption).

        An alert whose rule carries ``action == "quarantine"``
        quarantines every tag that is already failing
        (``consecutive_failures >= 1``) but whose breaker has not yet
        tripped — the fleet-level SLO violation is evidence the link is
        sick, so waiting out the full ``offline_threshold`` per tag
        just burns polling budget.
        """
        self.alerts.extend(alerts)
        if not any(a.rule.action == "quarantine" for a in alerts):
            return
        if self.quarantine_base_cycles <= 0:
            return
        for status in self.registry.values():
            if (
                status.breaker_state == BREAKER_CLOSED
                and status.consecutive_failures >= 1
            ):
                self._open_breaker(status)
                obs.counter("gateway.breaker.preempted").inc()

    def poll(self, cycles: int) -> List[SensorReading]:
        """Run several poll cycles; returns all readings gathered."""
        if cycles < 1:
            raise ConfigurationError("cycles must be >= 1")
        out: List[SensorReading] = []
        for _ in range(cycles):
            out.extend(self.poll_once())
        return out

    # -- health -------------------------------------------------------------------

    def offline_tags(self) -> List[int]:
        """Tags past the consecutive-failure threshold."""
        return sorted(
            s.address
            for s in self.registry.values()
            if s.consecutive_failures >= self.offline_threshold
        )

    def quarantined_tags(self) -> List[int]:
        """Tags currently inside an open circuit breaker."""
        return sorted(
            s.address for s in self.registry.values() if s.quarantined
        )

    def health_report(self) -> List[TagStatus]:
        """All statuses, least available first."""
        return sorted(self.registry.values(), key=lambda s: s.availability)

    def health_metrics(self) -> Dict[str, float]:
        """Fleet-level health summary (also pushed to obs gauges)."""
        statuses = list(self.registry.values())
        total_polls = sum(s.polls for s in statuses)
        metrics = {
            "tags": float(len(statuses)),
            "poll_cycles": float(self.poll_index),
            "polls": float(total_polls),
            "successes": float(sum(s.successes for s in statuses)),
            "total_attempts": float(sum(s.total_attempts for s in statuses)),
            "skipped_polls": float(sum(s.skipped_polls for s in statuses)),
            "give_ups": float(sum(s.give_ups for s in statuses)),
            "probes": float(sum(s.probes for s in statuses)),
            "quarantined": float(len(self.quarantined_tags())),
            "offline": float(len(self.offline_tags())),
        }
        for name, value in metrics.items():
            obs.gauge(f"gateway.health.{name}").set(value)
        return metrics
