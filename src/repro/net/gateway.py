"""The Internet bridge: a gateway service over Wi-Fi Backscatter.

The paper's point is connectivity, not just a link: "we show that it
is possible to reuse existing Wi-Fi infrastructure to provide Internet
connectivity to RF-powered devices" (§1). The reader — a phone or AP —
is the bridge: it inventories nearby tags, polls them over the
query-response protocol, and forwards their readings upstream.

:class:`BackscatterGateway` is that application layer: a tag registry,
a polling loop with per-tag health tracking, and a pluggable publish
sink standing in for the cloud upstream.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from repro.core.frames import bits_to_int
from repro.core.inventory import InventoryTag, SlottedAlohaInventory
from repro.core.protocol import CMD_READ_SENSOR, WiFiBackscatterReader
from repro.errors import ConfigurationError

#: Sink for readings headed upstream ("the Internet").
PublishFn = Callable[["SensorReading"], None]


@dataclass(frozen=True)
class SensorReading:
    """One reading forwarded upstream.

    Attributes:
        tag_address: source tag.
        value: decoded 32-bit sensor value.
        poll_index: the gateway poll cycle that produced it.
        attempts: downlink transmissions the transaction needed.
    """

    tag_address: int
    value: int
    poll_index: int
    attempts: int


@dataclass
class TagStatus:
    """Per-tag health bookkeeping."""

    address: int
    polls: int = 0
    successes: int = 0
    consecutive_failures: int = 0
    last_value: Optional[int] = None
    last_seen_poll: Optional[int] = None

    @property
    def availability(self) -> float:
        """Fraction of polls that produced a reading."""
        return self.successes / self.polls if self.polls else 0.0


class BackscatterGateway:
    """Polls registered tags and publishes their readings.

    Attributes:
        reader: the protocol engine used for every transaction.
        helper_rate_fn: returns the current helper packet rate; the
            reader's rate plan adapts to it each poll (§5).
        publish: upstream sink; ``None`` collects readings locally only.
        offline_threshold: consecutive failures after which a tag is
            reported offline by :meth:`offline_tags`.
    """

    def __init__(
        self,
        reader: WiFiBackscatterReader,
        helper_rate_fn: Callable[[], float],
        publish: Optional[PublishFn] = None,
        offline_threshold: int = 3,
    ) -> None:
        if offline_threshold < 1:
            raise ConfigurationError("offline_threshold must be >= 1")
        self.reader = reader
        self.helper_rate_fn = helper_rate_fn
        self.publish = publish
        self.offline_threshold = offline_threshold
        self.registry: Dict[int, TagStatus] = {}
        self.poll_index = 0
        self.published: List[SensorReading] = []

    # -- registry ---------------------------------------------------------------

    def register(self, address: int) -> TagStatus:
        """Add a tag to the polling set (idempotent)."""
        if not 0 <= address < (1 << 16):
            raise ConfigurationError("address must fit in 16 bits")
        return self.registry.setdefault(address, TagStatus(address=address))

    def discover(
        self,
        population: Sequence[InventoryTag],
        inventory: Optional[SlottedAlohaInventory] = None,
    ) -> List[int]:
        """Inventory nearby tags and register everything identified."""
        engine = inventory or SlottedAlohaInventory()
        result = engine.run(population)
        for address in result.identified:
            self.register(address)
        return sorted(result.identified)

    # -- polling -----------------------------------------------------------------

    def poll_once(self) -> List[SensorReading]:
        """Query every registered tag once; returns this cycle's readings."""
        if not self.registry:
            raise ConfigurationError("no tags registered")
        self.poll_index += 1
        readings: List[SensorReading] = []
        helper_rate = self.helper_rate_fn()
        if helper_rate <= 0:
            raise ConfigurationError("helper_rate_fn must return > 0")
        for status in self.registry.values():
            status.polls += 1
            result = self.reader.query(
                status.address,
                helper_rate_pps=helper_rate,
                payload_len=32,
                command=CMD_READ_SENSOR,
            )
            if result.success:
                value = bits_to_int(list(result.frame.payload_bits))
                status.successes += 1
                status.consecutive_failures = 0
                status.last_value = value
                status.last_seen_poll = self.poll_index
                reading = SensorReading(
                    tag_address=status.address,
                    value=value,
                    poll_index=self.poll_index,
                    attempts=result.attempts,
                )
                readings.append(reading)
                self.published.append(reading)
                if self.publish is not None:
                    self.publish(reading)
            else:
                status.consecutive_failures += 1
        return readings

    def poll(self, cycles: int) -> List[SensorReading]:
        """Run several poll cycles; returns all readings gathered."""
        if cycles < 1:
            raise ConfigurationError("cycles must be >= 1")
        out: List[SensorReading] = []
        for _ in range(cycles):
            out.extend(self.poll_once())
        return out

    # -- health -------------------------------------------------------------------

    def offline_tags(self) -> List[int]:
        """Tags past the consecutive-failure threshold."""
        return sorted(
            s.address
            for s in self.registry.values()
            if s.consecutive_failures >= self.offline_threshold
        )

    def health_report(self) -> List[TagStatus]:
        """All statuses, least available first."""
        return sorted(self.registry.values(), key=lambda s: s.availability)
