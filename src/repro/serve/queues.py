"""Bounded priority queues with explicit, accounted load shedding.

The ingress queue is the gateway's only backpressure mechanism: when
offered load exceeds decode capacity the queue fills, and something
must be shed.  The policy is fixed and documented — **newest request
of the lowest-priority class present loses** — so overload behaviour
is predictable: high-priority requests are only ever shed once the
queue holds nothing but high-priority requests.

Every shed is explicit: the caller receives a :class:`ShedEvent`
naming the victim, the reason, and the worst priority class present at
decision time (which the chaos suite uses to verify the ordering
contract), and the ``serve.shed`` metrics are incremented.  There is
no code path that drops a request without producing an event.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, List, Optional, Tuple

from repro import obs
from repro.errors import ConfigurationError
from repro.serve.request import PRIORITIES, DecodeRequest


@dataclass(frozen=True)
class ShedEvent:
    """One explicit shed decision."""

    seq: int
    corr_id: str
    priority: int
    reason: str
    time_s: float
    #: Worst (numerically largest) priority class present in the queue
    #: -- including the incoming request -- when the victim was chosen.
    #: The shed-ordering contract is ``priority == worst_present``.
    worst_present: int


def count_shed(event: ShedEvent) -> None:
    """Increment the ``serve.shed`` metric family for one event."""
    obs.counter("serve.shed").inc()
    obs.counter(f"serve.shed.reason.{event.reason}").inc()
    obs.counter(f"serve.shed.priority.{PRIORITIES[event.priority]}").inc()


class BoundedPriorityQueue:
    """FIFO-per-class priority queue with a hard capacity.

    ``offer`` never grows the queue past ``capacity``: when full, the
    newest request of the worst class present (the incoming request
    itself, if it is in that class) is shed and reported.
    """

    def __init__(self, capacity: int, name: str = "serve.ingress") -> None:
        if capacity < 1:
            raise ConfigurationError("queue capacity must be >= 1")
        self.capacity = capacity
        self.name = name
        self._classes: List[Deque[DecodeRequest]] = [
            deque() for _ in PRIORITIES
        ]
        self.depth_max = 0

    def __len__(self) -> int:
        return sum(len(q) for q in self._classes)

    @property
    def depth(self) -> int:
        return len(self)

    def _worst_present(self, including: int) -> int:
        worst = including
        for prio in range(len(PRIORITIES) - 1, including - 1, -1):
            if self._classes[prio]:
                return prio
        return worst

    def offer(
        self, request: DecodeRequest, now_s: float, reason: str = "queue_full"
    ) -> Tuple[bool, Optional[ShedEvent]]:
        """Admit ``request`` or shed the newest-worst request.

        Returns ``(admitted, shed_event)``.  ``admitted`` refers to the
        *incoming* request; when an already-queued request was evicted
        to make room, ``admitted`` is True and the event names the
        evicted victim.
        """
        if len(self) < self.capacity:
            self._classes[request.priority].append(request)
            self.depth_max = max(self.depth_max, len(self))
            return True, None
        worst = self._worst_present(request.priority)
        if worst <= request.priority:
            # The incoming request is (one of) the worst present; it is
            # also the newest, so it is the victim.
            event = ShedEvent(
                seq=request.seq,
                corr_id=request.corr_id,
                priority=request.priority,
                reason=reason,
                time_s=now_s,
                worst_present=worst if worst > request.priority
                else request.priority,
            )
            count_shed(event)
            return False, event
        victim = self._classes[worst].pop()
        event = ShedEvent(
            seq=victim.seq,
            corr_id=victim.corr_id,
            priority=victim.priority,
            reason=reason,
            time_s=now_s,
            worst_present=worst,
        )
        count_shed(event)
        self._classes[request.priority].append(request)
        self.depth_max = max(self.depth_max, len(self))
        return True, event

    def oldest_arrival_s(self) -> Optional[float]:
        """Arrival time of the oldest queued request (None when empty).

        Requests enter in arrival order and eviction removes from the
        newest end, so each class deque's head is its oldest member;
        the queue's oldest is the minimum across class heads.  The
        micro-batching gateway anchors its coalescing window here.
        """
        heads = [q[0].arrival_s for q in self._classes if q]
        return min(heads) if heads else None

    def pop_batch(self, n: int) -> List[DecodeRequest]:
        """Up to ``n`` requests, best class first, FIFO within class."""
        batch: List[DecodeRequest] = []
        for q in self._classes:
            while q and len(batch) < n:
                batch.append(q.popleft())
            if len(batch) >= n:
                break
        return batch

    def drain(self) -> List[DecodeRequest]:
        """Remove and return everything, best-first (for shutdown)."""
        out = self.pop_batch(len(self))
        return out
