"""Per-request lifecycle tracing for the serve path.

Every request admitted to the gateway carries a span tree::

    serve.request                     (arrival -> terminal)
      serve.ingress                   (admission decision, instant)
      serve.queue_wait                (arrival -> dispatch or eviction)
      serve.dispatch                  (batch pop, instant)
      serve.decode                    (virtual service slot)
      serve.deliver | serve.shed | serve.abandon   (terminal, instant)

The :class:`LifecycleTracker` accumulates *marks* (ingress, dispatch,
decode) per in-flight request and assembles the tree when the gateway
settles the terminal outcome.  All span bounds are **virtual-time**
values via :meth:`repro.obs.tracing.Span.at` — never ``perf_counter``
— and every attribute is a pure function of ``(config, seed)``:
queue depth at enqueue, breaker state at admission, batch position at
dispatch.  Two runs of the same seed therefore produce byte-identical
``serve.request`` trees regardless of ``workers``, which the lifecycle
determinism test asserts on the serialized span dicts.

Spans are built parent-side only (worker processes never see them), so
the tracker costs nothing when tracing is disabled: every hook returns
on a single ``None`` check.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.obs.tracing import Span, Tracer
from repro.serve.request import (
    SPAN_DECODE,
    SPAN_DISPATCH,
    SPAN_INGRESS,
    SPAN_QUEUE_WAIT,
    SPAN_REQUEST,
    STATUS_DELIVERED,
    TERMINAL_SPANS,
    DecodeRequest,
    ServeOutcome,
)


class LifecycleTracker:
    """Builds one virtual-time span tree per settled request.

    Args:
        run_id: the gateway run ID, stamped on every root span.
        tracer: destination tracer; ``None`` disables the tracker
            entirely (every hook becomes a cheap no-op).
    """

    __slots__ = ("run_id", "_tracer", "_marks")

    def __init__(self, run_id: str, tracer: Optional[Tracer] = None) -> None:
        self.run_id = run_id
        self._tracer = tracer
        self._marks: Dict[int, Dict[str, Any]] = {}

    @property
    def enabled(self) -> bool:
        return self._tracer is not None

    # -- marks --------------------------------------------------------------

    def ingress(
        self,
        req: DecodeRequest,
        now_s: float,
        queue_depth: int,
        breaker_state: str,
        admitted: bool,
    ) -> None:
        """Record the admission decision for ``req``.

        ``queue_depth`` is the ingress depth *at enqueue time* (before
        this request joins); ``breaker_state`` is its tag's breaker
        state when the admission check ran.
        """
        if self._tracer is None:
            return
        self._marks[req.seq] = {
            "req": req,
            "ingress_t": float(now_s),
            "queue_depth": int(queue_depth),
            "breaker_state": str(breaker_state),
            "admitted": bool(admitted),
        }

    def dispatch(
        self,
        req: DecodeRequest,
        now_s: float,
        batch_index: int,
        batch_size: int,
        queue_depth: int,
        batch_id: Optional[int] = None,
    ) -> None:
        """Record the batch pop that took ``req`` off the queue.

        ``batch_id`` is the micro-batch sequence number when the
        gateway coalesces requests into one decode task (``batch_max``
        set); None on the per-request dispatch path, in which case the
        span carries no ``batch_id`` attribute at all.
        """
        if self._tracer is None:
            return
        mark = self._marks.get(req.seq)
        if mark is None:
            return
        mark["dispatch_t"] = float(now_s)
        mark["batch_index"] = int(batch_index)
        mark["batch_size"] = int(batch_size)
        mark["dispatch_queue_depth"] = int(queue_depth)
        if batch_id is not None:
            mark["batch_id"] = int(batch_id)

    def decode(
        self,
        req: DecodeRequest,
        start_s: float,
        end_s: float,
        ok: bool,
        errors: int,
    ) -> None:
        """Record the virtual decode slot ``req`` occupied."""
        if self._tracer is None:
            return
        mark = self._marks.get(req.seq)
        if mark is None:
            return
        mark["decode"] = (float(start_s), float(end_s), bool(ok),
                          int(errors))

    # -- assembly -----------------------------------------------------------

    def finish(self, outcome: ServeOutcome) -> Optional[Span]:
        """Assemble and adopt the span tree for a settled request.

        Returns the root span (or None when disabled / never marked).
        """
        if self._tracer is None:
            return None
        mark = self._marks.pop(outcome.seq, None)
        if mark is None:
            return None
        req: DecodeRequest = mark["req"]
        end_t = float(outcome.completed_s)
        root = Span.at(
            SPAN_REQUEST,
            req.arrival_s,
            end_t,
            corr_id=outcome.corr_id,
            run_id=self.run_id,
            seq=outcome.seq,
            tag_address=outcome.tag_address,
            priority=req.priority_name,
            status=outcome.status,
            reason=outcome.reason,
        )
        ingress_t = mark["ingress_t"]
        root.add_child(Span.at(
            SPAN_INGRESS,
            ingress_t,
            ingress_t,
            queue_depth_at_enqueue=mark["queue_depth"],
            breaker_state=mark["breaker_state"],
            admitted=mark["admitted"],
        ))
        dispatch_t = mark.get("dispatch_t")
        if mark["admitted"]:
            # Wait ends at dispatch, or at the terminal event for
            # requests evicted/drained while still queued.
            wait_end = dispatch_t if dispatch_t is not None else end_t
            root.add_child(Span.at(
                SPAN_QUEUE_WAIT, ingress_t, wait_end,
                wait_s=wait_end - ingress_t,
            ))
        if dispatch_t is not None:
            dispatch_span = Span.at(
                SPAN_DISPATCH,
                dispatch_t,
                dispatch_t,
                batch_index=mark["batch_index"],
                batch_size=mark["batch_size"],
                queue_depth_after=mark["dispatch_queue_depth"],
            )
            if "batch_id" in mark:
                dispatch_span.set(batch_id=mark["batch_id"])
            root.add_child(dispatch_span)
        decode_mark = mark.get("decode")
        if decode_mark is not None:
            start_s, end_s, ok, errors = decode_mark
            decode_span = Span.at(
                SPAN_DECODE, start_s, end_s,
                ok=ok, errors=errors, attempts=outcome.attempts,
            )
            if not ok:
                decode_span.error = outcome.reason or outcome.status
            root.add_child(decode_span)
        terminal = Span.at(
            TERMINAL_SPANS[outcome.status],
            end_t,
            end_t,
            status=outcome.status,
            reason=outcome.reason,
        )
        if outcome.status == STATUS_DELIVERED:
            terminal.set(latency_s=outcome.latency_s,
                         payload_bits=len(outcome.payload))
        root.add_child(terminal)
        self._tracer.adopt(root)
        return root

    def pending(self) -> int:
        """Requests marked but not yet settled (should be 0 post-run)."""
        return len(self._marks)
