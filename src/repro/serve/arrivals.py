"""Deterministic request arrivals from the repo's traffic models.

The serve loop is driven by the same generators the MAC and trace
layers use: ``cbr``/``poisson``/``bursty`` arrivals come from
:func:`repro.sim.link.helper_packet_times`, and the ``office`` profile
from :func:`repro.traces.synthetic.office_traffic_sample` (the paper's
Fig-15 diurnal shape).  An optional overload burst superimposes extra
Poisson arrivals over ``[burst_start_s, burst_end_s)`` so chaos
scenarios can drive the gateway past capacity and then let it recover.

Everything — times, tag addresses, priorities, per-request entropy —
is a pure function of the config and seed.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List

import numpy as np

from repro.errors import ConfigurationError
from repro.serve.request import PRIORITIES, DecodeRequest

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.serve.gateway import ServeConfig

ARRIVAL_PROFILES = ("cbr", "poisson", "bursty", "office")

#: Sub-stream discriminators under the run seed.
_ARRIVALS_STREAM = 0x5EAF


def _base_times(
    config: "ServeConfig", rng: np.random.Generator
) -> np.ndarray:
    from repro.sim.link import helper_packet_times
    from repro.traces.synthetic import office_traffic_sample

    if config.arrival_profile == "office":
        sample = office_traffic_sample(
            hour_of_day=config.office_hour,
            duration_s=config.duration_s,
            peak_pps=config.offered_load_rps,
            base_pps=max(0.1 * config.offered_load_rps, 0.01),
            rng=rng,
        )
        return np.asarray(sample.packet_times_s, dtype=float)
    return helper_packet_times(
        config.offered_load_rps,
        config.duration_s,
        traffic=config.arrival_profile,
        rng=rng,
    )


def _burst_times(
    config: "ServeConfig", rng: np.random.Generator
) -> np.ndarray:
    """Extra Poisson arrivals lifting the rate to ``burst_load_rps``."""
    if config.burst_load_rps is None:
        return np.empty(0)
    span = config.burst_end_s - config.burst_start_s
    extra_rate = config.burst_load_rps - config.offered_load_rps
    if span <= 0 or extra_rate <= 0:
        return np.empty(0)
    n_expected = int(extra_rate * span * 1.5) + 10
    gaps = rng.exponential(1.0 / extra_rate, size=n_expected)
    times = config.burst_start_s + np.cumsum(gaps)
    return times[times < min(config.burst_end_s, config.duration_s)]


def generate_arrivals(config: "ServeConfig", seed: int) -> List[DecodeRequest]:
    """The run's full arrival schedule, sorted by time.

    ``seq`` numbers follow arrival order; each request's decode stream
    is keyed by ``(seed, seq)``, so the schedule — and every downstream
    decode — replays exactly from the one run seed.
    """
    if config.arrival_profile not in ARRIVAL_PROFILES:
        raise ConfigurationError(
            f"arrival_profile must be one of {ARRIVAL_PROFILES}, "
            f"got {config.arrival_profile!r}"
        )
    rng = np.random.default_rng(
        np.random.SeedSequence(entropy=(int(seed), _ARRIVALS_STREAM))
    )
    times = np.sort(np.concatenate([
        _base_times(config, rng), _burst_times(config, rng)
    ]))
    times = times[(times >= 0) & (times < config.duration_s)]
    mix = np.asarray(config.priority_mix, dtype=float)
    mix = mix / mix.sum()
    priorities = rng.choice(len(PRIORITIES), size=len(times), p=mix)
    tags = rng.integers(0, config.n_tags, size=len(times))
    budget_s = config.deadline_ms / 1000.0
    requests = [
        DecodeRequest(
            seq=i,
            corr_id=f"serve-{seed}/{i}",
            tag_address=int(tags[i]),
            priority=int(priorities[i]),
            arrival_s=float(times[i]),
            deadline_s=float(times[i]) + budget_s,
            root_seed=int(seed),
            payload_bits=config.payload_bits,
        )
        for i in range(len(times))
    ]
    return requests
