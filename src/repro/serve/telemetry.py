"""Periodic telemetry snapshots: the serve path's live health stream.

A :class:`TelemetrySnapshotter` serializes windowed gateway health to
an append-only JSONL stream on a *virtual-time* cadence: line 1 is a
header (schema tag, run/config provenance), every following line is
one event object.  Three event kinds exist:

* ``snapshot`` — one per cadence boundary: queue/egress depth,
  cumulative dispositions, shed-by-reason, per-tag breaker states,
  windowed latency quantiles, error-budget burn status, the burn-rate
  transitions that fired at this tick, and the current latency
  exemplars (bucket-worst correlation IDs);
* ``end`` — written by a clean close, carrying the final summary;
* ``interrupted`` — written by the crash-flush hook when the process
  dies with the stream still open (SIGTERM / atexit), so triage can
  tell a truncated capture from a completed one.

Every snapshot field is virtual-time data, so the stream is a pure
function of ``(config, seed)`` — byte-identical across worker counts —
and the writer flushes after every line, so even a SIGKILL loses at
most the in-flight line.  The crash hook rides the shared
:func:`repro.obs.forensics.crash_flush.register_aux_flush` registry
rather than installing handlers of its own.
"""

from __future__ import annotations

import os
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import ConfigurationError
from repro.obs.export import dumps_line, loads_line
from repro.obs.forensics.crash_flush import (
    register_aux_flush,
    unregister_aux_flush,
)

#: Schema tag stamped into (and required from) the header line.
SCHEMA = "repro.telemetry/1"

#: Cadence multiplier for the windowed latency stats in each snapshot:
#: quantiles are computed over the last ``TELEMETRY_WINDOW_CADENCES``
#: cadence intervals rather than the whole run.
TELEMETRY_WINDOW_CADENCES = 5.0


class TelemetrySnapshotter:
    """Append-only JSONL writer for serve telemetry snapshots.

    Args:
        path: output stream path (parents created).
        run_id: gateway run ID for the header.
        cadence_s: virtual-time snapshot interval (header metadata —
            the gateway owns the tick schedule).
        meta: extra header fields (config digest, seed, ...).
    """

    def __init__(
        self,
        path: str,
        run_id: str,
        cadence_s: float,
        meta: Optional[Dict[str, Any]] = None,
    ) -> None:
        if cadence_s <= 0:
            raise ConfigurationError("telemetry cadence must be positive")
        self.path = str(path)
        self.run_id = run_id
        self.cadence_s = float(cadence_s)
        self.snapshots = 0
        self._closed = False
        directory = os.path.dirname(os.path.abspath(self.path))
        os.makedirs(directory, exist_ok=True)
        self._fh = open(self.path, "w", encoding="utf-8")
        header: Dict[str, Any] = {
            "schema": SCHEMA,
            "run_id": run_id,
            "cadence_s": self.cadence_s,
        }
        if meta:
            header.update(meta)
        self._write(header)
        self._aux_name = f"telemetry:{self.path}"
        register_aux_flush(self._aux_name, self._crash_flush)

    def _write(self, obj: Dict[str, Any]) -> None:
        self._fh.write(dumps_line(obj))
        self._fh.write("\n")
        self._fh.flush()

    def snapshot(self, record: Dict[str, Any]) -> None:
        """Append one snapshot event (adds ``event: snapshot``)."""
        if self._closed:
            return
        self._write({"event": "snapshot", **record})
        self.snapshots += 1

    def _crash_flush(self, interrupted: bool) -> None:
        """Aux crash-flush hook: stamp the stream interrupted."""
        if self._closed:
            return
        self._closed = True
        try:
            self._write({
                "event": "interrupted",
                "snapshots": self.snapshots,
            })
            self._fh.close()
        except Exception:  # noqa: BLE001 - teardown must not raise
            pass

    def close(self, summary: Optional[Dict[str, Any]] = None) -> str:
        """Clean close: write the ``end`` event, stand down the crash
        hook, and return the stream path."""
        if self._closed:
            return self.path
        self._closed = True
        unregister_aux_flush(self._aux_name)
        self._write({
            "event": "end",
            "snapshots": self.snapshots,
            "summary": dict(summary or {}),
        })
        self._fh.close()
        return self.path


def is_telemetry_header(header: Any) -> bool:
    """True when ``header`` looks like a telemetry-stream header line."""
    return isinstance(header, dict) and header.get("schema") == SCHEMA


def read_telemetry(
    path: str,
) -> Tuple[Dict[str, Any], List[Dict[str, Any]], Optional[Dict[str, Any]]]:
    """Read a telemetry stream; returns ``(header, snapshots, final)``.

    ``final`` is the ``end`` or ``interrupted`` event, or None when the
    stream was cut before either was written (hard kill).  Raises
    :class:`~repro.errors.ConfigurationError` on a missing/mismatched
    schema tag so foreign JSONL files fail loudly.
    """
    with open(path, "r", encoding="utf-8") as fh:
        first = fh.readline()
        if not first.strip():
            raise ConfigurationError(f"{path}: empty telemetry stream")
        header = loads_line(first)
        if not is_telemetry_header(header):
            raise ConfigurationError(
                f"{path}: not a {SCHEMA} stream (header schema "
                f"{header.get('schema') if isinstance(header, dict) else None!r})"
            )
        snapshots: List[Dict[str, Any]] = []
        final: Optional[Dict[str, Any]] = None
        for line in fh:
            if not line.strip():
                continue
            event = loads_line(line)
            kind = event.get("event")
            if kind == "snapshot":
                snapshots.append(event)
            elif kind in ("end", "interrupted"):
                final = event
    return header, snapshots, final
