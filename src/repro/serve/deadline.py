"""Per-request deadline budgets propagated through decode stages.

A request that cannot meet its latency SLO should die *early* — at
admission or dispatch, before it occupies a decode slot — rather than
clog the pipeline and make every request behind it late too.  The
budget is pure virtual-time arithmetic (no wall clock), so deadline
decisions are deterministic and replayable like everything else in the
serve loop.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class DeadlineBudget:
    """Absolute deadline for one request, checked per stage.

    ``arrival_s`` anchors the budget; the deadline never moves as the
    request progresses — stages only consume slack.
    """

    arrival_s: float
    budget_s: float

    def __post_init__(self) -> None:
        if self.budget_s <= 0:
            raise ConfigurationError("deadline budget_s must be positive")

    @property
    def deadline_s(self) -> float:
        return self.arrival_s + self.budget_s

    def remaining(self, now_s: float) -> float:
        """Slack left at ``now_s`` (negative once expired)."""
        return self.deadline_s - now_s

    def expired(self, now_s: float) -> bool:
        return now_s >= self.deadline_s

    def can_meet(self, now_s: float, service_s: float) -> bool:
        """Whether starting a ``service_s``-long stage now still makes it."""
        return now_s + service_s <= self.deadline_s
