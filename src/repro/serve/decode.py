"""The picklable decode task the gateway fans out to workers.

One task = one queued request through the full uplink pipeline
(:func:`repro.sim.link.run_uplink_trial`).  The task is plain data and
its random stream derives purely from ``(root_seed, seq)``, so any
worker — or a supervised retry after a crash — decodes the identical
payload.  Fault plans are rewound before use so an inline (workers=0)
run sees the same injector state a freshly unpickled pool copy would.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Dict, Optional

import numpy as np

from repro import obs
from repro.errors import ReproError
from repro.faults.base import FaultPlan
from repro.obs import forensics


@dataclass(frozen=True)
class ServeDecodeTask:
    """Everything a worker needs to decode one request."""

    seq: int
    corr_id: str
    run_id: str
    root_seed: int
    payload_bits: int
    tag_to_reader_m: float
    packets_per_bit: float
    mode: str
    bit_rate_bps: float
    start_s: float
    faults: Optional[FaultPlan]
    helper_to_tag_m: float = 3.0

    @property
    def trial(self) -> int:
        # Dead-letter correlation: the request seq doubles as the
        # forensics trial index.
        return self.seq


def decode_request_task(task: ServeDecodeTask) -> Dict[str, Any]:
    """Engine task: decode one request -> plain result dict.

    Decode failures under an active fault plan are *data* (the request
    failed, the gateway accounts for it), not exceptions — matching the
    batch drivers' convention.  Without faults an error propagates.
    """
    t0 = time.perf_counter()
    active = task.faults is not None and not task.faults.empty
    if active:
        # Inline runs reuse one plan object across requests; rewinding
        # makes its state identical to the pristine copy each pool
        # worker unpickles, keeping workers=0 == workers=N.
        task.faults.reset()
    rng = np.random.default_rng(
        np.random.SeedSequence(entropy=(task.root_seed, 1, task.seq))
    )
    recording = obs.recording_enabled()
    if recording:
        forensics.begin(
            "serve", run_id=task.run_id, trial=task.seq, packet=0
        )
    # Local import: repro.sim.link imports the whole decode stack.
    from repro.sim.link import run_uplink_trial

    try:
        trial = run_uplink_trial(
            task.tag_to_reader_m,
            task.packets_per_bit,
            mode=task.mode,
            num_payload_bits=task.payload_bits,
            bit_rate_bps=task.bit_rate_bps,
            traffic="cbr",
            rng=rng,
            faults=task.faults,
            start_s=task.start_s,
            helper_to_tag_m=task.helper_to_tag_m,
        )
        if recording:
            forensics.commit(
                errors=trial.errors,
                error_bits=np.flatnonzero(
                    trial.sent_bits != trial.decoded_bits
                ),
            )
        return {
            "seq": task.seq,
            "ok": True,
            "errors": int(trial.errors),
            "payload": tuple(int(b) for b in trial.decoded_bits),
            "failure": "",
            "wall_s": time.perf_counter() - t0,
        }
    except ReproError as exc:
        if recording:
            forensics.commit(
                errors=task.payload_bits, failure=type(exc).__name__
            )
        if not active:
            raise
        return {
            "seq": task.seq,
            "ok": False,
            "errors": int(task.payload_bits),
            "payload": (),
            "failure": type(exc).__name__,
            "wall_s": time.perf_counter() - t0,
        }
