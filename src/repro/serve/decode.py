"""The picklable decode task the gateway fans out to workers.

One task = one queued request through the full uplink pipeline
(:func:`repro.sim.link.run_uplink_trial`).  The task is plain data and
its random stream derives purely from ``(root_seed, seq)``, so any
worker — or a supervised retry after a crash — decodes the identical
payload.  Fault plans are rewound before use so an inline (workers=0)
run sees the same injector state a freshly unpickled pool copy would.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro import obs
from repro.errors import ReproError
from repro.faults.base import FaultPlan
from repro.obs import forensics


@dataclass(frozen=True)
class ServeDecodeTask:
    """Everything a worker needs to decode one request."""

    seq: int
    corr_id: str
    run_id: str
    root_seed: int
    payload_bits: int
    tag_to_reader_m: float
    packets_per_bit: float
    mode: str
    bit_rate_bps: float
    start_s: float
    faults: Optional[FaultPlan]
    helper_to_tag_m: float = 3.0
    #: Treat decode exceptions as failed-decode *data* even without an
    #: active fault plan.  The gateway sets this for fleet outlier tags
    #: (``ServeConfig.outlier_tags``), whose requests decode at a
    #: deliberately hostile distance — their failures are the point of
    #: the experiment, not pipeline bugs.
    lenient: bool = False

    @property
    def trial(self) -> int:
        # Dead-letter correlation: the request seq doubles as the
        # forensics trial index.
        return self.seq


def decode_request_task(task: ServeDecodeTask) -> Dict[str, Any]:
    """Engine task: decode one request -> plain result dict.

    Decode failures under an active fault plan are *data* (the request
    failed, the gateway accounts for it), not exceptions — matching the
    batch drivers' convention.  Without faults an error propagates.
    """
    t0 = time.perf_counter()
    active = task.faults is not None and not task.faults.empty
    if active:
        # Inline runs reuse one plan object across requests; rewinding
        # makes its state identical to the pristine copy each pool
        # worker unpickles, keeping workers=0 == workers=N.
        task.faults.reset()
    rng = np.random.default_rng(
        np.random.SeedSequence(entropy=(task.root_seed, 1, task.seq))
    )
    recording = obs.recording_enabled()
    if recording:
        forensics.begin(
            "serve", run_id=task.run_id, trial=task.seq, packet=0
        )
    # Local import: repro.sim.link imports the whole decode stack.
    from repro.sim.link import run_uplink_trial

    try:
        trial = run_uplink_trial(
            task.tag_to_reader_m,
            task.packets_per_bit,
            mode=task.mode,
            num_payload_bits=task.payload_bits,
            bit_rate_bps=task.bit_rate_bps,
            traffic="cbr",
            rng=rng,
            faults=task.faults,
            start_s=task.start_s,
            helper_to_tag_m=task.helper_to_tag_m,
        )
        if recording:
            forensics.commit(
                errors=trial.errors,
                error_bits=np.flatnonzero(
                    trial.sent_bits != trial.decoded_bits
                ),
            )
        # Fleet sketch: per-request decode error counts, observed in
        # whichever process ran the decode.  Integer-valued and folded
        # per task, so the parent's merged sketch is byte-identical to
        # an inline run's (see the fleet determinism contract tests).
        obs.quantile_sketch("fleet.decode.errors").observe(
            float(trial.errors)
        )
        return {
            "seq": task.seq,
            "ok": True,
            "errors": int(trial.errors),
            "payload": tuple(int(b) for b in trial.decoded_bits),
            "failure": "",
            "wall_s": time.perf_counter() - t0,
        }
    except ReproError as exc:
        if recording:
            forensics.commit(
                errors=task.payload_bits, failure=type(exc).__name__
            )
        if not active and not task.lenient:
            raise
        obs.quantile_sketch("fleet.decode.errors").observe(
            float(task.payload_bits)
        )
        return {
            "seq": task.seq,
            "ok": False,
            "errors": int(task.payload_bits),
            "payload": (),
            "failure": type(exc).__name__,
            "wall_s": time.perf_counter() - t0,
        }


# -- micro-batched decode ------------------------------------------------------


@dataclass(frozen=True)
class ServeBatchTask:
    """One coalesced micro-batch of queued requests, decoded in one pass.

    Per-request synthesis is unchanged — request ``seq`` draws from the
    same ``(root_seed, 1, seq)`` stream whether it is decoded alone or
    in a batch — and the batched decoder is bit-identical to the scalar
    pipeline, so the delivered payloads match the unbatched gateway
    exactly.  The ``seq``/``corr_id`` of the batch's first request
    double as the task's forensics correlation (a dead-lettered batch
    loses every member, which the gateway accounts per request).
    """

    batch_id: int
    run_id: str
    root_seed: int
    payload_bits: int
    tag_to_reader_m: float
    packets_per_bit: float
    mode: str
    bit_rate_bps: float
    helper_to_tag_m: float
    faults: Optional[FaultPlan]
    seqs: Tuple[int, ...]
    corr_ids: Tuple[str, ...]
    start_times_s: Tuple[float, ...]

    @property
    def seq(self) -> int:
        return self.seqs[0] if self.seqs else -1

    @property
    def corr_id(self) -> str:
        return self.corr_ids[0] if self.corr_ids else ""

    @property
    def trial(self) -> int:
        return self.seq

    def request_task(self, index: int) -> ServeDecodeTask:
        """The equivalent scalar task for member ``index``."""
        return ServeDecodeTask(
            seq=self.seqs[index],
            corr_id=self.corr_ids[index],
            run_id=self.run_id,
            root_seed=self.root_seed,
            payload_bits=self.payload_bits,
            tag_to_reader_m=self.tag_to_reader_m,
            packets_per_bit=self.packets_per_bit,
            mode=self.mode,
            bit_rate_bps=self.bit_rate_bps,
            start_s=self.start_times_s[index],
            faults=self.faults,
            helper_to_tag_m=self.helper_to_tag_m,
        )


def decode_batch_task(task: ServeBatchTask) -> List[Dict[str, Any]]:
    """Engine task: decode one micro-batch -> result dicts in seq order.

    Synthesis runs per request (each from its own derived stream, with
    the fault plan rewound per member exactly like the scalar path);
    decoding runs once over the whole batch through
    :class:`~repro.core.batch.BatchedUplinkDecoder`, whose equality
    oracle guarantees bit-identical bits/errors to per-request decodes.
    With forensics recording enabled the batch falls back to the scalar
    per-request task so the record stream (decoder stages nested inside
    each request's ``serve`` record) stays byte-identical.
    """
    if obs.recording_enabled():
        return [
            decode_request_task(task.request_task(i))
            for i in range(len(task.seqs))
        ]
    from repro.core.batch import BatchItem, BatchedUplinkDecoder
    from repro.sim.link import synthesize_uplink_trial
    from repro.sim.metrics import bit_errors

    active = task.faults is not None and not task.faults.empty
    k = len(task.seqs)
    rows: List[Optional[Dict[str, Any]]] = [None] * k
    items: List[BatchItem] = []
    lanes: List[int] = []
    payloads: List[np.ndarray] = []
    synth_wall: List[float] = [0.0] * k
    for i in range(k):
        t0 = time.perf_counter()
        if active:
            task.faults.reset()
        rng = np.random.default_rng(
            np.random.SeedSequence(
                entropy=(task.root_seed, 1, task.seqs[i])
            )
        )
        try:
            payload, stream, tx_start = synthesize_uplink_trial(
                task.tag_to_reader_m,
                task.packets_per_bit,
                num_payload_bits=task.payload_bits,
                bit_rate_bps=task.bit_rate_bps,
                traffic="cbr",
                rng=rng,
                faults=task.faults,
                start_s=task.start_times_s[i],
                helper_to_tag_m=task.helper_to_tag_m,
            )
        except ReproError as exc:
            if not active:
                raise
            obs.quantile_sketch("fleet.decode.errors").observe(
                float(task.payload_bits)
            )
            rows[i] = {
                "seq": task.seqs[i],
                "ok": False,
                "errors": int(task.payload_bits),
                "payload": (),
                "failure": type(exc).__name__,
                "wall_s": time.perf_counter() - t0,
            }
            continue
        synth_wall[i] = time.perf_counter() - t0
        lanes.append(i)
        payloads.append(payload)
        items.append(BatchItem(
            stream=stream,
            num_bits=task.payload_bits,
            bit_duration_s=1.0 / task.bit_rate_bps,
            mode=task.mode,
            start_time_s=tx_start,
        ))
    if items:
        t0 = time.perf_counter()
        outcomes = BatchedUplinkDecoder().decode_batch(items)
        decode_share = (time.perf_counter() - t0) / len(items)
        for i, payload, outcome in zip(lanes, payloads, outcomes):
            if outcome.ok:
                errors = bit_errors(payload, outcome.result.bits)
                obs.counter("uplink.bits.total").inc(task.payload_bits)
                obs.counter("uplink.bits.errors").inc(errors)
                obs.quantile_sketch("fleet.decode.errors").observe(
                    float(errors)
                )
                rows[i] = {
                    "seq": task.seqs[i],
                    "ok": True,
                    "errors": int(errors),
                    "payload": tuple(
                        int(b) for b in outcome.result.bits
                    ),
                    "failure": "",
                    "wall_s": synth_wall[i] + decode_share,
                }
            else:
                if not active:
                    raise outcome.error
                obs.quantile_sketch("fleet.decode.errors").observe(
                    float(task.payload_bits)
                )
                rows[i] = {
                    "seq": task.seqs[i],
                    "ok": False,
                    "errors": int(task.payload_bits),
                    "payload": (),
                    "failure": type(outcome.error).__name__,
                    "wall_s": synth_wall[i] + decode_share,
                }
    return rows  # type: ignore[return-value]
