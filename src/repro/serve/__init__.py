"""Streaming decode gateway: the always-on serving layer.

The paper's gateway "provides the tags with Internet connectivity" as
a continuously running service, not a batch of trials.  This package
wraps the decode pipeline in exactly that shape: a virtual-time event
loop fed by the :mod:`repro.mac.traffic` / :mod:`repro.traces.synthetic`
arrival models, with

- bounded ingress/egress queues and **priority-aware load shedding**
  (newest-lowest-priority first, every shed counted in ``serve.shed``
  with a reason label — nothing is dropped silently);
- **per-request deadline budgets** (:class:`DeadlineBudget`) checked at
  admission and dispatch, so unmeetable requests are abandoned early
  instead of clogging the pipeline;
- **supervised decode workers** via
  :func:`repro.sim.engine.run_trials_supervised` — crashed or hung pool
  workers are detected, restarted, and their in-flight requests retried
  under re-derived deterministic seeds or dead-lettered with forensics
  correlation IDs intact;
- per-tag **circuit breakers** reusing the
  :mod:`repro.net.gateway` breaker state machine; and
- graceful drain plus crash-safe artifact flush (see
  :mod:`repro.obs.forensics.crash_flush`).

Control flow lives entirely in virtual time: arrivals, queueing,
shedding, deadlines, and service completions are a pure function of the
seed, so ``workers=0`` and ``workers=2`` deliver identical payload
sets and the whole overload story is replayable.
"""

from repro.serve.arrivals import ARRIVAL_PROFILES, generate_arrivals
from repro.serve.breaker import TagBreaker
from repro.serve.deadline import DeadlineBudget
from repro.serve.decode import ServeBatchTask, ServeDecodeTask, decode_batch_task
from repro.serve.gateway import ServeConfig, ServeResult, StreamingDecodeGateway, run_serve
from repro.serve.lifecycle import LifecycleTracker
from repro.serve.queues import BoundedPriorityQueue, ShedEvent
from repro.serve.report import ServeReport, render_serve_text
from repro.serve.request import (
    PRIORITIES,
    SHED_REASONS,
    SPAN_REQUEST,
    STATUSES,
    TERMINAL_SPANS,
    DecodeRequest,
    ServeOutcome,
)
from repro.serve.telemetry import (
    TelemetrySnapshotter,
    is_telemetry_header,
    read_telemetry,
)

__all__ = [
    "ARRIVAL_PROFILES",
    "BoundedPriorityQueue",
    "DeadlineBudget",
    "DecodeRequest",
    "LifecycleTracker",
    "PRIORITIES",
    "SHED_REASONS",
    "SPAN_REQUEST",
    "STATUSES",
    "ServeBatchTask",
    "ServeConfig",
    "ServeDecodeTask",
    "ServeOutcome",
    "ServeReport",
    "ServeResult",
    "ShedEvent",
    "StreamingDecodeGateway",
    "TERMINAL_SPANS",
    "TagBreaker",
    "TelemetrySnapshotter",
    "decode_batch_task",
    "generate_arrivals",
    "is_telemetry_header",
    "read_telemetry",
    "render_serve_text",
    "run_serve",
]
