"""Serve-run report: the gateway's accounted-for summary.

The report is the serving counterpart of a run manifest: every arrival
is attributed to exactly one disposition bucket, so operators (and the
chaos suite) can audit ``arrivals == delivered + decode_failed + shed
+ deadline_abandoned + worker_lost`` at a glance, see *why* load was
shed, and read the post-overload recovery verdict.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional


@dataclass
class ServeReport:
    """JSON-safe summary of one serve run."""

    run_id: str
    seed: int
    config: Dict[str, Any]
    arrivals: int
    delivered: int
    decode_failed: int
    shed: int
    deadline_abandoned: int
    worker_lost: int
    shed_by_reason: Dict[str, int]
    shed_by_priority: Dict[str, int]
    worker_crashes: int
    worker_stalls: int
    worker_restarts: int
    worker_retries: int
    dead_letters: int
    queue_depth_max: int
    egress_depth_max: int
    delivered_bits: int
    error_bits: int
    duration_virtual_s: float
    wall_s: float
    throughput_rps: float
    latency_mean_s: float
    latency_p99_s: float
    wall_latency_p99_s: float
    breaker_opened: int
    quarantined_tags: int
    recovery_s: Optional[float]
    recovered: bool
    alerts: List[Dict[str, Any]] = field(default_factory=list)
    stopped_early: bool = False
    #: Every burn-rate fire/clear transition, in evaluation order.
    burn_alerts: List[Dict[str, Any]] = field(default_factory=list)
    #: Error budget left over the budget window at end of run (1.0 =
    #: untouched, 0.0 = exactly spent, negative = overspent); None
    #: when no good-event samples landed.
    budget_remaining: Optional[float] = None
    #: Per-latency-bucket worst request: ``{le, value, corr_id, t_s}``.
    exemplars: List[Dict[str, Any]] = field(default_factory=list)
    #: Tags force-quarantined by the burn-rate pre-emption hook.
    breaker_preempted: int = 0
    telemetry_path: Optional[str] = None
    telemetry_snapshots: int = 0
    #: Micro-batching (``batch_max`` set): decode batches dispatched,
    #: and their size stats.  All zero on the per-request path.
    batches: int = 0
    batch_size_max: int = 0
    batch_size_mean: float = 0.0
    #: Fleet telemetry summary (tracked/evicted tag accounting, top-K
    #: offender boards, health histogram, anomaly state, latency
    #: sketch) — see :class:`repro.obs.fleet.FleetAggregator.summary`.
    fleet: Dict[str, Any] = field(default_factory=dict)
    #: Path of the ``--health-out`` artifact, when one was written.
    health_path: Optional[str] = None

    @property
    def accounted(self) -> int:
        """Requests with a terminal disposition (must equal arrivals)."""
        return (
            self.delivered + self.decode_failed + self.shed
            + self.deadline_abandoned + self.worker_lost
        )

    @property
    def ber(self) -> float:
        if self.delivered_bits == 0:
            return 0.0
        return self.error_bits / self.delivered_bits

    @property
    def shed_fraction(self) -> float:
        if self.arrivals == 0:
            return 0.0
        return self.shed / self.arrivals

    def to_dict(self) -> Dict[str, Any]:
        return {
            "run_id": self.run_id,
            "seed": self.seed,
            "config": self.config,
            "arrivals": self.arrivals,
            "accounted": self.accounted,
            "delivered": self.delivered,
            "decode_failed": self.decode_failed,
            "shed": self.shed,
            "shed_fraction": self.shed_fraction,
            "shed_by_reason": dict(self.shed_by_reason),
            "shed_by_priority": dict(self.shed_by_priority),
            "deadline_abandoned": self.deadline_abandoned,
            "worker_lost": self.worker_lost,
            "worker_crashes": self.worker_crashes,
            "worker_stalls": self.worker_stalls,
            "worker_restarts": self.worker_restarts,
            "worker_retries": self.worker_retries,
            "dead_letters": self.dead_letters,
            "queue_depth_max": self.queue_depth_max,
            "egress_depth_max": self.egress_depth_max,
            "delivered_bits": self.delivered_bits,
            "error_bits": self.error_bits,
            "ber": self.ber,
            "duration_virtual_s": self.duration_virtual_s,
            "wall_s": self.wall_s,
            "throughput_rps": self.throughput_rps,
            "latency_mean_s": self.latency_mean_s,
            "latency_p99_s": self.latency_p99_s,
            "wall_latency_p99_s": self.wall_latency_p99_s,
            "breaker_opened": self.breaker_opened,
            "quarantined_tags": self.quarantined_tags,
            "recovery_s": self.recovery_s,
            "recovered": self.recovered,
            "alerts": list(self.alerts),
            "stopped_early": self.stopped_early,
            "burn_alerts": list(self.burn_alerts),
            "budget_remaining": self.budget_remaining,
            "exemplars": list(self.exemplars),
            "breaker_preempted": self.breaker_preempted,
            "telemetry_path": self.telemetry_path,
            "telemetry_snapshots": self.telemetry_snapshots,
            "batches": self.batches,
            "batch_size_max": self.batch_size_max,
            "batch_size_mean": self.batch_size_mean,
            "fleet": dict(self.fleet),
            "health_path": self.health_path,
        }


def render_serve_text(report: ServeReport) -> str:
    """Terminal-friendly rendering of a serve report."""
    cfg = report.config
    lines = [
        f"serve run {report.run_id} (seed {report.seed})",
        (
            f"  load: {cfg.get('offered_load_rps', 0):.2f} rps offered, "
            f"{cfg.get('capacity_rps', 0):.2f} rps capacity, "
            f"{report.duration_virtual_s:.1f} s virtual "
            f"({report.wall_s:.1f} s wall)"
        ),
        (
            f"  arrivals {report.arrivals}  delivered {report.delivered}"
            f"  decode-failed {report.decode_failed}"
            f"  shed {report.shed}"
            f"  deadline-abandoned {report.deadline_abandoned}"
            f"  worker-lost {report.worker_lost}"
        ),
    ]
    if report.accounted != report.arrivals:
        lines.append(
            f"  !! accounting mismatch: {report.accounted} accounted "
            f"vs {report.arrivals} arrivals"
        )
    if report.shed:
        reasons = ", ".join(
            f"{k}={v}" for k, v in sorted(report.shed_by_reason.items())
        )
        prios = ", ".join(
            f"{k}={v}" for k, v in sorted(report.shed_by_priority.items())
        )
        lines.append(f"  shed by reason: {reasons}")
        lines.append(f"  shed by priority: {prios}")
    lines.append(
        f"  queue depth max {report.queue_depth_max}"
        f" (bound {cfg.get('queue_capacity')})"
        f"  egress depth max {report.egress_depth_max}"
    )
    lines.append(
        f"  workers: crashes {report.worker_crashes}"
        f"  stalls {report.worker_stalls}"
        f"  restarts {report.worker_restarts}"
        f"  retries {report.worker_retries}"
        f"  dead-letters {report.dead_letters}"
    )
    lines.append(
        f"  breaker: opened {report.breaker_opened}"
        f"  quarantined tags {report.quarantined_tags}"
        f"  preempted {report.breaker_preempted}"
    )
    if report.batches:
        lines.append(
            f"  micro-batches {report.batches}"
            f"  size mean {report.batch_size_mean:.1f}"
            f"  max {report.batch_size_max}"
        )
    lines.append(
        f"  delivered bits {report.delivered_bits}"
        f"  ber {report.ber:.4g}"
        f"  throughput {report.throughput_rps:.2f} req/s"
        f"  latency mean {report.latency_mean_s * 1e3:.0f} ms"
        f"  p99 {report.latency_p99_s * 1e3:.0f} ms"
    )
    if report.recovery_s is not None:
        lines.append(
            f"  recovered {report.recovery_s:.1f} s after burst end"
        )
    elif not report.recovered:
        lines.append("  !! did not recover to steady state")
    if report.budget_remaining is not None:
        lines.append(
            f"  error budget remaining {report.budget_remaining:.1%}"
        )
    if report.burn_alerts:
        fired = sum(1 for a in report.burn_alerts if a.get("kind") == "fired")
        cleared = sum(
            1 for a in report.burn_alerts if a.get("kind") == "cleared"
        )
        lines.append(
            f"  burn-rate transitions: {fired} fired, {cleared} cleared"
        )
        for alert in report.burn_alerts:
            msg = alert.get("message") or (
                f"{alert.get('kind')} {alert.get('metric')}"
            )
            lines.append(f"    - t={alert.get('at_s', 0.0):.1f}s {msg}")
    fleet = report.fleet or {}
    if fleet.get("outcomes"):
        anomalous = fleet.get("anomalous") or []
        lines.append(
            f"  fleet: {fleet.get('tags_seen', 0)} tag admissions"
            f"  tracked {fleet.get('tracked', 0)}"
            f"  evicted {fleet.get('evictions', 0)}"
            f"  anomalous {len(anomalous)}"
            + (f" ({', '.join(str(t) for t in anomalous)})"
               if anomalous else "")
        )
        offenders = fleet.get("offenders") or {}
        worst = []
        for kind in ("shed", "failure", "error_bits", "latency"):
            entries = offenders.get(kind) or []
            if entries:
                top = entries[0]
                worst.append(
                    f"{kind}: tag {top.get('key')}"
                    f" ({top.get('count'):.4g})"
                )
        if worst:
            lines.append("  fleet offenders: " + "  ".join(worst))
    if report.health_path:
        lines.append(f"  fleet health artifact -> {report.health_path}")
    if report.telemetry_path:
        lines.append(
            f"  telemetry: {report.telemetry_snapshots} snapshots"
            f" -> {report.telemetry_path}"
        )
    if report.alerts:
        lines.append(f"  slo alerts: {len(report.alerts)}")
        for alert in report.alerts:
            lines.append(f"    - {alert}")
    if report.stopped_early:
        lines.append("  stopped early (drain requested)")
    return "\n".join(lines)
