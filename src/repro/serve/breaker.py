"""Per-tag circuit breakers for the serve path.

Reuses the breaker state machine the polling gateway
(:mod:`repro.net.gateway`) introduced — closed / open / half-open with
quarantine doubling and a single reopen probe — but keyed on *decode*
failures: a tag whose transmissions repeatedly fail to decode (dead
battery, hopeless channel, persistent interference at its spot) stops
being admitted to the queue, so it cannot starve healthy tags of
decode slots.  Time here is the serve loop's virtual clock.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro import obs
from repro.errors import ConfigurationError
from repro.net.gateway import (
    BREAKER_CLOSED,
    BREAKER_HALF_OPEN,
    BREAKER_OPEN,
)


@dataclass
class _TagBreakerState:
    state: str = BREAKER_CLOSED
    consecutive_failures: int = 0
    open_until_s: float = 0.0
    quarantine_s: float = 0.0
    opened: int = 0


class TagBreaker:
    """Consecutive-failure breaker over tag addresses (virtual time)."""

    def __init__(
        self,
        failure_threshold: int = 3,
        quarantine_s: float = 5.0,
        max_quarantine_s: float = 60.0,
    ) -> None:
        if failure_threshold < 1:
            raise ConfigurationError("failure_threshold must be >= 1")
        if quarantine_s <= 0 or max_quarantine_s < quarantine_s:
            raise ConfigurationError(
                "need 0 < quarantine_s <= max_quarantine_s"
            )
        self.failure_threshold = failure_threshold
        self.quarantine_s = quarantine_s
        self.max_quarantine_s = max_quarantine_s
        self._tags: Dict[int, _TagBreakerState] = {}
        self.opened_total = 0

    def _state(self, tag: int) -> _TagBreakerState:
        return self._tags.setdefault(tag, _TagBreakerState())

    def admit(self, tag: int, now_s: float) -> bool:
        """Whether a request from ``tag`` may enter the queue now.

        An expired quarantine admits exactly one probe request
        (half-open); its outcome decides between closing and a doubled
        quarantine.
        """
        st = self._state(tag)
        if st.state == BREAKER_OPEN:
            if now_s < st.open_until_s:
                return False
            st.state = BREAKER_HALF_OPEN
            obs.counter("serve.breaker.probes").inc()
        return True

    def record_success(self, tag: int) -> None:
        st = self._state(tag)
        if st.state == BREAKER_HALF_OPEN:
            obs.counter("serve.breaker.recovered").inc()
        st.state = BREAKER_CLOSED
        st.consecutive_failures = 0
        st.quarantine_s = 0.0

    def record_failure(self, tag: int, now_s: float) -> None:
        st = self._state(tag)
        st.consecutive_failures += 1
        if st.state == BREAKER_HALF_OPEN or \
                st.consecutive_failures >= self.failure_threshold:
            st.quarantine_s = min(
                self.max_quarantine_s,
                st.quarantine_s * 2.0 if st.quarantine_s else
                self.quarantine_s,
            )
            st.state = BREAKER_OPEN
            st.open_until_s = now_s + st.quarantine_s
            st.consecutive_failures = 0
            st.opened += 1
            self.opened_total += 1
            obs.counter("serve.breaker.opened").inc()

    def preempt(self, tag: int, now_s: float) -> bool:
        """Force-open ``tag``'s breaker before the failure threshold.

        The burn-rate quarantine hook: when the error budget is
        burning fast, tags with recent failures are quarantined
        immediately instead of being given ``failure_threshold`` more
        decode slots.  Quarantine doubling and the half-open probe
        path behave exactly as for a threshold-triggered open.
        Returns False (and does nothing) when already open.
        """
        st = self._state(tag)
        if st.state == BREAKER_OPEN:
            return False
        st.quarantine_s = min(
            self.max_quarantine_s,
            st.quarantine_s * 2.0 if st.quarantine_s else
            self.quarantine_s,
        )
        st.state = BREAKER_OPEN
        st.open_until_s = now_s + st.quarantine_s
        st.consecutive_failures = 0
        st.opened += 1
        self.opened_total += 1
        obs.counter("serve.breaker.preempted").inc()
        return True

    def state_of(self, tag: int) -> str:
        return self._state(tag).state

    def states(self) -> Dict[int, str]:
        """Per-tag breaker state for every tag seen so far (sorted)."""
        return {t: self._tags[t].state for t in sorted(self._tags)}

    def open_tags(self) -> List[int]:
        return sorted(
            t for t, st in self._tags.items() if st.state == BREAKER_OPEN
        )
