"""The streaming decode gateway: virtual-time serve loop.

:class:`StreamingDecodeGateway` runs a batched single-server queueing
loop over a deterministic arrival schedule.  Decode *capacity* is
modeled in virtual time (one request occupies the server for the
payload's airtime, ``payload_bits / bit_rate_bps``, unless configured
otherwise), while the decode *computation* is real — every admitted
request runs the full uplink pipeline under
:func:`repro.sim.engine.run_trials_supervised`, so worker crashes and
stalls are genuine process deaths and hangs, not simulations.

Because all control decisions (admission, shedding, deadlines, breaker
state, service completions) use only virtual time and seeded draws,
the entire run — including which requests are shed and what payloads
are delivered — is a pure function of ``(config, seed)``.  Wall-clock
time appears solely as measurement (latency metrics in the report).

Every request ends in exactly one :class:`ServeOutcome`; the loop
maintains ``arrivals == delivered + decode_failed + shed +
deadline_abandoned + worker_lost`` as an internal invariant.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Dict, List, Optional, Tuple

import numpy as np

from repro import obs
from repro.errors import ConfigurationError
from repro.faults.base import FaultPlan
from repro.obs import forensics
from repro.obs import state as obs_state
from repro.obs.perf.burnrate import BudgetObjective, BurnRateEngine
from repro.obs.perf.slo import SloEngine
from repro.obs.perf.timeseries import (
    ExemplarReservoir,
    TimeSeries,
    percentile_of,
)
from repro.serve.arrivals import ARRIVAL_PROFILES, generate_arrivals
from repro.serve.breaker import TagBreaker
from repro.serve.deadline import DeadlineBudget
from repro.serve.decode import (
    ServeBatchTask,
    ServeDecodeTask,
    decode_batch_task,
    decode_request_task,
)
from repro.serve.lifecycle import LifecycleTracker
from repro.serve.queues import BoundedPriorityQueue, ShedEvent, count_shed
from repro.serve.report import ServeReport
from repro.serve.request import (
    SHED_DRAIN,
    SHED_EGRESS_FULL,
    SHED_QUARANTINED,
    STATUS_DEADLINE,
    STATUS_DECODE_FAILED,
    STATUS_DELIVERED,
    STATUS_SHED,
    STATUS_WORKER_LOST,
    DecodeRequest,
    ServeOutcome,
)
from repro.serve.telemetry import (
    TELEMETRY_WINDOW_CADENCES,
    TelemetrySnapshotter,
)

#: Metric name of the gateway's private 0/1 good-event series watched
#: by the burn-rate engine (1 = delivered, 0 = any other disposition).
BUDGET_METRIC = "serve.request.ok"

#: Metric name of the gateway's private virtual-latency series.
LATENCY_METRIC = "serve.latency.virtual_s"

#: Forensics failure names for serve-level dispositions (mapped to
#: attribution labels by :mod:`repro.obs.forensics.attribution`).
FAILURE_SHED = "Shed"
FAILURE_DEADLINE = "DeadlineAbandoned"
FAILURE_WORKER_LOST = "WorkerLost"


@dataclass(frozen=True)
class ServeConfig:
    """Declarative configuration for one serve run."""

    duration_s: float = 30.0
    offered_load_rps: float = 4.0
    burst_load_rps: Optional[float] = None
    burst_start_s: float = 0.0
    burst_end_s: float = 0.0
    deadline_ms: float = 4000.0
    queue_capacity: int = 32
    egress_capacity: int = 256
    batch: int = 4
    #: Micro-batching: when set, up to ``batch_max`` queued requests
    #: coalesce into ONE :class:`ServeBatchTask` decoded in a single
    #: batched pass (instead of one task per request).  The gateway
    #: holds dispatch while the next arrival lands within
    #: ``batch_window_s`` (virtual) of the oldest queued request, so a
    #: trickle of traffic still forms batches.  None = per-request
    #: dispatch, the legacy path.
    batch_max: Optional[int] = None
    batch_window_s: float = 0.0
    workers: int = 0
    service_time_s: Optional[float] = None
    n_tags: int = 8
    priority_mix: Tuple[float, ...] = (0.2, 0.6, 0.2)
    payload_bits: int = 16
    tag_to_reader_m: float = 0.3
    packets_per_bit: float = 8.0
    mode: str = "csi"
    bit_rate_bps: float = 100.0
    arrival_profile: str = "poisson"
    office_hour: float = 14.5
    helper_to_tag_m: float = 3.0
    drain_budget_s: float = 60.0
    publish_rate_rps: Optional[float] = None
    stall_timeout_s: float = 0.35
    max_attempts: int = 3
    breaker_threshold: int = 3
    breaker_quarantine_s: float = 5.0
    recovery_window_s: float = 5.0
    recovery_delivery_ratio: float = 0.9
    budget_target: float = 0.99
    budget_window_s: float = 3600.0
    telemetry_cadence_s: float = 1.0
    #: Fleet telemetry: tracked-tag bound of the per-tag health
    #: registry (memory is O(fleet_capacity); overflow aggregates into
    #: the ``other`` bucket), offender-board size, and the robust
    #: z-score anomaly threshold (see ``repro.obs.fleet``).
    fleet_capacity: int = 64
    fleet_top_k: int = 8
    fleet_anomaly_z: float = 3.0
    fleet_min_requests: int = 3
    #: Sabotaged tags: requests from these tag addresses decode at
    #: ``outlier_distance_m`` instead of ``tag_to_reader_m`` — a
    #: physically real degradation used to exercise the fleet anomaly
    #: detector.  Requires the per-request dispatch path (no
    #: ``batch_max``): a micro-batch decodes at one shared distance.
    outlier_tags: Tuple[int, ...] = ()
    outlier_distance_m: Optional[float] = None

    def __post_init__(self) -> None:
        if self.duration_s <= 0:
            raise ConfigurationError("duration_s must be positive")
        if self.offered_load_rps <= 0:
            raise ConfigurationError("offered_load_rps must be positive")
        if self.deadline_ms <= 0:
            raise ConfigurationError("deadline_ms must be positive")
        if self.queue_capacity < 1:
            raise ConfigurationError("queue_capacity must be >= 1")
        if self.batch < 1:
            raise ConfigurationError("batch must be >= 1")
        if self.batch_max is not None and self.batch_max < 1:
            raise ConfigurationError("batch_max must be >= 1 or None")
        if self.batch_window_s < 0:
            raise ConfigurationError("batch_window_s must be >= 0")
        if self.payload_bits < 1:
            raise ConfigurationError("payload_bits must be >= 1")
        if self.arrival_profile not in ARRIVAL_PROFILES:
            raise ConfigurationError(
                f"arrival_profile must be one of {ARRIVAL_PROFILES}"
            )
        if len(self.priority_mix) != 3 or any(
            p < 0 for p in self.priority_mix
        ) or sum(self.priority_mix) <= 0:
            raise ConfigurationError(
                "priority_mix must be 3 non-negative weights"
            )
        if self.burst_load_rps is not None and \
                self.burst_load_rps < self.offered_load_rps:
            raise ConfigurationError(
                "burst_load_rps must be >= offered_load_rps"
            )
        if not (0.0 < self.budget_target < 1.0):
            raise ConfigurationError("budget_target must be in (0, 1)")
        if self.budget_window_s <= 0:
            raise ConfigurationError("budget_window_s must be positive")
        if self.telemetry_cadence_s <= 0:
            raise ConfigurationError("telemetry_cadence_s must be positive")
        if self.fleet_capacity < 1:
            raise ConfigurationError("fleet_capacity must be >= 1")
        if self.fleet_top_k < 1:
            raise ConfigurationError("fleet_top_k must be >= 1")
        if self.fleet_anomaly_z <= 0:
            raise ConfigurationError("fleet_anomaly_z must be positive")
        if self.fleet_min_requests < 1:
            raise ConfigurationError("fleet_min_requests must be >= 1")
        if self.outlier_tags:
            if self.outlier_distance_m is None:
                raise ConfigurationError(
                    "outlier_tags require outlier_distance_m"
                )
            if self.batch_max is not None:
                raise ConfigurationError(
                    "outlier_tags require per-request dispatch "
                    "(batch_max must be None)"
                )
            if any(t < 0 for t in self.outlier_tags):
                raise ConfigurationError(
                    "outlier_tags must be non-negative tag addresses"
                )
        if self.outlier_distance_m is not None and \
                self.outlier_distance_m <= 0:
            raise ConfigurationError(
                "outlier_distance_m must be positive"
            )

    @property
    def effective_service_s(self) -> float:
        """Virtual decode-slot occupancy per request (payload airtime)."""
        if self.service_time_s is not None:
            return float(self.service_time_s)
        return self.payload_bits / self.bit_rate_bps

    @property
    def capacity_rps(self) -> float:
        return 1.0 / self.effective_service_s

    def to_dict(self) -> Dict[str, Any]:
        d = {
            k: getattr(self, k)
            for k in self.__dataclass_fields__  # type: ignore[attr-defined]
        }
        d["priority_mix"] = list(self.priority_mix)
        d["outlier_tags"] = list(self.outlier_tags)
        d["capacity_rps"] = self.capacity_rps
        return d


@dataclass
class ServeResult:
    """Full output of one serve run."""

    report: ServeReport
    outcomes: List[ServeOutcome]
    shed_events: List[ShedEvent]

    @property
    def delivered(self) -> List[ServeOutcome]:
        return [o for o in self.outcomes if o.delivered]

    def delivered_payloads(self) -> Dict[str, Tuple[int, ...]]:
        """corr_id -> decoded payload, for determinism comparisons."""
        return {o.corr_id: o.payload for o in self.outcomes if o.delivered}


class StreamingDecodeGateway:
    """Always-on decode service over a bounded ingress queue."""

    def __init__(
        self,
        config: ServeConfig,
        faults: Optional[FaultPlan] = None,
        slo: Optional[SloEngine] = None,
        seed: Optional[int] = None,
        telemetry_out: Optional[str] = None,
        health_out: Optional[str] = None,
    ) -> None:
        from repro.obs.fleet import FleetAggregator
        from repro.sim.seeding import resolve_rng

        _, effective = resolve_rng(None, seed)
        self.config = config
        self.faults = faults
        self.slo = slo
        self.seed = int(effective if effective is not None else 0)
        self.run_id = f"serve-{self.seed}"
        self.telemetry_out = telemetry_out
        self.health_out = health_out
        self.breaker = TagBreaker(
            failure_threshold=config.breaker_threshold,
            quarantine_s=config.breaker_quarantine_s,
        )
        #: Fleet telemetry fold target; every settled request lands
        #: here (fixed memory regardless of distinct tag count).
        self.fleet = FleetAggregator(
            capacity=config.fleet_capacity,
            top_k=config.fleet_top_k,
            z_threshold=config.fleet_anomaly_z,
            min_requests=config.fleet_min_requests,
        )

    # -- forensics ----------------------------------------------------------

    def _record_disposition(
        self, req: DecodeRequest, failure: str, reason: str, now_s: float
    ) -> None:
        if not obs.recording_enabled():
            return
        forensics.begin(
            "serve", run_id=self.run_id, trial=req.seq, packet=0
        )
        forensics.stage(
            "serve",
            disposition=failure,
            reason=reason,
            priority=req.priority_name,
            arrival_s=req.arrival_s,
            deadline_s=req.deadline_s,
            time_s=now_s,
        )
        forensics.commit(errors=req.payload_bits, failure=failure)

    # -- terminal dispositions ---------------------------------------------

    def _shed_outcome(
        self, req: DecodeRequest, reason: str, now_s: float
    ) -> ServeOutcome:
        self._record_disposition(req, FAILURE_SHED, reason, now_s)
        return ServeOutcome(
            seq=req.seq,
            corr_id=req.corr_id,
            tag_address=req.tag_address,
            priority=req.priority,
            status=STATUS_SHED,
            reason=reason,
            errors=req.payload_bits,
            completed_s=now_s,
        )

    def _shed_event(
        self, req: DecodeRequest, reason: str, now_s: float
    ) -> ShedEvent:
        event = ShedEvent(
            seq=req.seq,
            corr_id=req.corr_id,
            priority=req.priority,
            reason=reason,
            time_s=now_s,
            worst_present=-1,
        )
        count_shed(event)
        return event

    # -- the loop -----------------------------------------------------------

    def run(
        self, should_stop: Optional[Callable[[], bool]] = None
    ) -> ServeResult:
        cfg = self.config
        wall_start = time.perf_counter()
        arrivals = generate_arrivals(cfg, self.seed)
        service = cfg.effective_service_s
        ingress = BoundedPriorityQueue(cfg.queue_capacity)
        egress: List[ServeOutcome] = []
        egress_depth_max = 0
        published = 0
        outcomes: List[ServeOutcome] = []
        shed_events: List[ShedEvent] = []
        windows: Dict[int, Dict[str, int]] = {}
        sup_totals = {"crashes": 0, "stalls": 0, "restarts": 0,
                      "retries": 0, "dead_letters": 0}
        wall_latencies: List[float] = []
        by_seq = {r.seq: r for r in arrivals}
        plan = self.faults if (
            self.faults is not None and self.faults.has_worker_faults
        ) else None
        drain_deadline = cfg.duration_s + cfg.drain_budget_s
        now = 0.0
        i = 0
        stopped = False
        batching = cfg.batch_max is not None
        batch_seq = 0
        batch_sizes: List[int] = []

        # Telemetry plumbing.  Everything below runs on the virtual
        # clock: the lifecycle tracker builds span trees from virtual
        # bounds, the burn engine reads gateway-private ring buffers
        # sampled at virtual completion times, and snapshots fire on a
        # virtual cadence — so all of it is a pure function of
        # ``(config, seed)``, independent of worker count.
        tracer = (
            obs_state.get_tracer() if obs_state.tracing_enabled() else None
        )
        lifecycle = LifecycleTracker(self.run_id, tracer)
        exemplars = ExemplarReservoir()
        series_cap = max(1024, 2 * len(arrivals) + 8)
        ok_series = TimeSeries(BUDGET_METRIC, capacity=series_cap)
        lat_series = TimeSeries(LATENCY_METRIC, capacity=series_cap)
        series = {BUDGET_METRIC: ok_series, LATENCY_METRIC: lat_series}
        if self.slo is not None and self.slo.burn.objectives:
            burn = self.slo.burn
        else:
            burn = BurnRateEngine([BudgetObjective(
                BUDGET_METRIC,
                target=cfg.budget_target,
                budget_s=cfg.budget_window_s,
                action="quarantine",
            )])
        snapshotter: Optional[TelemetrySnapshotter] = None
        if self.telemetry_out is not None:
            snapshotter = TelemetrySnapshotter(
                self.telemetry_out,
                run_id=self.run_id,
                cadence_s=cfg.telemetry_cadence_s,
                meta={
                    "seed": self.seed,
                    "duration_s": cfg.duration_s,
                    "budget_target": cfg.budget_target,
                    "budget_window_s": cfg.budget_window_s,
                },
            )
        counts: Dict[str, int] = {}
        shed_reasons: Dict[str, int] = {}
        recent_failures: Dict[int, float] = {}
        preempted = 0
        next_tick = cfg.telemetry_cadence_s

        def bump(t: float, key: str, n: int = 1) -> None:
            w = windows.setdefault(
                int(t // cfg.recovery_window_s),
                {"arrived": 0, "delivered": 0, "queue_full": 0,
                 "deadline": 0},
            )
            w[key] = w.get(key, 0) + n

        def settle(outcome: ServeOutcome) -> None:
            """Every terminal disposition funnels through here exactly
            once: accounting, the burn-rate good-event sample, latency
            exemplars, and the request's lifecycle span tree."""
            outcomes.append(outcome)
            counts[outcome.status] = counts.get(outcome.status, 0) + 1
            if outcome.status == STATUS_SHED:
                shed_reasons[outcome.reason] = \
                    shed_reasons.get(outcome.reason, 0) + 1
            t = outcome.completed_s
            ok_series.sample(1.0 if outcome.delivered else 0.0, t=t)
            if outcome.delivered:
                lat_series.sample(outcome.latency_s, t=t)
                exemplars.observe(outcome.latency_s, outcome.corr_id, t,
                                  tag=outcome.tag_address)
            elif outcome.status in (STATUS_DECODE_FAILED,
                                    STATUS_WORKER_LOST):
                recent_failures[outcome.tag_address] = t
            self.fleet.fold(
                outcome.tag_address,
                outcome.status,
                latency_s=outcome.latency_s,
                errors=outcome.errors,
                bits=len(outcome.payload) if outcome.delivered else 0,
                breaker_state=self.breaker.state_of(outcome.tag_address),
                t=t,
                corr_id=outcome.corr_id,
            )
            lifecycle.finish(outcome)

        def window_latency(t: float) -> Dict[str, Any]:
            cutoff = t - TELEMETRY_WINDOW_CADENCES * cfg.telemetry_cadence_s
            ordered = sorted(lat_series.values_since(cutoff))
            if not ordered:
                return {"count": 0, "mean": 0.0, "p50": 0.0,
                        "p95": 0.0, "p99": 0.0}
            return {
                "count": len(ordered),
                "mean": sum(ordered) / len(ordered),
                "p50": percentile_of(ordered, 50),
                "p95": percentile_of(ordered, 95),
                "p99": percentile_of(ordered, 99),
            }

        def tick(t: float) -> None:
            """One cadence boundary: burn evaluation, the quarantine
            pre-emption hook, and (when enabled) a snapshot line."""
            nonlocal preempted
            transitions = burn.evaluate(
                series, t, context={"run_id": self.run_id, "t_s": t}
            )
            for alert in transitions:
                if alert.kind != "fired" or alert.action != "quarantine":
                    continue
                # Budget burning fast: stop giving decode slots to tags
                # that failed within the alert's evidence window instead
                # of waiting out the consecutive-failure threshold.
                horizon = t - alert.window.long_s
                for tag in sorted(recent_failures):
                    if recent_failures[tag] >= horizon and \
                            self.breaker.preempt(tag, t):
                        preempted += 1
            # Anomaly detection runs every tick regardless of the
            # snapshot stream, so the report's transition log is the
            # same with or without --telemetry-out.
            fleet_transitions = self.fleet.detect(t)
            if snapshotter is None:
                return
            snapshotter.snapshot({
                "t_s": t,
                "arrivals": i,
                "delivered": counts.get(STATUS_DELIVERED, 0),
                "decode_failed": counts.get(STATUS_DECODE_FAILED, 0),
                "shed": counts.get(STATUS_SHED, 0),
                "deadline_abandoned": counts.get(STATUS_DEADLINE, 0),
                "worker_lost": counts.get(STATUS_WORKER_LOST, 0),
                "shed_by_reason": dict(sorted(shed_reasons.items())),
                "queue_depth": len(ingress),
                "queue_depth_max": ingress.depth_max,
                "egress_depth": len(egress),
                "breaker": {
                    str(tag): st
                    for tag, st in self.breaker.states().items()
                },
                "breaker_preempted": preempted,
                "latency": window_latency(t),
                "budget": burn.status(series, t),
                "alerts": [a.to_dict() for a in transitions],
                "alerts_active": len(burn.active_alerts()),
                "exemplars": exemplars.to_dicts(),
                "fleet": self.fleet.snapshot_block(fleet_transitions),
            })

        def run_ticks(t: float) -> None:
            nonlocal next_tick
            while next_tick <= t:
                tick(next_tick)
                next_tick += cfg.telemetry_cadence_s

        def admit(req: DecodeRequest) -> None:
            obs.counter("serve.arrivals").inc()
            bump(req.arrival_s, "arrived")
            # Breaker state *before* the admission check (which flips
            # an expired quarantine to half-open) — the span records
            # what the gate saw, not what the check left behind.
            breaker_state = self.breaker.state_of(req.tag_address)
            depth = len(ingress)
            if not self.breaker.admit(req.tag_address, now):
                lifecycle.ingress(req, now, depth, breaker_state, False)
                shed_events.append(
                    self._shed_event(req, SHED_QUARANTINED, now)
                )
                settle(self._shed_outcome(req, SHED_QUARANTINED, now))
                return
            admitted, event = ingress.offer(req, now)
            lifecycle.ingress(req, now, depth, breaker_state, admitted)
            if event is not None:
                shed_events.append(event)
                bump(event.time_s, "queue_full")
                victim = req if not admitted else by_seq[event.seq]
                settle(self._shed_outcome(victim, event.reason, now))
            if admitted:
                obs.counter("serve.admitted").inc()

        def publish(outcome: ServeOutcome) -> None:
            nonlocal egress_depth_max
            if len(egress) >= cfg.egress_capacity:
                # The decode happened but nothing upstream will see it;
                # that is a shed, and it is counted like every other.
                req = by_seq[outcome.seq]
                shed_events.append(
                    self._shed_event(req, SHED_EGRESS_FULL,
                                     outcome.completed_s)
                )
                settle(self._shed_outcome(
                    req, SHED_EGRESS_FULL, outcome.completed_s
                ))
                return
            egress.append(outcome)
            egress_depth_max = max(egress_depth_max, len(egress))
            settle(outcome)
            obs.counter("serve.delivered").inc()
            obs.timeseries("serve.latency_s").sample(outcome.latency_s)
            bump(outcome.completed_s, "delivered")

        def drain_egress(t: float) -> None:
            nonlocal published
            if cfg.publish_rate_rps is None:
                published += len(egress)
                egress.clear()
                return
            allowance = int(t * cfg.publish_rate_rps) - published
            while egress and allowance > 0:
                egress.pop(0)
                published += 1
                allowance -= 1

        while i < len(arrivals) or len(ingress):
            if should_stop is not None and should_stop():
                stopped = True
                break
            if now > drain_deadline:
                break
            if not len(ingress):
                if i >= len(arrivals):
                    break
                now = max(now, arrivals[i].arrival_s)
                run_ticks(now)
            while i < len(arrivals) and arrivals[i].arrival_s <= now:
                admit(arrivals[i])
                i += 1
            obs.timeseries("serve.queue_depth").sample(float(len(ingress)))
            if not len(ingress):
                continue
            batch_id: Optional[int] = None
            if batching:
                # Coalesce: hold dispatch while the batch can still
                # grow — the next arrival lands within the window of
                # the oldest queued request.  If the window has time
                # left but no arrival will make it, dispatch at the
                # window boundary (the wait is honest latency).
                if len(ingress) < cfg.batch_max and i < len(arrivals):
                    oldest = ingress.oldest_arrival_s()
                    window_end = (
                        oldest if oldest is not None else now
                    ) + cfg.batch_window_s
                    if arrivals[i].arrival_s <= window_end:
                        now = max(now, arrivals[i].arrival_s)
                        run_ticks(now)
                        continue
                    if window_end > now:
                        now = window_end
                        run_ticks(now)
                batch_id = batch_seq
                batch_seq += 1
            batch = ingress.pop_batch(
                cfg.batch_max if batching else cfg.batch
            )
            if lifecycle.enabled:
                depth_after = len(ingress)
                for bi, req in enumerate(batch):
                    lifecycle.dispatch(
                        req, now, bi, len(batch), depth_after,
                        batch_id=batch_id,
                    )
            ready: List[DecodeRequest] = []
            for req in batch:
                budget = DeadlineBudget(
                    arrival_s=req.arrival_s,
                    budget_s=cfg.deadline_ms / 1000.0,
                )
                if not budget.can_meet(now, service):
                    obs.counter("serve.deadline_miss").inc()
                    bump(now, "deadline")
                    self._record_disposition(
                        req, FAILURE_DEADLINE, "unmeetable_slo", now
                    )
                    settle(ServeOutcome(
                        seq=req.seq,
                        corr_id=req.corr_id,
                        tag_address=req.tag_address,
                        priority=req.priority,
                        status=STATUS_DEADLINE,
                        reason="unmeetable_slo",
                        errors=req.payload_bits,
                        completed_s=now,
                        latency_s=now - req.arrival_s,
                    ))
                else:
                    ready.append(req)
            if not ready:
                continue
            from repro.sim import engine

            if batching:
                # One supervised task for the whole micro-batch.  Its
                # sabotage key is the first member's seq, so a fault
                # plan's crash verdicts are stable under re-batching;
                # a dead-lettered batch loses every member.
                batch_sizes.append(len(ready))
                obs.counter("serve.batches").inc()
                obs.histogram("serve.batch_size").observe(
                    float(len(ready))
                )
                btask = ServeBatchTask(
                    batch_id=batch_id if batch_id is not None else 0,
                    run_id=self.run_id,
                    root_seed=self.seed,
                    payload_bits=cfg.payload_bits,
                    tag_to_reader_m=cfg.tag_to_reader_m,
                    packets_per_bit=cfg.packets_per_bit,
                    mode=cfg.mode,
                    bit_rate_bps=cfg.bit_rate_bps,
                    helper_to_tag_m=cfg.helper_to_tag_m,
                    faults=self.faults,
                    seqs=tuple(req.seq for req in ready),
                    corr_ids=tuple(req.corr_id for req in ready),
                    start_times_s=tuple(req.arrival_s for req in ready),
                )
                sup = engine.run_trials_supervised(
                    decode_batch_task,
                    [btask],
                    workers=cfg.workers,
                    sabotage=plan,
                    keys=[ready[0].seq],
                    stall_timeout_s=cfg.stall_timeout_s,
                    max_attempts=cfg.max_attempts,
                )
                if sup.dead_letters:
                    letter0 = sup.dead_letters[0]
                    dead = {j: letter0 for j in range(len(ready))}
                    rows: List[Optional[Dict[str, Any]]] = \
                        [None] * len(ready)
                else:
                    dead = {}
                    rows = sup.results[0]
                sup_totals["dead_letters"] += len(dead)
            else:
                outliers = frozenset(cfg.outlier_tags)
                tasks = [
                    ServeDecodeTask(
                        seq=req.seq,
                        corr_id=req.corr_id,
                        run_id=self.run_id,
                        root_seed=self.seed,
                        payload_bits=req.payload_bits,
                        tag_to_reader_m=(
                            cfg.outlier_distance_m
                            if req.tag_address in outliers
                            else cfg.tag_to_reader_m
                        ),
                        packets_per_bit=cfg.packets_per_bit,
                        mode=cfg.mode,
                        bit_rate_bps=cfg.bit_rate_bps,
                        start_s=req.arrival_s,
                        faults=self.faults,
                        helper_to_tag_m=cfg.helper_to_tag_m,
                        lenient=req.tag_address in outliers,
                    )
                    for req in ready
                ]
                sup = engine.run_trials_supervised(
                    decode_request_task,
                    tasks,
                    workers=cfg.workers,
                    sabotage=plan,
                    keys=[req.seq for req in ready],
                    stall_timeout_s=cfg.stall_timeout_s,
                    max_attempts=cfg.max_attempts,
                )
                dead = {d.index: d for d in sup.dead_letters}
                rows = sup.results
                sup_totals["dead_letters"] += len(sup.dead_letters)
            sup_totals["crashes"] += sup.crashes
            sup_totals["stalls"] += sup.stalls
            sup_totals["restarts"] += sup.restarts
            sup_totals["retries"] += sup.retries
            for j, req in enumerate(ready):
                slot_start = now + j * service
                completed = now + (j + 1) * service
                if j in dead:
                    letter = dead[j]
                    obs.counter("serve.worker_lost").inc()
                    lifecycle.decode(
                        req, slot_start, completed,
                        ok=False, errors=req.payload_bits,
                    )
                    self._record_disposition(
                        req, FAILURE_WORKER_LOST, letter.reason, completed
                    )
                    settle(ServeOutcome(
                        seq=req.seq,
                        corr_id=req.corr_id,
                        tag_address=req.tag_address,
                        priority=req.priority,
                        status=STATUS_WORKER_LOST,
                        reason=letter.reason,
                        errors=req.payload_bits,
                        completed_s=completed,
                        latency_s=completed - req.arrival_s,
                        attempts=letter.attempts,
                    ))
                    continue
                result = rows[j]
                wall_latencies.append(float(result["wall_s"]))
                lifecycle.decode(
                    req, slot_start, completed,
                    ok=bool(result["ok"]), errors=int(result["errors"]),
                )
                if result["ok"]:
                    self.breaker.record_success(req.tag_address)
                    publish(ServeOutcome(
                        seq=req.seq,
                        corr_id=req.corr_id,
                        tag_address=req.tag_address,
                        priority=req.priority,
                        status=STATUS_DELIVERED,
                        errors=result["errors"],
                        payload=tuple(result["payload"]),
                        completed_s=completed,
                        latency_s=completed - req.arrival_s,
                        wall_s=float(result["wall_s"]),
                    ))
                else:
                    self.breaker.record_failure(req.tag_address, completed)
                    obs.counter("serve.decode_failed").inc()
                    settle(ServeOutcome(
                        seq=req.seq,
                        corr_id=req.corr_id,
                        tag_address=req.tag_address,
                        priority=req.priority,
                        status=STATUS_DECODE_FAILED,
                        reason=result["failure"],
                        errors=result["errors"],
                        completed_s=completed,
                        latency_s=completed - req.arrival_s,
                        wall_s=float(result["wall_s"]),
                    ))
            now += len(ready) * service
            drain_egress(now)
            run_ticks(now)
            obs.timeseries("serve.queue_depth").sample(float(len(ingress)))

        # Anything still queued (or never admitted after an early stop)
        # is shed with the drain reason — accounted, never silent.
        for req in ingress.drain():
            shed_events.append(self._shed_event(req, SHED_DRAIN, now))
            settle(self._shed_outcome(req, SHED_DRAIN, now))
        while i < len(arrivals):
            req = arrivals[i]
            i += 1
            obs.counter("serve.arrivals").inc()
            bump(req.arrival_s, "arrived")
            lifecycle.ingress(
                req, now, len(ingress),
                self.breaker.state_of(req.tag_address), False,
            )
            shed_events.append(self._shed_event(req, SHED_DRAIN, now))
            settle(self._shed_outcome(req, SHED_DRAIN, now))
        drain_egress(max(now, cfg.duration_s) + cfg.drain_budget_s)

        # Final cadence boundaries (covers the recovery tail so a
        # burst-fired burn alert gets its clearing transition) and the
        # closing budget read.
        end_t = max(now, cfg.duration_s)
        run_ticks(end_t)
        budget_status = burn.status(series, end_t)
        budget_remaining = (
            budget_status[0]["remaining"] if budget_status else None
        )

        health_path: Optional[str] = None
        if self.health_out is not None:
            from repro.obs.export import write_json

            health_path = write_json(
                self.health_out,
                self.fleet.artifact(self.run_id, self.seed, end_t),
            )

        alerts = []
        if self.slo is not None:
            alerts = [
                a.to_dict() if hasattr(a, "to_dict") else dict(a)
                for a in self.slo.evaluate(
                    context={"run_id": self.run_id, "phase": "serve"}
                )
            ]
        report = self._build_report(
            arrivals=arrivals,
            outcomes=outcomes,
            shed_events=shed_events,
            windows=windows,
            sup_totals=sup_totals,
            wall_latencies=wall_latencies,
            queue_depth_max=ingress.depth_max,
            egress_depth_max=egress_depth_max,
            duration_virtual_s=now,
            wall_s=time.perf_counter() - wall_start,
            alerts=alerts,
            stopped=stopped,
            burn_alerts=[a.to_dict() for a in burn.alerts],
            budget_remaining=budget_remaining,
            exemplars=exemplars.to_dicts(),
            breaker_preempted=preempted,
            telemetry_path=snapshotter.path if snapshotter else None,
            telemetry_snapshots=(
                snapshotter.snapshots if snapshotter else 0
            ),
            batches=len(batch_sizes),
            batch_size_max=max(batch_sizes) if batch_sizes else 0,
            batch_size_mean=(
                sum(batch_sizes) / len(batch_sizes)
                if batch_sizes else 0.0
            ),
            fleet=self.fleet.summary(),
            health_path=health_path,
        )
        if snapshotter is not None:
            snapshotter.close(summary={
                "arrivals": report.arrivals,
                "delivered": report.delivered,
                "decode_failed": report.decode_failed,
                "shed": report.shed,
                "deadline_abandoned": report.deadline_abandoned,
                "worker_lost": report.worker_lost,
                "burn_alerts": len(burn.alerts),
                "budget_remaining": budget_remaining,
                "breaker_preempted": preempted,
            })
        return ServeResult(
            report=report, outcomes=outcomes, shed_events=shed_events
        )

    # -- report -------------------------------------------------------------

    def _recovery(
        self, windows: Dict[int, Dict[str, int]], last_window: int
    ) -> Tuple[Optional[float], bool]:
        """(recovery_s, recovered) after the overload burst clears."""
        cfg = self.config
        if cfg.burst_load_rps is None or cfg.burst_end_s <= 0:
            return None, True
        first = int(cfg.burst_end_s // cfg.recovery_window_s) + 1
        for w in range(first, last_window + 1):
            stats = windows.get(w)
            if not stats or stats["arrived"] == 0:
                continue
            ratio = stats["delivered"] / stats["arrived"]
            if ratio >= cfg.recovery_delivery_ratio and \
                    stats["queue_full"] == 0:
                end = (w + 1) * cfg.recovery_window_s
                return end - cfg.burst_end_s, True
        return None, False

    def _build_report(self, **kw: Any) -> ServeReport:
        cfg = self.config
        outcomes: List[ServeOutcome] = kw["outcomes"]
        by_status: Dict[str, int] = {}
        shed_by_reason: Dict[str, int] = {}
        shed_by_priority: Dict[str, int] = {}
        delivered_bits = 0
        error_bits = 0
        latencies = []
        for o in outcomes:
            by_status[o.status] = by_status.get(o.status, 0) + 1
            if o.status == STATUS_SHED:
                shed_by_reason[o.reason] = \
                    shed_by_reason.get(o.reason, 0) + 1
                name = o.to_dict()["priority"]
                shed_by_priority[name] = shed_by_priority.get(name, 0) + 1
            if o.delivered:
                delivered_bits += len(o.payload)
                error_bits += o.errors
                latencies.append(o.latency_s)
        windows = kw["windows"]
        last_window = max(windows) if windows else 0
        recovery_s, recovered = self._recovery(windows, last_window)
        wall = sorted(kw["wall_latencies"])
        virt = sorted(latencies)

        def pct(values: List[float], q: float) -> float:
            if not values:
                return 0.0
            return float(np.quantile(np.asarray(values), q))

        duration = max(kw["duration_virtual_s"], 1e-9)
        return ServeReport(
            run_id=self.run_id,
            seed=self.seed,
            config=cfg.to_dict(),
            arrivals=len(kw["arrivals"]),
            delivered=by_status.get(STATUS_DELIVERED, 0),
            decode_failed=by_status.get(STATUS_DECODE_FAILED, 0),
            shed=by_status.get(STATUS_SHED, 0),
            deadline_abandoned=by_status.get(STATUS_DEADLINE, 0),
            worker_lost=by_status.get(STATUS_WORKER_LOST, 0),
            shed_by_reason=shed_by_reason,
            shed_by_priority=shed_by_priority,
            worker_crashes=kw["sup_totals"]["crashes"],
            worker_stalls=kw["sup_totals"]["stalls"],
            worker_restarts=kw["sup_totals"]["restarts"],
            worker_retries=kw["sup_totals"]["retries"],
            dead_letters=kw["sup_totals"]["dead_letters"],
            queue_depth_max=kw["queue_depth_max"],
            egress_depth_max=kw["egress_depth_max"],
            delivered_bits=delivered_bits,
            error_bits=error_bits,
            duration_virtual_s=kw["duration_virtual_s"],
            wall_s=kw["wall_s"],
            throughput_rps=by_status.get(STATUS_DELIVERED, 0) / duration,
            latency_mean_s=float(np.mean(virt)) if virt else 0.0,
            latency_p99_s=pct(virt, 0.99),
            wall_latency_p99_s=pct(wall, 0.99),
            breaker_opened=self.breaker.opened_total,
            quarantined_tags=len(self.breaker.open_tags()),
            recovery_s=recovery_s,
            recovered=recovered,
            alerts=kw["alerts"],
            stopped_early=kw["stopped"],
            burn_alerts=kw.get("burn_alerts", []),
            budget_remaining=kw.get("budget_remaining"),
            exemplars=kw.get("exemplars", []),
            breaker_preempted=kw.get("breaker_preempted", 0),
            telemetry_path=kw.get("telemetry_path"),
            telemetry_snapshots=kw.get("telemetry_snapshots", 0),
            batches=kw.get("batches", 0),
            batch_size_max=kw.get("batch_size_max", 0),
            batch_size_mean=kw.get("batch_size_mean", 0.0),
            fleet=kw.get("fleet", {}),
            health_path=kw.get("health_path"),
        )


def run_serve(
    config: ServeConfig,
    faults: Optional[FaultPlan] = None,
    slo: Optional[SloEngine] = None,
    seed: Optional[int] = None,
    workers: Optional[int] = None,
    should_stop: Optional[Callable[[], bool]] = None,
    telemetry_out: Optional[str] = None,
    health_out: Optional[str] = None,
) -> ServeResult:
    """Run one serve session; the functional entry point.

    ``workers`` overrides ``config.workers`` when given (the CLI wires
    ``--workers`` through here); ``telemetry_out`` enables the periodic
    snapshot stream (``serve --telemetry-out``); ``health_out`` writes
    the ``repro.fleet/1`` per-tag health artifact at the end of the run
    (``serve --health-out``, rendered by ``fleet-report``).
    """
    if workers is not None:
        config = replace(config, workers=int(workers))
    gateway = StreamingDecodeGateway(
        config, faults=faults, slo=slo, seed=seed,
        telemetry_out=telemetry_out, health_out=health_out,
    )
    return gateway.run(should_stop=should_stop)
