"""Request/outcome data model for the streaming decode gateway.

A :class:`DecodeRequest` is one tag transmission awaiting decode; a
:class:`ServeOutcome` is the gateway's final, *accounted-for* verdict
on it.  Every request ends in exactly one outcome — delivered, shed
(with a reason), abandoned on deadline, lost with its worker, or
failed in decode — so the sum over outcomes always equals the arrival
count.  That conservation law is what the overload chaos suite
asserts; silent drops are a bug by construction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Tuple

#: Priority classes, best first.  The numeric priority of a request is
#: its index here: 0 is served first and shed last.
PRIORITIES = ("high", "normal", "low")

#: Terminal dispositions.
STATUS_DELIVERED = "delivered"
STATUS_SHED = "shed"
STATUS_DEADLINE = "deadline_abandoned"
STATUS_WORKER_LOST = "worker_lost"
STATUS_DECODE_FAILED = "decode_failed"
STATUSES = (
    STATUS_DELIVERED,
    STATUS_SHED,
    STATUS_DEADLINE,
    STATUS_WORKER_LOST,
    STATUS_DECODE_FAILED,
)

#: Shed reason labels (the ``serve.shed.reason.<label>`` counters).
SHED_QUEUE_FULL = "queue_full"
SHED_EGRESS_FULL = "egress_full"
SHED_QUARANTINED = "tag_quarantined"
SHED_DRAIN = "drain"
SHED_REASONS = (
    SHED_QUEUE_FULL,
    SHED_EGRESS_FULL,
    SHED_QUARANTINED,
    SHED_DRAIN,
)

#: Lifecycle span names (see :mod:`repro.serve.lifecycle`).  Every
#: request's trace is one ``serve.request`` root whose children follow
#: ``ingress -> queue_wait -> dispatch -> decode -> <terminal>``.
SPAN_REQUEST = "serve.request"
SPAN_INGRESS = "serve.ingress"
SPAN_QUEUE_WAIT = "serve.queue_wait"
SPAN_DISPATCH = "serve.dispatch"
SPAN_DECODE = "serve.decode"
SPAN_DELIVER = "serve.deliver"
SPAN_SHED = "serve.shed"
SPAN_ABANDON = "serve.abandon"

#: Terminal span name per outcome status.  Decode failures and worker
#: losses both end in ``serve.abandon`` (the request ran but produced
#: nothing deliverable); the status/reason attributes keep them apart.
TERMINAL_SPANS = {
    STATUS_DELIVERED: SPAN_DELIVER,
    STATUS_SHED: SPAN_SHED,
    STATUS_DEADLINE: SPAN_ABANDON,
    STATUS_WORKER_LOST: SPAN_ABANDON,
    STATUS_DECODE_FAILED: SPAN_ABANDON,
}


@dataclass(frozen=True)
class DecodeRequest:
    """One queued tag transmission.

    ``root_seed`` + ``seq`` fully determine the request's decode random
    stream (the decode task derives ``SeedSequence((root_seed, seq))``),
    so a retried or re-ordered request decodes to the identical payload
    — the keystone of the workers=0 == workers=N delivery contract.
    """

    seq: int
    corr_id: str
    tag_address: int
    priority: int
    arrival_s: float
    deadline_s: float
    root_seed: int
    payload_bits: int

    @property
    def priority_name(self) -> str:
        return PRIORITIES[self.priority]


@dataclass(frozen=True)
class ServeOutcome:
    """The gateway's terminal verdict on one request."""

    seq: int
    corr_id: str
    tag_address: int
    priority: int
    status: str
    reason: str = ""
    errors: int = 0
    payload: Tuple[int, ...] = ()
    completed_s: float = 0.0
    latency_s: float = 0.0
    wall_s: float = 0.0
    attempts: int = 1
    extra: Dict[str, Any] = field(default_factory=dict)

    @property
    def delivered(self) -> bool:
        return self.status == STATUS_DELIVERED

    def to_dict(self) -> Dict[str, Any]:
        return {
            "seq": self.seq,
            "corr_id": self.corr_id,
            "tag_address": self.tag_address,
            "priority": PRIORITIES[self.priority],
            "status": self.status,
            "reason": self.reason,
            "errors": self.errors,
            "payload": list(self.payload),
            "completed_s": self.completed_s,
            "latency_s": self.latency_s,
            "attempts": self.attempts,
        }
