"""Per-packet channel measurement records.

A :class:`ChannelMeasurement` is what monitor-mode capture on a
commodity Wi-Fi card yields per received packet: a timestamp (from the
Wi-Fi header — the paper uses it to bin measurements into tag-bit
boundaries, §3.2/§5), the CSI amplitude matrix when the chipset exposes
CSI (Intel 5300: 3 antennas x 30 sub-channels), and per-antenna RSSI.

The uplink decoders consume sequences of these records; the MAC
capture layer and the trace reader both produce them, so recorded and
simulated experiments share one code path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence

import numpy as np

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class ChannelMeasurement:
    """One packet's channel observation at the reader.

    Attributes:
        timestamp_s: packet arrival time from the Wi-Fi header.
        csi: CSI amplitude matrix, shape ``(num_antennas,
            num_subchannels)``, or ``None`` when the chipset only
            reports RSSI (e.g. beacon frames on the Intel 5300, §7.5).
        rssi_dbm: per-antenna RSSI in dBm, shape ``(num_antennas,)``.
        source: label of the transmitter ("helper", "ap-beacon", ...).
    """

    timestamp_s: float
    csi: Optional[np.ndarray]
    rssi_dbm: np.ndarray
    source: str = "helper"

    def __post_init__(self) -> None:
        if self.csi is not None and self.csi.ndim != 2:
            raise ConfigurationError(
                f"csi must be 2-D (antennas x subchannels), got shape "
                f"{self.csi.shape}"
            )
        if np.ndim(self.rssi_dbm) != 1:
            raise ConfigurationError("rssi_dbm must be a 1-D per-antenna array")

    @property
    def has_csi(self) -> bool:
        return self.csi is not None

    @property
    def num_antennas(self) -> int:
        return len(self.rssi_dbm)


@dataclass
class MeasurementStream:
    """An ordered collection of measurements with array accessors.

    Decoders operate on matrices, not record lists; this container
    validates time ordering and exposes the stacked views they need.
    """

    measurements: List[ChannelMeasurement] = field(default_factory=list)

    def append(self, measurement: ChannelMeasurement) -> None:
        if self.measurements and (
            measurement.timestamp_s < self.measurements[-1].timestamp_s
        ):
            raise ConfigurationError(
                "measurements must be appended in timestamp order"
            )
        self.measurements.append(measurement)

    def extend(self, items: Iterable[ChannelMeasurement]) -> None:
        for item in items:
            self.append(item)

    def __len__(self) -> int:
        return len(self.measurements)

    def __iter__(self):
        return iter(self.measurements)

    def __getitem__(self, index):
        return self.measurements[index]

    @property
    def timestamps(self) -> np.ndarray:
        """Packet timestamps (s), shape ``(n_packets,)``."""
        return np.array([m.timestamp_s for m in self.measurements])

    def csi_matrix(self) -> np.ndarray:
        """Stacked CSI amplitudes, shape ``(n_packets, antennas, subchannels)``.

        Raises:
            ConfigurationError: if any measurement lacks CSI or shapes
                are inconsistent.
        """
        if not self.measurements:
            return np.empty((0, 0, 0))
        mats = []
        for m in self.measurements:
            if m.csi is None:
                raise ConfigurationError(
                    "csi_matrix() requires CSI on every measurement; "
                    "use rssi_matrix() for RSSI-only streams"
                )
            mats.append(m.csi)
        return np.stack(mats)

    def rssi_matrix(self) -> np.ndarray:
        """Stacked RSSI values, shape ``(n_packets, antennas)``."""
        if not self.measurements:
            return np.empty((0, 0))
        return np.stack([m.rssi_dbm for m in self.measurements])

    def flattened_csi(self) -> np.ndarray:
        """CSI flattened to (n_packets, antennas * subchannels).

        The paper treats "multiple antennas as additional sub-channels"
        (§3.2); this view implements that.
        """
        csi = self.csi_matrix()
        return csi.reshape(csi.shape[0], -1)

    def csi_coverage(self) -> float:
        """Fraction of records carrying a CSI matrix (1.0 when empty).

        The degradation ladder uses this to decide whether CSI-mode
        decoding is even possible, or the stream is effectively
        RSSI-only (e.g. a beacon-dominated capture, §7.5).
        """
        if not self.measurements:
            return 1.0
        with_csi = sum(1 for m in self.measurements if m.csi is not None)
        return with_csi / len(self.measurements)

    def non_finite_count(self) -> int:
        """Total NaN/inf cells across all CSI and RSSI arrays.

        Fault injection (and real capture logs) can poison individual
        samples; this is the cheap health probe callers use before
        deciding on a repair/reject policy.
        """
        count = 0
        for m in self.measurements:
            if m.csi is not None:
                count += int((~np.isfinite(m.csi)).sum())
            count += int((~np.isfinite(m.rssi_dbm)).sum())
        return count

    def sliced(self, start_s: float, end_s: float) -> "MeasurementStream":
        """Sub-stream with ``start_s <= t < end_s``."""
        if end_s < start_s:
            raise ConfigurationError("end_s must be >= start_s")
        subset = [
            m for m in self.measurements if start_s <= m.timestamp_s < end_s
        ]
        return MeasurementStream(measurements=subset)


def merge_streams(streams: Sequence[MeasurementStream]) -> MeasurementStream:
    """Merge several streams into one, ordered by timestamp."""
    merged = sorted(
        (m for s in streams for m in s.measurements), key=lambda m: m.timestamp_s
    )
    out = MeasurementStream()
    out.extend(merged)
    return out
