"""Per-packet channel measurement records.

A :class:`ChannelMeasurement` is what monitor-mode capture on a
commodity Wi-Fi card yields per received packet: a timestamp (from the
Wi-Fi header — the paper uses it to bin measurements into tag-bit
boundaries, §3.2/§5), the CSI amplitude matrix when the chipset exposes
CSI (Intel 5300: 3 antennas x 30 sub-channels), and per-antenna RSSI.

The uplink decoders consume sequences of these records; the MAC
capture layer and the trace reader both produce them, so recorded and
simulated experiments share one code path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class ChannelMeasurement:
    """One packet's channel observation at the reader.

    Attributes:
        timestamp_s: packet arrival time from the Wi-Fi header.
        csi: CSI amplitude matrix, shape ``(num_antennas,
            num_subchannels)``, or ``None`` when the chipset only
            reports RSSI (e.g. beacon frames on the Intel 5300, §7.5).
        rssi_dbm: per-antenna RSSI in dBm, shape ``(num_antennas,)``.
        source: label of the transmitter ("helper", "ap-beacon", ...).
    """

    timestamp_s: float
    csi: Optional[np.ndarray]
    rssi_dbm: np.ndarray
    source: str = "helper"

    def __post_init__(self) -> None:
        if self.csi is not None and self.csi.ndim != 2:
            raise ConfigurationError(
                f"csi must be 2-D (antennas x subchannels), got shape "
                f"{self.csi.shape}"
            )
        if np.ndim(self.rssi_dbm) != 1:
            raise ConfigurationError("rssi_dbm must be a 1-D per-antenna array")

    @property
    def has_csi(self) -> bool:
        return self.csi is not None

    @property
    def num_antennas(self) -> int:
        return len(self.rssi_dbm)


@dataclass
class MeasurementStream:
    """An ordered collection of measurements with array accessors.

    Decoders operate on matrices, not record lists; this container
    validates time ordering and exposes the stacked views they need.
    """

    measurements: List[ChannelMeasurement] = field(default_factory=list)
    #: Length-keyed memo of the stacked array views.  Decoders hit
    #: ``timestamps`` / ``flattened_csi()`` several times per decode
    #: (and the batched decoder packs the same stream it just
    #: coverage-probed), so each stacked view is built once per stream
    #: length and invalidated by growth.  Cached arrays are marked
    #: read-only because they are shared between callers.
    _cache: Dict[str, Tuple[int, Any]] = field(
        default_factory=dict, repr=False, compare=False
    )

    def append(self, measurement: ChannelMeasurement) -> None:
        if self.measurements and (
            measurement.timestamp_s < self.measurements[-1].timestamp_s
        ):
            raise ConfigurationError(
                "measurements must be appended in timestamp order"
            )
        self.measurements.append(measurement)

    def _memo(self, key: str, build: Callable[[], Any]) -> Any:
        """Value of ``build()``, cached until the stream changes length.

        The memo key is the record count: ``append``/``extend`` grow the
        list, so a stale entry can never be served after new packets
        arrive.  In-place replacement of an existing record (which no
        repo code path does) is the one mutation this would not see.
        """
        entry = self._cache.get(key)
        n = len(self.measurements)
        if entry is not None and entry[0] == n:
            return entry[1]
        value = build()
        if isinstance(value, np.ndarray):
            value.flags.writeable = False
        self._cache[key] = (n, value)
        return value

    def memo_get(self, key: str) -> Any:
        """Peek a memo entry without building (None when absent/stale).

        Companion to :meth:`memo_put` for callers whose build step has
        side effects that must not be skipped on a miss (the decoder's
        mode-resolution probe increments degradation counters).
        """
        entry = self._cache.get(key)
        if entry is not None and entry[0] == len(self.measurements):
            return entry[1]
        return None

    def memo_put(self, key: str, value: Any) -> Any:
        """Store a memo entry under the current stream length."""
        self._cache[key] = (len(self.measurements), value)
        return value

    def extend(self, items: Iterable[ChannelMeasurement]) -> None:
        for item in items:
            self.append(item)

    def __len__(self) -> int:
        return len(self.measurements)

    def __iter__(self):
        return iter(self.measurements)

    def __getitem__(self, index):
        return self.measurements[index]

    @property
    def timestamps(self) -> np.ndarray:
        """Packet timestamps (s), shape ``(n_packets,)``."""
        return self._memo(
            "timestamps",
            lambda: np.array([m.timestamp_s for m in self.measurements]),
        )

    def _build_csi_matrix(self) -> np.ndarray:
        if not self.measurements:
            return np.empty((0, 0, 0))
        mats = []
        for m in self.measurements:
            if m.csi is None:
                raise ConfigurationError(
                    "csi_matrix() requires CSI on every measurement; "
                    "use rssi_matrix() for RSSI-only streams"
                )
            mats.append(m.csi)
        return np.stack(mats)

    def csi_matrix(self) -> np.ndarray:
        """Stacked CSI amplitudes, shape ``(n_packets, antennas, subchannels)``.

        Raises:
            ConfigurationError: if any measurement lacks CSI or shapes
                are inconsistent.
        """
        return self._memo("csi_matrix", self._build_csi_matrix)

    def rssi_matrix(self) -> np.ndarray:
        """Stacked RSSI values, shape ``(n_packets, antennas)``."""
        return self._memo(
            "rssi_matrix",
            lambda: (
                np.empty((0, 0)) if not self.measurements
                else np.stack([m.rssi_dbm for m in self.measurements])
            ),
        )

    def flattened_csi(self) -> np.ndarray:
        """CSI flattened to (n_packets, antennas * subchannels).

        The paper treats "multiple antennas as additional sub-channels"
        (§3.2); this view implements that.
        """
        def build() -> np.ndarray:
            csi = self.csi_matrix()
            return csi.reshape(csi.shape[0], -1)

        return self._memo("flattened_csi", build)

    def csi_coverage(self) -> float:
        """Fraction of records carrying a CSI matrix (1.0 when empty).

        The degradation ladder uses this to decide whether CSI-mode
        decoding is even possible, or the stream is effectively
        RSSI-only (e.g. a beacon-dominated capture, §7.5).
        """
        def build() -> float:
            if not self.measurements:
                return 1.0
            with_csi = sum(1 for m in self.measurements if m.csi is not None)
            return with_csi / len(self.measurements)

        return self._memo("csi_coverage", build)

    def finite_column_fraction(self, mode: str) -> np.ndarray:
        """Per-column fraction of finite cells of the stacked matrix.

        ``mode`` selects :meth:`flattened_csi` (``"csi"``) or
        :meth:`rssi_matrix` (``"rssi"``).  This is exactly
        ``np.isfinite(matrix).mean(axis=0)``, cached so the decoder's
        usable-channel probe does not rescan the matrix per decode.
        """
        if mode not in ("csi", "rssi"):
            raise ConfigurationError(f"mode must be 'csi' or 'rssi', got {mode!r}")

        def build() -> np.ndarray:
            matrix = (
                self.flattened_csi() if mode == "csi" else self.rssi_matrix()
            )
            return np.isfinite(matrix).mean(axis=0)

        return self._memo(f"finite_fraction:{mode}", build)

    def nonfinite_cells(self, mode: str) -> int:
        """NaN/inf cell count of the stacked ``mode`` matrix (cached).

        Zero means the sanitize gate can pass the matrix through
        untouched, which the decoders exploit to skip a full-matrix
        ``isfinite`` scan per decode.
        """
        if mode not in ("csi", "rssi"):
            raise ConfigurationError(f"mode must be 'csi' or 'rssi', got {mode!r}")

        def build() -> int:
            matrix = (
                self.flattened_csi() if mode == "csi" else self.rssi_matrix()
            )
            return int((~np.isfinite(matrix)).sum())

        return self._memo(f"nonfinite_cells:{mode}", build)

    def non_finite_count(self) -> int:
        """Total NaN/inf cells across all CSI and RSSI arrays.

        Fault injection (and real capture logs) can poison individual
        samples; this is the cheap health probe callers use before
        deciding on a repair/reject policy.
        """
        count = 0
        for m in self.measurements:
            if m.csi is not None:
                count += int((~np.isfinite(m.csi)).sum())
            count += int((~np.isfinite(m.rssi_dbm)).sum())
        return count

    def sliced(self, start_s: float, end_s: float) -> "MeasurementStream":
        """Sub-stream with ``start_s <= t < end_s``."""
        if end_s < start_s:
            raise ConfigurationError("end_s must be >= start_s")
        subset = [
            m for m in self.measurements if start_s <= m.timestamp_s < end_s
        ]
        return MeasurementStream(measurements=subset)


def merge_streams(streams: Sequence[MeasurementStream]) -> MeasurementStream:
    """Merge several streams into one, ordered by timestamp."""
    merged = sorted(
        (m for s in streams for m in s.measurements), key=lambda m: m.timestamp_s
    )
    out = MeasurementStream()
    out.extend(merged)
    return out
