"""Command-line interface: run Wi-Fi Backscatter experiments directly.

Examples::

    python -m repro uplink-ber --distance 0.4 --pkts-per-bit 30
    python -m repro downlink-ber --distance 2.0 --rate 20000
    python -m repro correlation --distance 1.6 --length 20
    python -m repro rate-plan --helper-pps 3070
    python -m repro power-budget
    python -m repro calibration
"""

from __future__ import annotations

import argparse
from typing import List, Optional

from repro import __version__
from repro.analysis.ber import CorrelationRangeModel, DownlinkDetectionModel
from repro.analysis.report import format_table


def _cmd_uplink_ber(args: argparse.Namespace) -> str:
    from repro.sim.link import run_uplink_ber

    result = run_uplink_ber(
        args.distance,
        args.pkts_per_bit,
        mode=args.mode,
        repeats=args.repeats,
        seed=args.seed,
    )
    lo, hi = result.confidence_interval()
    return format_table(
        ["quantity", "value"],
        [
            ["tag-reader distance", f"{args.distance} m"],
            ["packets per bit", args.pkts_per_bit],
            ["mode", args.mode],
            ["bits", result.total_bits],
            ["bit errors", result.errors],
            ["BER", result.ber],
            ["95% CI", f"[{lo:.2e}, {hi:.2e}]"],
            ["note", "floor value (no errors seen)" if result.is_floor else ""],
        ],
        title="uplink BER (Fig 10 style measurement)",
    )


def _cmd_downlink_ber(args: argparse.Namespace) -> str:
    from repro.core.downlink_encoder import bit_duration_for_rate
    from repro.sim.link import run_downlink_ber

    bit_s = bit_duration_for_rate(args.rate)
    result = run_downlink_ber(
        args.distance, bit_s, num_bits=args.bits, seed=args.seed
    )
    model = DownlinkDetectionModel()
    return format_table(
        ["quantity", "value"],
        [
            ["reader-tag distance", f"{args.distance} m"],
            ["bit rate", f"{args.rate:.0f} bps"],
            ["bits", result.total_bits],
            ["BER", result.ber],
            ["range at BER 1e-2", f"{model.range_at_ber(bit_s):.2f} m"],
        ],
        title="downlink BER (Fig 17 style measurement)",
    )


def _cmd_correlation(args: argparse.Namespace) -> str:
    model = CorrelationRangeModel()
    rows = [
        ["distance", f"{args.distance} m"],
        ["code length L", args.length],
        ["model BER", model.ber(args.distance, args.length)],
        ["required L at this distance", model.required_code_length(args.distance)],
    ]
    if args.simulate:
        import numpy as np

        from repro.sim.link import run_correlation_trial

        trial = run_correlation_trial(
            args.distance,
            args.length,
            num_bits=16,
            packets_per_chip=5.0,
            rng=np.random.default_rng(args.seed),
        )
        rows.append(["simulated errors", f"{trial.errors}/16"])
    return format_table(
        ["quantity", "value"], rows,
        title="long-range coded uplink (Fig 20 style)",
    )


def _cmd_rate_plan(args: argparse.Namespace) -> str:
    from repro.core.rate_adaptation import UplinkRatePlanner

    planner = UplinkRatePlanner(
        packets_per_bit=args.pkts_per_bit, safety_factor=args.safety
    )
    plan = planner.plan(args.helper_pps)
    return format_table(
        ["quantity", "value"],
        [
            ["helper rate", f"{plan.helper_rate_pps:.0f} pkts/s"],
            ["M (packets per bit wanted)", args.pkts_per_bit],
            ["planned tag rate", f"{plan.bit_rate_bps:.0f} bps"],
            ["expected packets per bit", f"{plan.packets_per_bit:.1f}"],
        ],
        title="N/M uplink rate plan (sent in the query packet, §5)",
    )


def _cmd_power_budget(args: argparse.Namespace) -> str:
    from repro.tag.harvester import (
        EnergyHarvester,
        power_budget_summary,
        wifi_power_density_w_m2,
    )

    budget = power_budget_summary()
    harvester = EnergyHarvester()
    density = wifi_power_density_w_m2(40e-3, args.distance)
    harvest = harvester.harvest_rate_w(density)
    continuous = budget["receiver_circuit_w"] + budget["transmit_circuit_w"]
    rows = [[k, f"{v * 1e6:.2f} uW"] for k, v in budget.items()]
    rows.append(
        [f"harvest at {args.distance} m from a 16 dBm Wi-Fi source",
         f"{harvest * 1e6:.2f} uW"]
    )
    rows.append(
        ["verdict",
         "self-sustaining" if harvest >= continuous else "needs duty cycling"]
    )
    return format_table(
        ["quantity", "value"], rows, title="tag power budget (§6)"
    )


def _cmd_calibration(args: argparse.Namespace) -> str:
    from dataclasses import asdict

    from repro.sim.calibration import DEFAULTS

    rows = [[k, v] for k, v in asdict(DEFAULTS).items()]
    return format_table(
        ["parameter", "value"], rows,
        title="calibrated simulation parameters (see EXPERIMENTS.md)",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Wi-Fi Backscatter (SIGCOMM 2014) reproduction toolkit",
    )
    parser.add_argument("--version", action="version", version=__version__)
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("uplink-ber", help="Fig 10 style uplink BER point")
    p.add_argument("--distance", type=float, default=0.3, help="tag-reader m")
    p.add_argument("--pkts-per-bit", type=float, default=30.0)
    p.add_argument("--mode", choices=("csi", "rssi"), default="csi")
    p.add_argument("--repeats", type=int, default=10)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=_cmd_uplink_ber)

    p = sub.add_parser("downlink-ber", help="Fig 17 style downlink BER point")
    p.add_argument("--distance", type=float, default=2.0)
    p.add_argument("--rate", type=float, default=20e3, help="bps (<= 25000)")
    p.add_argument("--bits", type=int, default=200_000)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=_cmd_downlink_ber)

    p = sub.add_parser("correlation", help="Fig 20 style coded-uplink point")
    p.add_argument("--distance", type=float, default=1.6)
    p.add_argument("--length", type=int, default=20)
    p.add_argument("--simulate", action="store_true",
                   help="also run the Monte-Carlo decoder")
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=_cmd_correlation)

    p = sub.add_parser("rate-plan", help="compute the N/M rate plan")
    p.add_argument("--helper-pps", type=float, required=True)
    p.add_argument("--pkts-per-bit", type=float, default=3.0)
    p.add_argument("--safety", type=float, default=1.0)
    p.set_defaults(func=_cmd_rate_plan)

    p = sub.add_parser("power-budget", help="tag power/harvest summary")
    p.add_argument("--distance", type=float, default=0.3048,
                   help="meters from a Wi-Fi source (default: one foot)")
    p.set_defaults(func=_cmd_power_budget)

    p = sub.add_parser("calibration", help="show calibrated parameters")
    p.set_defaults(func=_cmd_calibration)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    print(args.func(args))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
