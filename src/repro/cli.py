"""Command-line interface: run Wi-Fi Backscatter experiments directly.

Examples::

    python -m repro uplink-ber --distance 0.4 --pkts-per-bit 30
    python -m repro downlink-ber --distance 2.0 --rate 20000
    python -m repro correlation --distance 1.6 --length 20
    python -m repro rate-plan --helper-pps 3070
    python -m repro power-budget
    python -m repro calibration
    python -m repro obs-report /tmp/run.json
    python -m repro scenarios                # enumerate the corpus
    python -m repro soak --corpus builtin    # soak it, append history
    python -m repro history --check          # gate on cross-run trends

Every experiment subcommand also accepts the observability flags::

    --json                 machine-readable output instead of the table
    --trace                record + print the pipeline span tree
    --metrics-out PATH     write a run manifest (seed, calibrated
                           params, git SHA, metrics, spans) to PATH
    --obs-dir DIR          auto-write per-driver run manifests under DIR

and a fault-injection spec (see :mod:`repro.faults`)::

    --faults "outage:duty=0.1,burst=0.1;nan:prob=0.01"

performance telemetry flags::

    --profile              enable the stage profiler and print the
                           perf report (self vs. cumulative time)
    --slo SPEC             declarative SLO rules checked after the run,
                           e.g. 'uplink.delivery.rate >= 0.99 over 200
                           frames ! critical'; violations exit 4

and the benchmark harness::

    python -m repro bench --quick            # run the workload matrix
    python -m repro bench --quick --check    # gate against the baseline

Exit codes: 0 success, 2 decode/link failure, 3 configuration error
(bad arguments, malformed --faults/--slo spec, invalid scenario), 4 SLO
violation or strict-soak envelope miss, 5 benchmark regression or
cross-run trend regression (``history --check``).
"""

from __future__ import annotations

import argparse
import os
import sys
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro import __version__, obs
from repro.analysis.ber import CorrelationRangeModel, DownlinkDetectionModel
from repro.analysis.report import format_table
from repro.errors import ConfigurationError, ReproError

#: Exit codes distinguishing why a run died (satellite: scripting needs
#: to tell "the link failed under these faults" from "bad invocation").
EXIT_OK = 0
EXIT_DECODE_FAILURE = 2
EXIT_CONFIG_ERROR = 3
EXIT_SLO_VIOLATION = 4
EXIT_BENCH_REGRESSION = 5

#: Subcommands whose drivers actually consume a fault plan.
FAULT_AWARE_COMMANDS = frozenset(
    {"uplink-ber", "downlink-ber", "correlation", "arq", "serve"}
)


def _resolve_faults(args: argparse.Namespace):
    """Parse ``--faults`` into a plan (None when the flag is unused)."""
    spec = getattr(args, "faults", None)
    if not spec:
        return None
    from repro.faults import parse_fault_spec

    return parse_fault_spec(spec, base_seed=getattr(args, "seed", None))


@dataclass
class CommandOutput:
    """One subcommand's result in both human and machine form.

    Attributes:
        title: table heading.
        rows: ``[label, display value]`` pairs for the ASCII table.
        data: JSON-ready payload for ``--json`` (raw values, not the
            display strings).
        headers: table column headers.
    """

    title: str
    rows: List[List[object]]
    data: Dict[str, Any] = field(default_factory=dict)
    headers: List[str] = field(default_factory=lambda: ["quantity", "value"])

    def to_table(self) -> str:
        return format_table(self.headers, self.rows, title=self.title)


def _cmd_uplink_ber(args: argparse.Namespace) -> CommandOutput:
    from repro.sim.link import run_uplink_ber

    faults = _resolve_faults(args)
    result = run_uplink_ber(
        args.distance,
        args.pkts_per_bit,
        mode=args.mode,
        repeats=args.repeats,
        seed=args.seed,
        faults=faults,
        workers=args.workers,
    )
    lo, hi = result.confidence_interval()
    rows = [
        ["tag-reader distance", f"{args.distance} m"],
        ["packets per bit", args.pkts_per_bit],
        ["mode", args.mode],
        ["bits", result.total_bits],
        ["bit errors", result.errors],
        ["BER", result.ber],
        ["95% CI", f"[{lo:.2e}, {hi:.2e}]"],
        ["note", "floor value (no errors seen)" if result.is_floor else ""],
    ]
    if faults is not None:
        rows.insert(3, ["faults", args.faults])
    data = {
        "distance_m": args.distance,
        "packets_per_bit": args.pkts_per_bit,
        "mode": args.mode,
        "seed": args.seed,
        "faults": faults.describe() if faults is not None else None,
        **result.to_dict(),
    }
    return CommandOutput(
        title="uplink BER (Fig 10 style measurement)", rows=rows, data=data
    )


def _cmd_arq(args: argparse.Namespace) -> CommandOutput:
    from repro.core.protocol import BackoffPolicy
    from repro.sim.link import run_arq_uplink

    faults = _resolve_faults(args)
    result = run_arq_uplink(
        args.distance,
        num_frames=args.frames,
        payload_len=args.payload,
        bit_rate_bps=args.rate,
        packets_per_bit=args.pkts_per_bit,
        max_attempts=args.max_attempts,
        backoff=BackoffPolicy(initial_s=args.backoff_initial),
        faults=faults,
        degrade_after=args.degrade_after,
        seed=args.seed,
        workers=args.workers,
    )
    rows = [
        ["tag-reader distance", f"{args.distance} m"],
        ["frames", result.frames],
        ["delivered", result.delivered],
        ["delivery ratio", f"{result.delivery_ratio:.4f}"],
        ["payload-correct", result.correct],
        ["mean attempts/frame", f"{result.mean_attempts:.2f}"],
        ["degraded frames", result.degraded_frames],
        ["session span", f"{result.elapsed_s:.1f} s (virtual)"],
    ]
    if faults is not None:
        rows.insert(1, ["faults", args.faults])
    data = {
        "distance_m": args.distance,
        "seed": args.seed,
        "faults": faults.describe() if faults is not None else None,
        **result.to_dict(),
    }
    return CommandOutput(
        title="resilient ARQ uplink session", rows=rows, data=data
    )


def _cmd_serve(args: argparse.Namespace):
    """Run the resilient streaming decode gateway for a bounded spell."""
    from repro.serve import ServeConfig, render_serve_text, run_serve

    config = ServeConfig(
        duration_s=args.duration,
        offered_load_rps=args.offered_load,
        burst_load_rps=args.burst_load,
        burst_start_s=args.burst_start,
        burst_end_s=args.burst_end,
        deadline_ms=args.deadline_ms,
        queue_capacity=args.queue_capacity,
        batch=args.batch,
        batch_max=args.batch_max,
        batch_window_s=args.batch_window,
        workers=args.workers,
        n_tags=args.tags,
        payload_bits=args.payload,
        tag_to_reader_m=args.distance,
        packets_per_bit=args.pkts_per_bit,
        mode=args.mode,
        bit_rate_bps=args.rate,
        arrival_profile=args.arrivals,
        stall_timeout_s=args.stall_timeout,
        max_attempts=args.max_attempts,
        telemetry_cadence_s=args.telemetry_cadence,
        budget_target=args.budget_target,
        budget_window_s=args.budget_window,
        fleet_capacity=args.fleet_tags,
        fleet_top_k=args.fleet_top_k,
        fleet_anomaly_z=args.fleet_z,
        outlier_tags=tuple(args.outlier_tag or ()),
        outlier_distance_m=args.outlier_distance,
    )
    result = run_serve(
        config, faults=_resolve_faults(args), seed=args.seed,
        telemetry_out=args.telemetry_out,
        health_out=args.health_out,
    )
    report = result.report
    return CommandOutput(
        title="", rows=[], data=report.to_dict()
    ), render_serve_text(report)


def _cmd_downlink_ber(args: argparse.Namespace) -> CommandOutput:
    from repro.core.downlink_encoder import bit_duration_for_rate
    from repro.sim.link import run_downlink_ber

    bit_s = bit_duration_for_rate(args.rate)
    result = run_downlink_ber(
        args.distance, bit_s, num_bits=args.bits, seed=args.seed,
        faults=_resolve_faults(args), workers=args.workers,
    )
    model = DownlinkDetectionModel()
    range_m = model.range_at_ber(bit_s)
    rows = [
        ["reader-tag distance", f"{args.distance} m"],
        ["bit rate", f"{args.rate:.0f} bps"],
        ["bits", result.total_bits],
        ["BER", result.ber],
        ["range at BER 1e-2", f"{range_m:.2f} m"],
    ]
    data = {
        "distance_m": args.distance,
        "bit_rate_bps": args.rate,
        "seed": args.seed,
        "range_at_ber_1e2_m": range_m,
        **result.to_dict(),
    }
    return CommandOutput(
        title="downlink BER (Fig 17 style measurement)", rows=rows, data=data
    )


def _cmd_correlation(args: argparse.Namespace) -> CommandOutput:
    model = CorrelationRangeModel()
    model_ber = model.ber(args.distance, args.length)
    required_l = model.required_code_length(args.distance)
    rows = [
        ["distance", f"{args.distance} m"],
        ["code length L", args.length],
        ["model BER", model_ber],
        ["required L at this distance", required_l],
    ]
    data = {
        "distance_m": args.distance,
        "code_length": args.length,
        "model_ber": model_ber,
        "required_code_length": required_l,
        "seed": args.seed,
    }
    if args.simulate:
        from repro.sim.link import run_correlation_trial

        trial = run_correlation_trial(
            args.distance,
            args.length,
            num_bits=16,
            packets_per_chip=5.0,
            seed=args.seed,
            faults=_resolve_faults(args),
            workers=args.workers,
        )
        rows.append(["simulated errors", f"{trial.errors}/16"])
        data["simulated_errors"] = trial.errors
        data["simulated_bits"] = 16
    return CommandOutput(
        title="long-range coded uplink (Fig 20 style)", rows=rows, data=data
    )


def _cmd_rate_plan(args: argparse.Namespace) -> CommandOutput:
    from repro.core.rate_adaptation import UplinkRatePlanner

    planner = UplinkRatePlanner(
        packets_per_bit=args.pkts_per_bit, safety_factor=args.safety
    )
    plan = planner.plan(args.helper_pps)
    rows = [
        ["helper rate", f"{plan.helper_rate_pps:.0f} pkts/s"],
        ["M (packets per bit wanted)", args.pkts_per_bit],
        ["planned tag rate", f"{plan.bit_rate_bps:.0f} bps"],
        ["expected packets per bit", f"{plan.packets_per_bit:.1f}"],
    ]
    data = {
        "helper_rate_pps": plan.helper_rate_pps,
        "packets_per_bit_wanted": args.pkts_per_bit,
        "bit_rate_bps": plan.bit_rate_bps,
        "packets_per_bit": plan.packets_per_bit,
    }
    return CommandOutput(
        title="N/M uplink rate plan (sent in the query packet, §5)",
        rows=rows,
        data=data,
    )


def _cmd_power_budget(args: argparse.Namespace) -> CommandOutput:
    from repro.tag.harvester import (
        EnergyHarvester,
        power_budget_summary,
        wifi_power_density_w_m2,
    )

    budget = power_budget_summary()
    harvester = EnergyHarvester()
    density = wifi_power_density_w_m2(40e-3, args.distance)
    harvest = harvester.harvest_rate_w(density)
    continuous = budget["receiver_circuit_w"] + budget["transmit_circuit_w"]
    verdict = "self-sustaining" if harvest >= continuous else "needs duty cycling"
    rows = [[k, f"{v * 1e6:.2f} uW"] for k, v in budget.items()]
    rows.append(
        [f"harvest at {args.distance} m from a 16 dBm Wi-Fi source",
         f"{harvest * 1e6:.2f} uW"]
    )
    rows.append(["verdict", verdict])
    data = {
        **{k: v for k, v in budget.items()},
        "distance_m": args.distance,
        "harvest_w": harvest,
        "continuous_draw_w": continuous,
        "verdict": verdict,
    }
    return CommandOutput(title="tag power budget (§6)", rows=rows, data=data)


def _cmd_calibration(args: argparse.Namespace) -> CommandOutput:
    from dataclasses import asdict

    from repro.sim.calibration import DEFAULTS

    params = asdict(DEFAULTS)
    return CommandOutput(
        title="calibrated simulation parameters (see EXPERIMENTS.md)",
        rows=[[k, v] for k, v in params.items()],
        data=params,
        headers=["parameter", "value"],
    )


def _cmd_forensics(args: argparse.Namespace):
    """Attribute + render a forensics JSONL artifact from --record."""
    from repro.obs.forensics import read_jsonl, summarize
    from repro.obs.forensics.report import render_forensics

    try:
        header, records = read_jsonl(args.records)
    except FileNotFoundError:
        raise SystemExit(f"no such forensics artifact: {args.records}")
    summary = summarize(records)
    data = {
        "header": header,
        "summary": {k: v for k, v in summary.items() if k != "margins"},
    }
    return CommandOutput(title="", rows=[], data=data), render_forensics(
        summary, header=header
    )


def _write_forensics_artifact(args: argparse.Namespace) -> Optional[str]:
    """Flush the flight recorder to the --record JSONL path.

    This is the *clean* flush; it stands down the crash-flush handler
    so an orderly exit doesn't rewrite the artifact as "interrupted".
    """
    from repro.obs.forensics import disarm_crash_flush, write_jsonl

    path = getattr(args, "record", None)
    if path is None:
        return None
    disarm_crash_flush()
    recorder = obs.get_recorder()
    payload = recorder.to_payload()
    write_jsonl(
        path,
        payload["records"],
        meta={
            "name": args.command,
            "seed": getattr(args, "seed", None),
            "policy": recorder.policy,
            "capacity": recorder.capacity,
            "recorder": {
                "seen": payload["seen"],
                "errors_seen": payload["errors_seen"],
                "dropped": payload["dropped"],
            },
        },
    )
    return path


def _cmd_obs_report(args: argparse.Namespace) -> CommandOutput:
    """Render a previously written run manifest (or pick the latest)."""
    import os

    from repro.obs.report import render_manifest

    path = args.manifest
    if path is None and args.dir is not None:
        candidates = sorted(
            (os.path.join(args.dir, n) for n in os.listdir(args.dir)
             if n.endswith(".json")),
            key=os.path.getmtime,
        )
        if not candidates:
            raise SystemExit(f"no .json manifests under {args.dir}")
        path = candidates[-1]
    if path is None:
        raise SystemExit("obs-report needs a manifest path or --dir")
    # Telemetry streams are JSONL, not a single JSON document — sniff
    # the first line for the schema tag before the manifest parse.
    try:
        with open(path, "r", encoding="utf-8") as fh:
            first_line = fh.readline()
    except FileNotFoundError:
        raise SystemExit(f"no such manifest: {path}")
    from repro.obs.export import loads_line

    try:
        first = loads_line(first_line)
    except Exception:
        first = None
    from repro.serve.telemetry import is_telemetry_header, read_telemetry

    if is_telemetry_header(first):
        from repro.obs.report import render_telemetry

        header, snapshots, final = read_telemetry(path)
        data = {
            "header": header,
            "snapshots": snapshots,
            "final": final,
        }
        return CommandOutput(title="", rows=[], data=data), \
            render_telemetry(header, snapshots, final)
    try:
        raw = obs.read_json(path)
    except FileNotFoundError:
        raise SystemExit(f"no such manifest: {path}")
    from repro.obs.soak.report import (
        is_soak_document,
        render_soak_markdown,
        render_soak_text,
    )

    if is_soak_document(raw):
        rendered = (
            render_soak_markdown(raw) if getattr(args, "markdown", False)
            else render_soak_text(raw)
        )
        return CommandOutput(title="", rows=[], data=raw), rendered
    try:
        manifest = obs.load_manifest(path)
    except FileNotFoundError:
        raise SystemExit(f"no such manifest: {path}")
    data = manifest.to_dict()
    # The report is pre-rendered text, not a quantity/value table.
    return CommandOutput(
        title="", rows=[], data=data,
    ), render_manifest(data)


def _cmd_fleet_report(args: argparse.Namespace):
    """Render fleet telemetry: a ``--health-out`` artifact or the fleet
    blocks of a telemetry JSONL stream."""
    from repro.obs.export import loads_line
    from repro.obs.fleet import (
        is_fleet_artifact,
        render_fleet_artifact,
        render_fleet_block,
    )

    path = args.path
    try:
        with open(path, "r", encoding="utf-8") as fh:
            first_line = fh.readline()
    except FileNotFoundError:
        raise SystemExit(f"no such file: {path}")
    try:
        first = loads_line(first_line)
    except Exception:
        first = None
    from repro.serve.telemetry import is_telemetry_header, read_telemetry

    if is_telemetry_header(first):
        _, snapshots, _ = read_telemetry(path)
        fleet = (snapshots[-1].get("fleet") or {}) if snapshots else {}
        if not fleet:
            raise SystemExit(
                f"{path} is a telemetry stream without fleet blocks "
                "(written by an older serve?)"
            )
        # Cumulative state lives in the last snapshot; the transition
        # history is spread one tick per block.
        fleet = dict(fleet)
        fleet["transitions"] = [
            tr for snap in snapshots
            for tr in (snap.get("fleet") or {}).get("transitions") or []
        ]
        return CommandOutput(title="", rows=[], data=fleet), \
            render_fleet_block(fleet, top=args.top)
    data = obs.read_json(path)
    if not is_fleet_artifact(data):
        raise SystemExit(
            f"{path} is neither a repro.fleet/1 artifact nor a "
            "telemetry stream"
        )
    return CommandOutput(title="", rows=[], data=data), \
        render_fleet_artifact(data, top=args.top)


def _cmd_scenarios(args: argparse.Namespace):
    """Enumerate (or show one of) the scenario corpus without running."""
    from repro.scenarios import builtin_registry

    registry = builtin_registry()
    if args.file:
        registry.load_file(args.file)
    if args.show:
        scenario = registry.get(args.show)
        data = scenario.to_dict()
        return CommandOutput(title="", rows=[], data=data), obs.dumps(data)
    scenarios = registry.select(tag=args.tag)
    rows = [
        [
            s.name,
            s.channel.mode,
            s.traffic.regime,
            f"{s.geometry.tag_to_reader_m:g}",
            "yes" if s.geometry.mobility else "-",
            s.faults or "-",
            ",".join(s.tags) or "-",
        ]
        for s in scenarios
    ]
    rendered = format_table(
        ["scenario", "mode", "regime", "dist (m)", "mobile", "faults",
         "tags"],
        rows,
        title=f"scenario corpus ({len(scenarios)} scenario(s))",
    )
    data = {
        "count": len(scenarios),
        "scenarios": [s.to_dict() for s in scenarios],
    }
    return CommandOutput(title="", rows=[], data=data), rendered


def _cmd_soak(args: argparse.Namespace):
    """Soak the scenario corpus; append cross-run history + report."""
    from repro.obs import soak as soakmod
    from repro.scenarios import builtin_registry

    registry = builtin_registry()
    if args.file:
        registry.load_file(args.file)
    history = None
    if not args.no_history:
        history = soakmod.HistoryStore(args.history_dir)
    trial_scale = args.trial_scale
    if args.quick:
        trial_scale = min(trial_scale, 0.5)
    outcome = soakmod.run_soak(
        registry=registry,
        names=args.scenarios or None,
        tag=args.tag,
        seed=args.seed,
        workers=args.workers,
        trial_scale=trial_scale,
        history=history,
        manifest_dir=args.obs_dir,
        record=True,
        progress=lambda msg: print(msg, file=sys.stderr),
    )
    doc = outcome.to_document()
    if args.report == "-":
        rendered = soakmod.render_soak_markdown(doc)
    else:
        rendered = soakmod.render_soak_text(doc)
    notes = []
    if args.report and args.report != "-":
        directory = os.path.dirname(os.path.abspath(args.report))
        os.makedirs(directory, exist_ok=True)
        with open(args.report, "w", encoding="utf-8") as fh:
            fh.write(soakmod.render_soak_markdown(doc))
        notes.append(f"markdown report written to {args.report}")
    if args.out:
        obs.write_json(args.out, doc)
        notes.append(f"soak document written to {args.out}")
    if history is not None:
        notes.append(
            f"history: {len(outcome.history_paths)} record(s) appended "
            f"under {history.directory}"
        )
    if notes:
        rendered += "\n\n" + "\n".join(notes)
    data = dict(doc)
    if args.strict and outcome.failed:
        data["strict_failed"] = True
    return CommandOutput(title="", rows=[], data=data), rendered


def _cmd_history(args: argparse.Namespace):
    """Inspect the cross-run history store; optionally gate on trends."""
    from repro.obs import soak as soakmod

    store = soakmod.HistoryStore(args.dir)
    corrupt = soakmod.corrupt_line_counts(
        store, scenarios=args.scenario or None
    )
    for name, bad in sorted(corrupt.items()):
        print(
            f"warning: {bad} corrupt line(s) skipped in history for "
            f"{name!r} (torn append?)",
            file=sys.stderr,
        )
    if args.check:
        flags = soakmod.check_store(store, scenarios=args.scenario or None)
        if flags:
            rows = [
                [f.scenario, f.metric, f"{f.ewma:.4g}",
                 f"{f.measured:.4g}", f"{f.limit:.4g}", f.window,
                 f.dominant_label or "-"]
                for f in flags
            ]
            rendered = format_table(
                ["scenario", "metric", "ewma", "measured", "limit",
                 "window", "root cause"],
                rows,
                title=f"cross-run trend regressions ({len(flags)})",
            )
        else:
            rendered = (
                "no cross-run trend regressions "
                f"({len(store.scenarios())} scenario histories checked)"
            )
        if corrupt:
            total_bad = sum(corrupt.values())
            rendered += (
                f"\n!! {total_bad} corrupt history line(s) skipped: "
                + ", ".join(
                    f"{k}={v}" for k, v in sorted(corrupt.items())
                )
            )
        data = {
            "flags": [f.to_dict() for f in flags],
            "regressed": bool(flags),
            "corrupt_lines": corrupt,
        }
        return CommandOutput(title="", rows=[], data=data), rendered
    if args.scenario:
        sections = []
        payload: Dict[str, Any] = {}
        for name in args.scenario:
            records, bad = store.load_with_errors(name)
            if not records:
                raise ConfigurationError(
                    f"no history for scenario {name!r} under "
                    f"{store.directory}; known: {store.scenarios()}"
                )
            sections.append(
                soakmod.render_history_text(
                    name, records, limit=args.limit, corrupt=bad
                )
            )
            payload[name] = records[-args.limit:] if args.limit else records
        return CommandOutput(
            title="", rows=[],
            data={"histories": payload, "corrupt_lines": corrupt},
        ), "\n\n".join(sections)
    names = store.scenarios()
    rows = []
    for name in names:
        records, bad = store.load_with_errors(name)
        last = records[-1] if records else {}
        rows.append([
            name,
            len(records),
            str(last.get("timestamp", "-"))[:19],
            "pass" if last.get("passed") else "FAIL",
            last.get("dominant_label") or "-",
            bad or "-",
        ])
    rendered = format_table(
        ["scenario", "records", "latest", "verdict", "root cause",
         "corrupt"],
        rows,
        title=f"history store: {store.directory}",
    ) if rows else f"history store {store.directory} is empty"
    data = {
        "directory": store.directory,
        "scenarios": names,
        "corrupt_lines": corrupt,
    }
    return CommandOutput(title="", rows=[], data=data), rendered


def _cmd_bench(args: argparse.Namespace):
    """Run the benchmark workload matrix; optionally gate on baseline."""
    from repro.obs.perf import bench as benchmod

    if args.list:
        workloads = benchmod.list_workloads()
        rendered = format_table(
            ["workload", "parallel", "quick iters", "full iters",
             "description"],
            [
                [w["name"], "yes" if w["parallel"] else "no",
                 w["quick_iterations"], w["full_iterations"],
                 w["description"]]
                for w in workloads
            ],
            title=f"benchmark workload matrix ({len(workloads)} workloads)",
        )
        return CommandOutput(
            title="", rows=[], data={"workloads": workloads}
        ), rendered

    results = benchmod.run_bench(
        quick=not args.full,
        workloads=args.workloads or None,
        seed=args.seed,
        progress=lambda msg: print(msg, file=sys.stderr),
        workers=args.workers,
    )
    root = args.out_dir or benchmod.repo_root()
    paths = benchmod.write_bench_artifacts(results, root=root)
    rows = []
    for r in results:
        for metric, value in r.metrics.items():
            rows.append([r.name, metric, f"{value:.6g}"])
    rendered = format_table(
        ["workload", "metric", "value"], rows,
        title="benchmark workload matrix "
              f"({'quick' if not args.full else 'full'})",
    )
    rendered += "\n\nartifacts:\n" + "\n".join(f"  {p}" for p in paths)
    data: Dict[str, Any] = {
        "quick": not args.full,
        "seed": args.seed,
        "workloads": {r.name: r.metrics for r in results},
        "artifacts": paths,
    }
    baseline_path = args.baseline or os.path.join(
        benchmod.repo_root(), benchmod.DEFAULT_BASELINE
    )
    if args.write_baseline:
        doc = benchmod.make_baseline(results)
        obs.write_json(baseline_path, doc)
        rendered += f"\n\nbaseline written to {baseline_path}"
        data["baseline_written"] = baseline_path
    if args.check:
        try:
            baseline = benchmod.load_baseline(baseline_path)
        except FileNotFoundError:
            raise ConfigurationError(
                f"no baseline at {baseline_path}; run "
                "'repro bench --write-baseline' first"
            )
        diffs = benchmod.compare_to_baseline(results, baseline)
        rendered += "\n\n" + benchmod.render_diffs(diffs)
        regressions = [d for d in diffs if d.regressed]
        data["regressed"] = bool(regressions)
        data["regressions"] = [
            {
                "workload": d.workload,
                "metric": d.metric,
                "baseline": d.baseline,
                "measured": d.measured,
                "tolerance": d.tolerance,
                "direction": d.direction,
            }
            for d in regressions
        ]
    return CommandOutput(title="", rows=[], data=data), rendered


def _cmd_perf_report(args: argparse.Namespace):
    """Render the performance sections of a run manifest."""
    from repro.obs.perf.report import (
        render_alerts,
        render_profile,
        render_timeseries,
    )

    try:
        manifest = obs.load_manifest(args.manifest)
    except FileNotFoundError:
        raise SystemExit(f"no such manifest: {args.manifest}")
    data = manifest.to_dict()
    sections = [f"perf report: {data.get('name', '?')}"]
    profile = data.get("profile") or {}
    sections.append(
        render_profile(profile) if profile
        else "(no profile recorded — rerun with --profile)"
    )
    series = {
        name: summary
        for name, summary in (data.get("metrics") or {}).items()
        if summary.get("type") == "timeseries"
    }
    if series:
        sections.append(render_timeseries(series))
    alerts = (data.get("extra") or {}).get("alerts") or []
    if alerts:
        sections.append(render_alerts(alerts))
    return CommandOutput(title="", rows=[], data=data), "\n\n".join(sections)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Wi-Fi Backscatter (SIGCOMM 2014) reproduction toolkit",
    )
    parser.add_argument("--version", action="version", version=__version__)

    # Observability + output-format flags shared by every subcommand.
    common = argparse.ArgumentParser(add_help=False)
    common.add_argument("--json", action="store_true",
                        help="machine-readable JSON output")
    common.add_argument("--trace", action="store_true",
                        help="record and print the pipeline span tree")
    common.add_argument("--metrics-out", metavar="PATH", default=None,
                        help="write a run manifest (JSON) to PATH")
    common.add_argument("--obs-dir", metavar="DIR", default=None,
                        help="auto-write per-driver run manifests under DIR")
    common.add_argument(
        "--faults", metavar="SPEC", default=None,
        help="fault-injection spec, e.g. "
             "'outage:duty=0.1,burst=0.1;nan:prob=0.01' "
             "(see repro.faults; ignored by commands without a link)")
    common.add_argument(
        "--profile", action="store_true",
        help="enable the stage profiler and print the perf report")
    common.add_argument(
        "--slo", metavar="SPEC", default=None,
        help="SLO rules evaluated after the run, e.g. "
             "'uplink.delivery.rate >= 0.99 over 200 frames ! critical'; "
             "fired alerts exit with code 4")
    common.add_argument(
        "--record", metavar="PATH", default=None,
        help="enable the decode flight recorder and write per-packet "
             "forensics records (JSONL) to PATH; inspect with "
             "'repro forensics PATH'")
    common.add_argument(
        "--record-policy", choices=("head", "tail", "errors"),
        default="errors",
        help="which records the recorder retains: first N, last N, or "
             "only erroneous/failed packets (default: errors)")
    common.add_argument(
        "--record-capacity", type=int, default=None, metavar="N",
        help="flight-recorder ring capacity (default 256)")

    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("uplink-ber", parents=[common],
                       help="Fig 10 style uplink BER point")
    p.add_argument("--distance", type=float, default=0.3, help="tag-reader m")
    p.add_argument("--pkts-per-bit", type=float, default=30.0)
    p.add_argument("--mode", choices=("csi", "rssi"), default="csi")
    p.add_argument("--repeats", type=int, default=10)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--workers", type=int, default=1,
                   help="fan trials over N processes (bit-identical to "
                        "serial; see docs/performance.md)")
    p.set_defaults(func=_cmd_uplink_ber)

    p = sub.add_parser("arq", parents=[common],
                       help="resilient ARQ uplink session (retries + backoff)")
    p.add_argument("--distance", type=float, default=0.3, help="tag-reader m")
    p.add_argument("--frames", type=int, default=20)
    p.add_argument("--payload", type=int, default=16, help="payload bits/frame")
    p.add_argument("--rate", type=float, default=100.0, help="uplink bps")
    p.add_argument("--pkts-per-bit", type=float, default=30.0)
    p.add_argument("--max-attempts", type=int, default=5)
    p.add_argument("--backoff-initial", type=float, default=0.05,
                   help="first retry delay, seconds")
    p.add_argument("--degrade-after", type=int, default=None,
                   help="failed attempts before the correlation rung")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--workers", type=int, default=1,
                   help="shard frames over N processes (statistically "
                        "equivalent to serial, not bit-identical)")
    p.set_defaults(func=_cmd_arq)

    p = sub.add_parser("serve", parents=[common],
                       help="streaming decode gateway: bounded queues, "
                            "deadline budgets, supervised workers")
    p.add_argument("--duration", type=float, default=30.0,
                   help="virtual run length, seconds")
    p.add_argument("--offered-load", type=float, default=4.0,
                   help="steady arrival rate, requests/s")
    p.add_argument("--burst-load", type=float, default=None,
                   help="overload burst arrival rate, requests/s "
                        "(superimposed over [--burst-start, --burst-end))")
    p.add_argument("--burst-start", type=float, default=0.0)
    p.add_argument("--burst-end", type=float, default=0.0)
    p.add_argument("--deadline-ms", type=float, default=4000.0,
                   help="per-request latency budget, milliseconds")
    p.add_argument("--queue-capacity", type=int, default=32,
                   help="bounded ingress queue depth (overflow sheds "
                        "newest-lowest-priority first)")
    p.add_argument("--batch", type=int, default=4,
                   help="requests dispatched per decode round")
    p.add_argument("--batch-max", type=int, default=None,
                   help="enable micro-batching: coalesce up to this many "
                        "queued requests into one batched decode task "
                        "(unset = per-request dispatch)")
    p.add_argument("--batch-window", type=float, default=0.0,
                   help="virtual seconds to hold a forming micro-batch "
                        "for further arrivals (requires --batch-max)")
    p.add_argument("--arrivals",
                   choices=("cbr", "poisson", "bursty", "office"),
                   default="poisson", help="arrival process")
    p.add_argument("--tags", type=int, default=8,
                   help="distinct tag addresses behind the gateway")
    p.add_argument("--payload", type=int, default=16,
                   help="payload bits per request")
    p.add_argument("--distance", type=float, default=0.3,
                   help="tag-reader m")
    p.add_argument("--pkts-per-bit", type=float, default=8.0)
    p.add_argument("--mode", choices=("csi", "rssi"), default="csi")
    p.add_argument("--rate", type=float, default=100.0,
                   help="uplink bps (sets per-request decode airtime)")
    p.add_argument("--stall-timeout", type=float, default=0.35,
                   help="seconds before a hung worker counts as stalled")
    p.add_argument("--max-attempts", type=int, default=3,
                   help="supervised retries before dead-lettering")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--workers", type=int, default=0,
                   help="decode worker processes (0 = inline; delivered "
                        "payloads identical either way)")
    p.add_argument("--telemetry-out", default=None, metavar="PATH",
                   help="write periodic health snapshots to this JSONL "
                        "stream (crash-flush armed; inspect with "
                        "'repro obs-report')")
    p.add_argument("--telemetry-cadence", type=float, default=1.0,
                   help="virtual seconds between telemetry snapshots")
    p.add_argument("--budget-target", type=float, default=0.99,
                   help="delivered-fraction objective for the error "
                        "budget (strictly between 0 and 1)")
    p.add_argument("--budget-window", type=float, default=3600.0,
                   help="error-budget window, virtual seconds (burn "
                        "windows are derived from it)")
    p.add_argument("--fleet-tags", type=int, default=64,
                   help="tags tracked individually by the bounded fleet "
                        "health registry; overflow evicts LRU into an "
                        "aggregate 'other' bucket")
    p.add_argument("--fleet-top-k", type=int, default=8,
                   help="offender-board size (top-K tags by shed/"
                        "failure/error-bits/latency)")
    p.add_argument("--fleet-z", type=float, default=3.0,
                   help="robust z-score threshold for flagging a tag "
                        "anomalous against the fleet distribution")
    p.add_argument("--health-out", default=None, metavar="PATH",
                   help="write the end-of-run fleet health artifact "
                        "(repro.fleet/1) to PATH (inspect with "
                        "'repro fleet-report')")
    p.add_argument("--outlier-tag", type=int, action="append",
                   default=None, metavar="TAG",
                   help="sabotage this tag address: its requests decode "
                        "at --outlier-distance (repeatable; requires "
                        "per-request dispatch)")
    p.add_argument("--outlier-distance", type=float, default=None,
                   help="tag-reader distance (m) for --outlier-tag "
                        "requests")
    p.set_defaults(func=_cmd_serve)

    p = sub.add_parser("downlink-ber", parents=[common],
                       help="Fig 17 style downlink BER point")
    p.add_argument("--distance", type=float, default=2.0)
    p.add_argument("--rate", type=float, default=20e3, help="bps (<= 25000)")
    p.add_argument("--bits", type=int, default=200_000)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--workers", type=int, default=1,
                   help="fan bit chunks over N processes (bit-identical "
                        "to serial)")
    p.set_defaults(func=_cmd_downlink_ber)

    p = sub.add_parser("correlation", parents=[common],
                       help="Fig 20 style coded-uplink point")
    p.add_argument("--distance", type=float, default=1.6)
    p.add_argument("--length", type=int, default=20)
    p.add_argument("--simulate", action="store_true",
                   help="also run the Monte-Carlo decoder")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--workers", type=int, default=1,
                   help="run the --simulate trial in a worker process "
                        "(bit-identical to serial)")
    p.set_defaults(func=_cmd_correlation)

    p = sub.add_parser("rate-plan", parents=[common],
                       help="compute the N/M rate plan")
    p.add_argument("--helper-pps", type=float, required=True)
    p.add_argument("--pkts-per-bit", type=float, default=3.0)
    p.add_argument("--safety", type=float, default=1.0)
    p.set_defaults(func=_cmd_rate_plan)

    p = sub.add_parser("power-budget", parents=[common],
                       help="tag power/harvest summary")
    p.add_argument("--distance", type=float, default=0.3048,
                   help="meters from a Wi-Fi source (default: one foot)")
    p.set_defaults(func=_cmd_power_budget)

    p = sub.add_parser("calibration", parents=[common],
                       help="show calibrated parameters")
    p.set_defaults(func=_cmd_calibration)

    p = sub.add_parser("forensics", parents=[common],
                       help="failure-attribution report from a "
                            "--record JSONL artifact")
    p.add_argument("records", help="forensics JSONL path (from --record)")
    p.set_defaults(func=_cmd_forensics)

    p = sub.add_parser("obs-report", parents=[common],
                       help="render a run manifest written by --metrics-out "
                            "(soak documents and serve telemetry streams "
                            "are auto-detected)")
    p.add_argument("manifest", nargs="?", default=None,
                   help="manifest, soak-document, or telemetry JSONL path")
    p.add_argument("--dir", default=None,
                   help="pick the newest manifest in this directory")
    p.add_argument("--markdown", action="store_true",
                   help="render soak documents as markdown instead of a "
                        "terminal table")
    p.set_defaults(func=_cmd_obs_report)

    p = sub.add_parser("fleet-report", parents=[common],
                       help="render fleet telemetry: a serve --health-out "
                            "artifact or the fleet blocks of a telemetry "
                            "stream")
    p.add_argument("path",
                   help="repro.fleet/1 artifact JSON or telemetry JSONL")
    p.add_argument("--top", type=int, default=None,
                   help="rows per offender board (default: all tracked)")
    p.set_defaults(func=_cmd_fleet_report)

    p = sub.add_parser("scenarios", parents=[common],
                       help="enumerate the scenario corpus without running")
    p.add_argument("--tag", default=None,
                   help="only scenarios carrying this tag")
    p.add_argument("--file", default=None,
                   help="merge user scenarios from a JSON file")
    p.add_argument("--show", metavar="NAME", default=None,
                   help="print one scenario's full definition as JSON")
    p.set_defaults(func=_cmd_scenarios)

    p = sub.add_parser("soak", parents=[common],
                       help="run the scenario corpus and append cross-run "
                            "history")
    p.add_argument("--corpus", choices=("builtin",), default="builtin",
                   help="scenario corpus to soak (default: builtin)")
    p.add_argument("--scenarios", nargs="*", default=None,
                   help="subset of scenario names to run")
    p.add_argument("--tag", default=None,
                   help="only scenarios carrying this tag")
    p.add_argument("--file", default=None,
                   help="merge user scenarios from a JSON file")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--workers", type=int, default=1,
                   help="parallel trial workers (bit-identical to serial)")
    p.add_argument("--trial-scale", type=float, default=1.0,
                   help="scale every scenario's trial counts (smoke runs)")
    p.add_argument("--quick", action="store_true",
                   help="shorthand for --trial-scale 0.5")
    p.add_argument("--history-dir", default=None,
                   help="history store directory "
                        "(default: <repo>/benchmarks/history)")
    p.add_argument("--no-history", action="store_true",
                   help="do not append to the cross-run history store")
    p.add_argument("--report", nargs="?", const="-", default=None,
                   metavar="PATH",
                   help="render the markdown soak report (to PATH, or to "
                        "stdout when no PATH is given)")
    p.add_argument("--out", default=None, metavar="PATH",
                   help="write the JSON soak document to PATH (readable "
                        "with 'repro obs-report')")
    p.add_argument("--strict", action="store_true",
                   help="exit 4 when any scenario misses its envelope")
    p.set_defaults(func=_cmd_soak)

    p = sub.add_parser("history", parents=[common],
                       help="inspect the cross-run telemetry history")
    p.add_argument("scenario", nargs="*", default=None,
                   help="scenario name(s) to show (default: list all)")
    p.add_argument("--dir", default=None,
                   help="history store directory "
                        "(default: <repo>/benchmarks/history)")
    p.add_argument("--limit", type=int, default=None, metavar="N",
                   help="show only the newest N records")
    p.add_argument("--check", action="store_true",
                   help="run EWMA trend detection; regressions exit 5")
    p.set_defaults(func=_cmd_history)

    p = sub.add_parser("perf-report", parents=[common],
                       help="render the perf sections of a run manifest")
    p.add_argument("manifest", help="manifest JSON path")
    p.set_defaults(func=_cmd_perf_report)

    p = sub.add_parser("bench", parents=[common],
                       help="run the benchmark workload matrix")
    p.add_argument("--list", action="store_true",
                   help="enumerate the workload matrix without running")
    p.add_argument("--quick", action="store_true", default=True,
                   help="few iterations per workload (default)")
    p.add_argument("--full", action="store_true",
                   help="more iterations per workload")
    p.add_argument("--check", action="store_true",
                   help="compare against the committed baseline; "
                        "regressions exit with code 5")
    p.add_argument("--write-baseline", action="store_true",
                   help="write this run as the new baseline")
    p.add_argument("--baseline", default=None,
                   help="baseline JSON path "
                        "(default: <repo>/benchmarks/baseline.json)")
    p.add_argument("--workloads", nargs="*", default=None,
                   help="subset of workloads to run")
    p.add_argument("--out-dir", default=None,
                   help="where BENCH_*.json land (default: repo root)")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--workers", type=int, default=1,
                   help="parallel trial workers per workload; >1 also "
                        "measures speedup_vs_serial")
    p.set_defaults(func=_cmd_bench)
    return parser


def _write_cli_manifest(
    args: argparse.Namespace,
    output: CommandOutput,
    alerts: Optional[List[Any]] = None,
) -> str:
    """Build + write the run manifest for one CLI invocation."""
    from repro.sim.calibration import DEFAULTS

    skip = {"func", "command", "json", "trace", "metrics_out", "obs_dir"}
    if args.command not in FAULT_AWARE_COMMANDS:
        skip = skip | {"faults"}
    config = {
        k: v for k, v in vars(args).items() if k not in skip and v is not None
    }
    extra = {"alerts": [a.to_dict() for a in alerts]} if alerts else None
    manifest = obs.build_manifest(
        args.command,
        seed=getattr(args, "seed", None),
        params=DEFAULTS,
        config=config,
        results=output.data,
        extra=extra,
    )
    return manifest.write(args.metrics_out)


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if (
        getattr(args, "faults", None)
        and args.command not in FAULT_AWARE_COMMANDS
    ):
        print(
            f"warning: --faults has no effect on '{args.command}'",
            file=sys.stderr,
        )

    trace = getattr(args, "trace", False)
    metrics_out = getattr(args, "metrics_out", None)
    obs_dir = getattr(args, "obs_dir", None)
    profiling = getattr(args, "profile", False)
    slo_spec = getattr(args, "slo", None)
    slo_engine = None
    if slo_spec:
        from repro.obs.perf.slo import SloEngine

        try:
            slo_engine = SloEngine.from_spec(slo_spec)
        except ConfigurationError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return EXIT_CONFIG_ERROR
    record_out = getattr(args, "record", None)
    recording = record_out is not None and args.command != "forensics"
    observing = (
        trace or metrics_out is not None or obs_dir is not None
        or profiling or slo_engine is not None or recording
    )
    if observing:
        obs.configure(
            metrics=True, tracing=True, profiling=profiling,
            recording=recording, manifest_dir=obs_dir,
        )
        obs.reset()
        if recording:
            try:
                obs.get_recorder().configure(
                    capacity=getattr(args, "record_capacity", None),
                    policy=getattr(args, "record_policy", None),
                )
            except ConfigurationError as exc:
                print(f"error: {exc}", file=sys.stderr)
                obs.disable()
                return EXIT_CONFIG_ERROR
            # Partial JSONL must survive a SIGTERM'd or interrupted
            # run; the clean flush at the end disarms this.
            from repro.obs.forensics import install_crash_flush

            install_crash_flush(record_out, meta={
                "name": args.command,
                "seed": getattr(args, "seed", None),
            })

    try:
        result = args.func(args)
    except ConfigurationError as exc:
        # Bad invocation (including a malformed --faults spec): the
        # run never happened, so scripts must not read it as a link
        # failure.
        print(f"error: {exc}", file=sys.stderr)
        if recording:
            from repro.obs.forensics import disarm_crash_flush

            disarm_crash_flush()
        if observing:
            obs.disable()
        return EXIT_CONFIG_ERROR
    except ReproError as exc:
        # The experiment ran and the link/decode failed (e.g. faults
        # severe enough to kill every trial).  The flight recorder's
        # records are most valuable exactly here, so flush them first.
        print(f"decode failure: {exc}", file=sys.stderr)
        if recording:
            path = _write_forensics_artifact(args)
            if path:
                print(f"forensics records written to {path}",
                      file=sys.stderr)
        if observing:
            obs.disable()
        return EXIT_DECODE_FAILURE
    rendered: Optional[str] = None
    if isinstance(result, tuple):
        result, rendered = result

    alerts: List[Any] = []
    if slo_engine is not None:
        alerts = slo_engine.evaluate(context={"command": args.command})

    if getattr(args, "json", False):
        payload = {"command": args.command, **result.data}
        if slo_engine is not None:
            payload["alerts"] = [a.to_dict() for a in alerts]
        print(obs.dumps(payload))
    elif rendered is not None:
        print(rendered)
    else:
        print(result.to_table())

    # Diagnostics (alerts, perf, trace) go to stderr under --json so
    # stdout stays machine-readable.
    out = sys.stderr if getattr(args, "json", False) else sys.stdout
    if alerts:
        from repro.obs.perf.report import render_alerts

        print("\n" + render_alerts([a.to_dict() for a in alerts]), file=out)
    if metrics_out is not None:
        path = _write_cli_manifest(args, result, alerts=alerts)
        print(f"\nrun manifest written to {path}", file=out)
    if recording:
        path = _write_forensics_artifact(args)
        if path:
            recorder = obs.get_recorder()
            print(
                f"\nforensics records written to {path} "
                f"({len(recorder.records)} records, "
                f"{recorder.seen} packets seen)",
                file=out,
            )
    if profiling:
        from repro.obs.perf.report import render_profile

        print("\n" + render_profile(obs.get_profiler().snapshot()), file=out)
    if trace:
        from repro.obs.report import render_span_tree

        tree = render_span_tree(obs.get_tracer().to_dicts())
        if tree:
            print("\ntrace\n" + tree, file=out)
    if observing:
        obs.disable()
    if alerts:
        return EXIT_SLO_VIOLATION
    if args.command == "soak" and result.data.get("strict_failed"):
        return EXIT_SLO_VIOLATION
    if (
        args.command in ("bench", "history")
        and result.data.get("regressed")
    ):
        return EXIT_BENCH_REGRESSION
    return EXIT_OK


if __name__ == "__main__":
    raise SystemExit(main())
