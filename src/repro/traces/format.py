"""Measurement trace I/O.

Real deployments log CSI/RSSI traces (the Intel CSI Tool writes its own
binary format); we persist :class:`~repro.sim.measurement.
MeasurementStream` objects as compressed NPZ so experiments can be
replayed and shared. The reader side of a recorded experiment and a
simulated one share the same decoding code path.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

import numpy as np

from repro.errors import TraceFormatError
from repro.measurement import ChannelMeasurement, MeasurementStream

#: Format version written into every trace.
FORMAT_VERSION = 1


def save_stream(stream: MeasurementStream, path: Union[str, Path]) -> None:
    """Write a measurement stream to an ``.npz`` trace file.

    Streams may mix CSI and RSSI-only records; a per-record mask keeps
    track of which rows carry CSI.
    """
    path = Path(path)
    n = len(stream)
    timestamps = stream.timestamps
    rssi = stream.rssi_matrix() if n else np.empty((0, 0))
    has_csi = np.array([m.has_csi for m in stream], dtype=bool)
    sources = np.array([m.source for m in stream], dtype=object)
    csi_shape = None
    csi_data = np.empty((0,))
    if n and has_csi.any():
        first = next(m for m in stream if m.has_csi)
        csi_shape = first.csi.shape
        stacked = np.zeros((n,) + csi_shape)
        for i, m in enumerate(stream):
            if m.has_csi:
                if m.csi.shape != csi_shape:
                    raise TraceFormatError(
                        f"inconsistent CSI shapes: {m.csi.shape} vs {csi_shape}"
                    )
                stacked[i] = m.csi
        csi_data = stacked
    meta = {
        "version": FORMAT_VERSION,
        "count": n,
        "csi_shape": list(csi_shape) if csi_shape else None,
    }
    np.savez_compressed(
        path,
        meta=json.dumps(meta),
        timestamps=timestamps,
        rssi=rssi,
        has_csi=has_csi,
        sources=sources.astype("U32") if n else np.empty((0,), dtype="U32"),
        csi=csi_data,
    )


def load_stream(path: Union[str, Path]) -> MeasurementStream:
    """Read a trace written by :func:`save_stream`.

    Raises:
        TraceFormatError: missing/invalid fields or unknown version.
    """
    path = Path(path)
    if not path.exists():
        raise TraceFormatError(f"trace file not found: {path}")
    try:
        data = np.load(path, allow_pickle=False)
    except Exception as exc:  # numpy raises various things here
        raise TraceFormatError(f"cannot read {path}: {exc}") from exc
    try:
        meta = json.loads(str(data["meta"]))
    except (KeyError, json.JSONDecodeError) as exc:
        raise TraceFormatError(f"bad trace metadata in {path}") from exc
    if meta.get("version") != FORMAT_VERSION:
        raise TraceFormatError(
            f"unsupported trace version {meta.get('version')!r}"
        )
    n = int(meta["count"])
    stream = MeasurementStream()
    if n == 0:
        return stream
    timestamps = data["timestamps"]
    rssi = data["rssi"]
    has_csi = data["has_csi"]
    sources = data["sources"]
    csi = data["csi"] if meta["csi_shape"] else None
    if len(timestamps) != n or len(rssi) != n:
        raise TraceFormatError("trace arrays disagree with metadata count")
    for i in range(n):
        stream.append(
            ChannelMeasurement(
                timestamp_s=float(timestamps[i]),
                csi=csi[i] if (csi is not None and has_csi[i]) else None,
                rssi_dbm=rssi[i],
                source=str(sources[i]),
            )
        )
    return stream
