"""Synthetic trace generation.

The paper's ambient-traffic experiments (Figs 15, 18) run against a
live office network over a working day. Without that network, we
generate equivalent traces: packet timelines following the diurnal
office load curve, renderable either as reader-side measurement
streams (uplink experiments) or as on-air interval schedules
(tag-side false-positive experiments).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.mac.traffic import office_load_pps
from repro.phy.envelope import AirInterval
from repro.phy.ofdm import OfdmPacket


@dataclass(frozen=True)
class TrafficSample:
    """A slice of synthetic office traffic.

    Attributes:
        hour_of_day: wall-clock hour the slice represents.
        packet_times_s: packet start times within the slice (t=0 based).
        load_pps: the nominal load at that hour.
    """

    hour_of_day: float
    packet_times_s: np.ndarray
    load_pps: float


def office_traffic_sample(
    hour_of_day: float,
    duration_s: float,
    peak_pps: float = 1100.0,
    base_pps: float = 100.0,
    burstiness: float = 0.3,
    rng: Optional[np.random.Generator] = None,
) -> TrafficSample:
    """Packet times for ``duration_s`` of office traffic at a given hour.

    Arrivals are Poisson at the diurnal rate, with a fraction
    ``burstiness`` of packets arriving in short back-to-back clumps
    (Internet traffic's burstiness, §5).
    """
    if duration_s <= 0:
        raise ConfigurationError("duration_s must be positive")
    if not 0.0 <= burstiness < 1.0:
        raise ConfigurationError("burstiness must be in [0, 1)")
    rng = rng or np.random.default_rng()
    load = office_load_pps(hour_of_day, peak_pps=peak_pps, base_pps=base_pps)
    base_rate = load * (1.0 - burstiness)
    n_expected = int(base_rate * duration_s * 1.5) + 10
    gaps = rng.exponential(1.0 / base_rate, size=n_expected)
    seeds = np.cumsum(gaps)
    seeds = seeds[seeds < duration_s]
    times: List[float] = list(seeds)
    # Burst clumps: some seeds spawn a few trailing packets ~0.5 ms apart.
    n_burst_packets = int(load * duration_s * burstiness)
    if len(seeds) and n_burst_packets:
        parents = rng.choice(seeds, size=n_burst_packets)
        offsets = rng.uniform(0.2e-3, 2e-3, size=n_burst_packets)
        times.extend((parents + offsets).tolist())
    arr = np.sort(np.asarray(times))
    return TrafficSample(
        hour_of_day=hour_of_day, packet_times_s=arr[arr < duration_s], load_pps=load
    )


def sample_to_intervals(
    sample: TrafficSample,
    tx_power_w: float,
    payload_bytes_range: Tuple[int, int] = (60, 1500),
    rng: Optional[np.random.Generator] = None,
) -> List[AirInterval]:
    """Convert a traffic sample into on-air intervals at the tag.

    Packet sizes are drawn uniformly over the given byte range (office
    traffic mixes ACK-sized and MTU-sized frames); durations come from
    the OFDM airtime model at 54 Mbps.
    """
    if tx_power_w <= 0:
        raise ConfigurationError("tx_power_w must be positive")
    lo, hi = payload_bytes_range
    if lo < 0 or hi < lo:
        raise ConfigurationError("invalid payload_bytes_range")
    rng = rng or np.random.default_rng()
    intervals: List[AirInterval] = []
    prev_end = -1.0
    for t in sample.packet_times_s:
        size = int(rng.integers(lo, hi + 1))
        duration = OfdmPacket(payload_bytes=size).airtime_s
        start = max(float(t), prev_end + 1e-6)  # no overlapping airtime
        intervals.append(
            AirInterval(start_s=start, duration_s=duration, power_w=tx_power_w)
        )
        prev_end = start + duration
    return intervals


def hours_range(start_hour: float, end_hour: float, step_hours: float) -> List[float]:
    """Inclusive hour grid for time-of-day sweeps (e.g. 12.0 to 20.0)."""
    if step_hours <= 0:
        raise ConfigurationError("step_hours must be positive")
    if end_hour < start_hour:
        raise ConfigurationError("end_hour must be >= start_hour")
    hours = []
    h = start_hour
    while h <= end_hour + 1e-9:
        hours.append(round(h, 6))
        h += step_hours
    return hours
