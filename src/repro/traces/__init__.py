"""Trace generation and persistence."""

from repro.traces.format import FORMAT_VERSION, load_stream, save_stream
from repro.traces.synthetic import (
    TrafficSample,
    hours_range,
    office_traffic_sample,
    sample_to_intervals,
)

__all__ = [
    "FORMAT_VERSION",
    "TrafficSample",
    "hours_range",
    "load_stream",
    "office_traffic_sample",
    "sample_to_intervals",
    "save_stream",
]
