"""Declarative scenario schema: one operating point of the paper's envelope.

A :class:`Scenario` is plain data — geometry, helper-traffic regime,
channel mode, an optional fault plan, and the *expected envelope*
(BER/throughput/latency bounds derived from the paper's figures).  It
round-trips losslessly through ``to_dict``/``from_dict`` (and therefore
JSON), and every constructor validates its fields, raising
:class:`repro.errors.ScenarioError` with the offending field named as a
dotted path — the CLI maps that to the configuration exit code (3).

The schema deliberately describes *what* to measure, not *how*: the
mapping onto the simulation drivers lives in
:mod:`repro.scenarios.runner`, so a scenario file written today keeps
working as the execution machinery underneath it evolves.
"""

from __future__ import annotations

import dataclasses
import re
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError, ScenarioError

#: Schema version stamped into serialized scenarios.
SCHEMA_VERSION = 1

#: Helper-traffic regimes the runner knows how to realize.
TRAFFIC_REGIMES = (
    "injected_cbr",   # §7.2: packets injected at a controlled rate
    "cts",            # §4.1: CTS_to_SELF-reserved helper slots (clean medium)
    "poisson",        # memoryless ambient-like arrivals
    "ambient",        # §7.4: diurnal office load, no injected traffic
    "beacon_only",    # §7.5 / Fig 16: AP beacons are the only packets
    "bursty",         # §3.2: Pareto bursts with idle gaps
)

#: Channel/decode modes (the degradation-ladder rungs plus downlink).
CHANNEL_MODES = ("csi", "rssi", "coded", "downlink")

#: Mobility trace kinds.
MOBILITY_KINDS = ("static", "linear", "random_walk")

#: Geometry sanity bounds (meters).  The paper's whole envelope fits
#: well inside these; anything outside is a typo, not an experiment.
MAX_TAG_READER_M = 3.0
MAX_HELPER_TAG_M = 30.0

_NAME_RE = re.compile(r"^[a-z0-9][a-z0-9_\-]*$")


def _require(condition: bool, message: str, field_path: str) -> None:
    if not condition:
        raise ScenarioError(message, field=field_path)


def _reject_unknown(data: Dict[str, Any], known: Sequence[str],
                    prefix: str = "") -> None:
    for key in data:
        if key not in known:
            path = f"{prefix}{key}" if prefix else str(key)
            raise ScenarioError(
                f"unknown key (known: {sorted(known)})", field=path
            )


def _build(cls, data: Any, prefix: str):
    """Construct a nested dataclass from a dict, prefixing error paths."""
    if not isinstance(data, dict):
        raise ScenarioError(
            f"expected a mapping, got {type(data).__name__}",
            field=prefix.rstrip("."),
        )
    names = [f.name for f in dataclasses.fields(cls)]
    _reject_unknown(data, names, prefix)
    try:
        return cls(**data)
    except ScenarioError as exc:
        if exc.field and not exc.field.startswith(prefix):
            raise ScenarioError(
                str(exc).partition(": ")[2] or str(exc),
                field=prefix + exc.field,
            ) from None
        raise
    except TypeError as exc:
        raise ScenarioError(str(exc), field=prefix.rstrip(".")) from None


@dataclass(frozen=True)
class Mobility:
    """Tag motion over the scenario's trials.

    Motion is discretized per transmission: trial ``i`` runs at the
    trace's position ``i`` (the paper's experiments hold the tag still
    during one frame; it is the *between-frame* drift that stresses
    rate adaptation and the coded rungs).

    Attributes:
        kind: "static", "linear" (start→end sweep), or "random_walk".
        end_m: final tag-reader distance for "linear".
        step_std_m: per-trial step deviation for "random_walk".
    """

    kind: str = "static"
    end_m: Optional[float] = None
    step_std_m: float = 0.05

    def __post_init__(self) -> None:
        _require(self.kind in MOBILITY_KINDS,
                 f"must be one of {MOBILITY_KINDS}, got {self.kind!r}",
                 "kind")
        if self.kind == "linear":
            _require(self.end_m is not None,
                     "linear mobility needs end_m", "end_m")
        if self.end_m is not None:
            _require(0.0 < float(self.end_m) <= MAX_TAG_READER_M,
                     f"must be in (0, {MAX_TAG_READER_M}] m, got {self.end_m}",
                     "end_m")
        _require(self.step_std_m >= 0.0,
                 "must be >= 0", "step_std_m")

    def distances(self, start_m: float, n: int, seed: int) -> List[float]:
        """Per-trial tag-reader distances along the trace (deterministic)."""
        import numpy as np

        if self.kind == "static" or n == 1:
            return [start_m] * n
        if self.kind == "linear":
            return [
                float(v) for v in
                np.linspace(start_m, float(self.end_m), n)
            ]
        rng = np.random.default_rng(np.random.SeedSequence(seed))
        steps = rng.normal(0.0, self.step_std_m, size=n - 1)
        out = [start_m]
        for step in steps:
            out.append(
                float(np.clip(out[-1] + step, 0.05, MAX_TAG_READER_M))
            )
        return out


@dataclass(frozen=True)
class Geometry:
    """Where the tag, reader, and helper sit.

    Attributes:
        tag_to_reader_m: backscatter link distance (uplink range knob).
        helper_to_tag_m: helper transmitter to tag distance.
        mobility: optional per-trial motion trace.
    """

    tag_to_reader_m: float = 0.3
    helper_to_tag_m: float = 3.0
    mobility: Optional[Mobility] = None

    def __post_init__(self) -> None:
        _require(
            0.0 < float(self.tag_to_reader_m) <= MAX_TAG_READER_M,
            f"must be in (0, {MAX_TAG_READER_M}] m, "
            f"got {self.tag_to_reader_m}",
            "tag_to_reader_m",
        )
        _require(
            0.0 < float(self.helper_to_tag_m) <= MAX_HELPER_TAG_M,
            f"must be in (0, {MAX_HELPER_TAG_M}] m, "
            f"got {self.helper_to_tag_m}",
            "helper_to_tag_m",
        )
        if self.mobility is not None and isinstance(self.mobility, dict):
            object.__setattr__(
                self, "mobility", _build(Mobility, self.mobility, "mobility.")
            )


@dataclass(frozen=True)
class Traffic:
    """The helper-traffic regime feeding the backscatter link.

    Attributes:
        regime: one of :data:`TRAFFIC_REGIMES`.
        rate_pps: mean helper packet rate (ignored for "ambient" and
            "beacon_only", which derive their own).
        start_hour: wall-clock hour for the "ambient" diurnal curve.
        peak_pps / base_pps: diurnal curve parameters ("ambient").
        beacon_interval_s: beacon period for "beacon_only" (the 802.11
            default TBTT is 102.4 ms).
    """

    regime: str = "injected_cbr"
    rate_pps: float = 1000.0
    start_hour: float = 14.0
    peak_pps: float = 1100.0
    base_pps: float = 100.0
    beacon_interval_s: float = 0.1024

    def __post_init__(self) -> None:
        _require(self.regime in TRAFFIC_REGIMES,
                 f"must be one of {TRAFFIC_REGIMES}, got {self.regime!r}",
                 "regime")
        _require(float(self.rate_pps) > 0, "must be positive", "rate_pps")
        _require(0.0 <= float(self.start_hour) <= 24.0,
                 "must be within [0, 24]", "start_hour")
        _require(float(self.peak_pps) > 0, "must be positive", "peak_pps")
        _require(float(self.base_pps) > 0, "must be positive", "base_pps")
        _require(float(self.beacon_interval_s) > 0,
                 "must be positive", "beacon_interval_s")

    def effective_rate_pps(self) -> float:
        """Mean helper packets/s this regime delivers."""
        if self.regime == "ambient":
            from repro.mac.traffic import office_load_pps

            return office_load_pps(
                self.start_hour, self.peak_pps, self.base_pps
            )
        if self.regime == "beacon_only":
            return 1.0 / self.beacon_interval_s
        return float(self.rate_pps)

    def arrival_kind(self) -> str:
        """The :func:`repro.sim.link.helper_packet_times` traffic kind."""
        if self.regime in ("injected_cbr", "cts", "beacon_only"):
            # CTS_to_SELF reserves the medium, so helper slots arrive
            # on schedule; beacons are timer-driven (TBTT).
            return "cbr"
        if self.regime == "bursty":
            return "bursty"
        return "poisson"


@dataclass(frozen=True)
class Channel:
    """Decode mode: which rung of the degradation ladder (or downlink).

    Attributes:
        mode: "csi" | "rssi" | "coded" | "downlink".
        code_length: chips per bit for "coded" (the paper's L).
        downlink_rate_bps: on-off keying rate for "downlink" (<=25 kbps).
    """

    mode: str = "csi"
    code_length: int = 8
    downlink_rate_bps: float = 20e3

    def __post_init__(self) -> None:
        _require(self.mode in CHANNEL_MODES,
                 f"must be one of {CHANNEL_MODES}, got {self.mode!r}",
                 "mode")
        _require(2 <= int(self.code_length) <= 512,
                 f"must be in [2, 512], got {self.code_length}",
                 "code_length")
        _require(0 < float(self.downlink_rate_bps) <= 25e3,
                 f"must be in (0, 25000] bps, got {self.downlink_rate_bps}",
                 "downlink_rate_bps")


@dataclass(frozen=True)
class TrialConfig:
    """How much Monte-Carlo to spend on the scenario.

    Attributes:
        repeats: transmissions (uplink) / chunk draws (downlink).
        payload_bits: bits per transmission.
        packets_per_bit: the paper's M (uplink bit rate is derived as
            ``traffic rate / M``); packets per *chip* for "coded".
        downlink_bits: Monte-Carlo bits for "downlink" scenarios.
    """

    repeats: int = 6
    payload_bits: int = 36
    packets_per_bit: float = 10.0
    downlink_bits: int = 20_000

    def __post_init__(self) -> None:
        _require(int(self.repeats) >= 1, "must be >= 1", "repeats")
        _require(int(self.payload_bits) >= 4, "must be >= 4", "payload_bits")
        _require(float(self.packets_per_bit) > 0,
                 "must be positive", "packets_per_bit")
        _require(int(self.downlink_bits) >= 1000,
                 "must be >= 1000", "downlink_bits")


@dataclass(frozen=True)
class Serve:
    """Streaming-gateway spell: run the scenario through the resilient
    serve loop (:mod:`repro.serve`) instead of a batch BER sweep.

    The scenario's geometry/traffic/trial sections still define the
    per-request decode physics; this section adds the serving shape —
    offered load, an optional overload burst, the latency budget, and
    the bounded-queue/supervision knobs the chaos suite exercises.

    Attributes:
        duration_s: virtual serving spell length.
        offered_load_rps: steady request arrival rate.
        burst_load_rps: overload burst rate (None = no burst).
        burst_start_s / burst_end_s: burst window within the spell.
        deadline_ms: per-request latency budget.
        queue_capacity: bounded ingress depth (overflow sheds).
        batch: requests dispatched per decode round.
        arrival_profile: "cbr" | "poisson" | "bursty" | "office".
        workers: decode worker processes (0 = inline).
        max_attempts: supervised retries before dead-lettering.
        n_tags: distinct tag addresses behind the gateway.
        fleet_capacity: tags tracked individually by the fleet health
            registry (overflow evicts LRU into the "other" bucket).
        outlier_tags: sabotaged tag addresses whose requests decode at
            ``outlier_distance_m`` — the fleet anomaly-surfacing path's
            ground truth.
        outlier_distance_m: hostile tag-reader distance for the
            outlier tags (required when any are set).
    """

    duration_s: float = 12.0
    offered_load_rps: float = 4.0
    burst_load_rps: Optional[float] = None
    burst_start_s: float = 0.0
    burst_end_s: float = 0.0
    deadline_ms: float = 4000.0
    queue_capacity: int = 16
    batch: int = 4
    arrival_profile: str = "poisson"
    workers: int = 0
    max_attempts: int = 3
    n_tags: int = 8
    fleet_capacity: int = 64
    outlier_tags: Tuple[int, ...] = ()
    outlier_distance_m: Optional[float] = None

    def __post_init__(self) -> None:
        # JSON round-trips deliver lists; canonicalize to a tuple so
        # equality holds across to_dict/from_dict.
        object.__setattr__(
            self, "outlier_tags",
            tuple(int(t) for t in self.outlier_tags),
        )
        _require(float(self.duration_s) > 0, "must be positive",
                 "duration_s")
        _require(float(self.offered_load_rps) > 0, "must be positive",
                 "offered_load_rps")
        if self.burst_load_rps is not None:
            _require(float(self.burst_load_rps) > 0, "must be positive",
                     "burst_load_rps")
            _require(float(self.burst_end_s) > float(self.burst_start_s),
                     "burst window must be non-empty", "burst_end_s")
        _require(float(self.deadline_ms) > 0, "must be positive",
                 "deadline_ms")
        _require(int(self.queue_capacity) >= 1, "must be >= 1",
                 "queue_capacity")
        _require(int(self.batch) >= 1, "must be >= 1", "batch")
        from repro.serve.arrivals import ARRIVAL_PROFILES

        _require(self.arrival_profile in ARRIVAL_PROFILES,
                 f"must be one of {ARRIVAL_PROFILES}, "
                 f"got {self.arrival_profile!r}",
                 "arrival_profile")
        _require(int(self.workers) >= 0, "must be >= 0", "workers")
        _require(int(self.max_attempts) >= 1, "must be >= 1",
                 "max_attempts")
        _require(int(self.n_tags) >= 1, "must be >= 1", "n_tags")
        _require(int(self.fleet_capacity) >= 1, "must be >= 1",
                 "fleet_capacity")
        _require(all(t >= 0 for t in self.outlier_tags),
                 "tag addresses must be >= 0", "outlier_tags")
        if self.outlier_tags:
            _require(self.outlier_distance_m is not None,
                     "required when outlier_tags are set",
                     "outlier_distance_m")
        if self.outlier_distance_m is not None:
            _require(float(self.outlier_distance_m) > 0,
                     "must be positive", "outlier_distance_m")


@dataclass(frozen=True)
class Envelope:
    """Expected operating envelope, from the paper's figures.

    Any bound may be omitted (None = not asserted).  ``ber_max`` and
    ``latency_max_s`` are upper bounds, ``throughput_min_bps`` a lower
    bound on goodput (delivered correct bits/s of *link* time).
    """

    ber_max: Optional[float] = None
    throughput_min_bps: Optional[float] = None
    latency_max_s: Optional[float] = None

    def __post_init__(self) -> None:
        if self.ber_max is not None:
            _require(0.0 <= float(self.ber_max) <= 1.0,
                     "must be within [0, 1]", "ber_max")
        if self.throughput_min_bps is not None:
            _require(float(self.throughput_min_bps) >= 0.0,
                     "must be >= 0", "throughput_min_bps")
        if self.latency_max_s is not None:
            _require(float(self.latency_max_s) > 0.0,
                     "must be positive", "latency_max_s")

    def bounds(self) -> List[Tuple[str, str, float]]:
        """``(metric, op, bound)`` triples for the asserted bounds."""
        out: List[Tuple[str, str, float]] = []
        if self.ber_max is not None:
            out.append(("ber", "<=", float(self.ber_max)))
        if self.throughput_min_bps is not None:
            out.append(("throughput_bps", ">=",
                        float(self.throughput_min_bps)))
        if self.latency_max_s is not None:
            out.append(("latency_s", "<=", float(self.latency_max_s)))
        return out


@dataclass(frozen=True)
class Scenario:
    """One declarative, runnable operating point.

    Attributes:
        name: unique slug (lowercase, ``[a-z0-9_-]``).
        description: one-line human summary.
        tags: free-form labels for corpus filtering ("geometry",
            "faults", "mobility", ...).
        geometry / traffic / channel / trial / envelope: see the
            component dataclasses.
        serve: optional streaming-gateway section; when present the
            runner drives the scenario through :mod:`repro.serve`
            (csi/rssi modes only).
        faults: optional fault-plan string in the
            :mod:`repro.faults.spec` mini-language.
        slo: optional SLO rule spec (see :mod:`repro.obs.perf.slo`)
            evaluated against the run's metrics registry.
        seed: per-scenario base seed offset (combined with the soak
            run's seed so reruns are reproducible yet decorrelated).
    """

    name: str
    description: str = ""
    tags: Tuple[str, ...] = ()
    geometry: Geometry = field(default_factory=Geometry)
    traffic: Traffic = field(default_factory=Traffic)
    channel: Channel = field(default_factory=Channel)
    trial: TrialConfig = field(default_factory=TrialConfig)
    envelope: Envelope = field(default_factory=Envelope)
    serve: Optional[Serve] = None
    faults: Optional[str] = None
    slo: Optional[str] = None
    seed: int = 0

    def __post_init__(self) -> None:
        _require(bool(self.name) and _NAME_RE.match(str(self.name)) is not None,
                 "must be a lowercase [a-z0-9_-] slug", "name")
        for attr, cls in (
            ("geometry", Geometry), ("traffic", Traffic),
            ("channel", Channel), ("trial", TrialConfig),
            ("envelope", Envelope),
        ):
            value = getattr(self, attr)
            if isinstance(value, dict):
                object.__setattr__(
                    self, attr, _build(cls, value, f"{attr}.")
                )
            elif not isinstance(value, cls):
                raise ScenarioError(
                    f"expected {cls.__name__} or mapping, "
                    f"got {type(value).__name__}",
                    field=attr,
                )
        if self.serve is not None:
            if isinstance(self.serve, dict):
                object.__setattr__(
                    self, "serve", _build(Serve, self.serve, "serve.")
                )
            elif not isinstance(self.serve, Serve):
                raise ScenarioError(
                    f"expected Serve or mapping, "
                    f"got {type(self.serve).__name__}",
                    field="serve",
                )
            _require(self.channel.mode in ("csi", "rssi"),
                     "serve scenarios need an uplink channel mode "
                     "(csi or rssi)",
                     "serve")
        if isinstance(self.tags, list):
            object.__setattr__(self, "tags", tuple(self.tags))
        _require(all(isinstance(t, str) for t in self.tags),
                 "tags must be strings", "tags")
        if self.faults is not None:
            from repro.faults import parse_fault_spec

            try:
                parse_fault_spec(self.faults)
            except ConfigurationError as exc:
                raise ScenarioError(str(exc), field="faults") from None
        if self.slo is not None:
            from repro.obs.perf.slo import SloEngine

            try:
                SloEngine.from_spec(self.slo)
            except ConfigurationError as exc:
                raise ScenarioError(str(exc), field="slo") from None

    # -- serialization -------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready dict (round-trips through :meth:`from_dict`)."""
        data = dataclasses.asdict(self)
        data["tags"] = list(self.tags)
        data["schema_version"] = SCHEMA_VERSION
        if self.geometry.mobility is None:
            data["geometry"].pop("mobility")
        if self.serve is None:
            data.pop("serve")
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Scenario":
        """Validate + build a scenario from a plain dict.

        Raises:
            ScenarioError: unknown keys (at any nesting level), missing
                name, or any out-of-range value — with ``field`` set to
                the dotted path of the offender.
        """
        if not isinstance(data, dict):
            raise ScenarioError(
                f"scenario must be a mapping, got {type(data).__name__}"
            )
        data = dict(data)
        version = data.pop("schema_version", SCHEMA_VERSION)
        if int(version) > SCHEMA_VERSION:
            raise ScenarioError(
                f"schema_version {version} is newer than supported "
                f"{SCHEMA_VERSION}",
                field="schema_version",
            )
        return _build(cls, data, "")


def scenarios_from_json(text: str) -> List[Scenario]:
    """Parse one scenario or a list of scenarios from JSON text."""
    import json

    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ScenarioError(f"not valid JSON: {exc}") from None
    if isinstance(payload, dict) and "scenarios" in payload:
        payload = payload["scenarios"]
    if isinstance(payload, dict):
        payload = [payload]
    if not isinstance(payload, list):
        raise ScenarioError("expected a scenario object or list")
    return [Scenario.from_dict(item) for item in payload]
