"""Declarative scenario corpus for the Wi-Fi backscatter reproduction.

A *scenario* is a declarative description of one operating condition
from the paper — geometry, helper-traffic regime, channel mode, fault
plan, and the expected performance envelope — that can be validated,
serialized, enumerated (``repro scenarios``), and executed through the
parallel simulation engine (``repro soak``).
"""

from repro.scenarios.corpus import builtin_scenarios
from repro.scenarios.registry import ScenarioRegistry, builtin_registry
from repro.scenarios.runner import (
    EnvelopeVerdict,
    ScenarioResult,
    run_scenario,
)
from repro.scenarios.schema import (
    CHANNEL_MODES,
    SCHEMA_VERSION,
    TRAFFIC_REGIMES,
    Channel,
    Envelope,
    Geometry,
    Mobility,
    Scenario,
    Serve,
    Traffic,
    TrialConfig,
    scenarios_from_json,
)

__all__ = [
    "CHANNEL_MODES",
    "SCHEMA_VERSION",
    "TRAFFIC_REGIMES",
    "Channel",
    "Envelope",
    "EnvelopeVerdict",
    "Geometry",
    "Mobility",
    "Scenario",
    "ScenarioRegistry",
    "ScenarioResult",
    "Serve",
    "Traffic",
    "TrialConfig",
    "builtin_registry",
    "builtin_scenarios",
    "run_scenario",
    "scenarios_from_json",
]
