"""The built-in scenario corpus: the paper's envelope, enumerated.

Each scenario pins one operating point of the Wi-Fi Backscatter
envelope — geometry sweeps along the uplink range curve (Fig 10),
the RSSI fallback rung, the coded long-range mode (Fig 20), downlink
reach (Fig 17), every helper-traffic regime the paper evaluates
(injected, CTS-reserved, ambient diurnal, beacon-only, bursty), tag
mobility traces, and fault-plan combinations from the chaos suite.

Expected envelopes are derived from the paper's figures, with slack
for Monte-Carlo noise at soak trial counts: the corpus gates *gross*
regressions (a decode path broken at an operating point), while the
cross-run history (:mod:`repro.obs.soak.history`) catches slow drift.

Trial counts are sized so the full corpus soaks in seconds — breadth
over depth; the benchmark matrix owns the deep timing measurements.
"""

from __future__ import annotations

from typing import List

from repro.scenarios.schema import (
    Channel,
    Envelope,
    Geometry,
    Mobility,
    Scenario,
    Serve,
    Traffic,
    TrialConfig,
)

#: Generous per-trial wall-clock bound (seconds) — scenarios are tiny;
#: blowing through this means a hot path has regressed badly.
LATENCY_BOUND_S = 5.0


def _uplink(
    name: str,
    description: str,
    distance_m: float,
    mode: str = "csi",
    rate_pps: float = 2000.0,
    regime: str = "injected_cbr",
    ppb: float = 10.0,
    repeats: int = 6,
    payload_bits: int = 36,
    ber_max: float = 0.05,
    throughput_min_bps: float = 0.0,
    tags: tuple = (),
    faults: str = None,
    seed: int = 0,
    **kwargs,
) -> Scenario:
    return Scenario(
        name=name,
        description=description,
        tags=tags,
        geometry=Geometry(tag_to_reader_m=distance_m, **kwargs),
        traffic=Traffic(regime=regime, rate_pps=rate_pps),
        channel=Channel(mode=mode),
        trial=TrialConfig(
            repeats=repeats, payload_bits=payload_bits,
            packets_per_bit=ppb,
        ),
        envelope=Envelope(
            ber_max=ber_max,
            throughput_min_bps=throughput_min_bps or None,
            latency_max_s=LATENCY_BOUND_S,
        ),
        faults=faults,
        seed=seed,
    )


def builtin_scenarios() -> List[Scenario]:
    """The ≥20-scenario built-in corpus (fresh instances each call)."""
    scenarios: List[Scenario] = []

    # -- geometry sweep: the Fig 10a CSI range curve -------------------------
    # The paper holds BER < 1e-2 out to 0.65 m at 1 kbps-class rates.
    for dist, ber in ((0.10, 0.02), (0.20, 0.02), (0.30, 0.03),
                      (0.45, 0.05), (0.60, 0.15)):
        scenarios.append(_uplink(
            f"geom_csi_{int(dist * 100):03d}cm",
            f"Fig 10a operating point: CSI uplink at {dist} m",
            dist, ber_max=ber, throughput_min_bps=150.0,
            tags=("geometry", "csi"),
            seed=int(dist * 100),
        ))
    # Past the knee: the CSI rung is *expected* to be unusable — the
    # envelope asserts it stays broken (a sudden pass here would mean
    # the channel model drifted optimistic).
    scenarios.append(Scenario(
        name="geom_csi_080cm_past_knee",
        description="beyond Fig 6's two-level knee: CSI must degrade",
        tags=("geometry", "csi", "edge"),
        geometry=Geometry(tag_to_reader_m=0.80),
        traffic=Traffic(regime="injected_cbr", rate_pps=2000.0),
        channel=Channel(mode="csi"),
        trial=TrialConfig(repeats=4, payload_bits=36, packets_per_bit=10.0),
        envelope=Envelope(ber_max=0.6, latency_max_s=LATENCY_BOUND_S),
        seed=80,
    ))

    # -- RSSI fallback rung (Fig 10b: usable only very close) ----------------
    scenarios.append(_uplink(
        "rssi_near_015cm", "Fig 10b: RSSI-only reader at 0.15 m",
        0.15, mode="rssi", ber_max=0.12, tags=("rssi",), seed=215,
    ))
    scenarios.append(_uplink(
        "rssi_mid_030cm", "Fig 10b: RSSI-only reader at 0.30 m",
        0.30, mode="rssi", ber_max=0.25, tags=("rssi",), seed=230,
    ))

    # -- coded long-range rungs (Fig 20) -------------------------------------
    for name, dist, length, ber in (
        ("coded_l8_100cm", 1.0, 8, 0.10),
        ("coded_l20_160cm", 1.6, 20, 0.15),
        ("coded_l64_200cm", 2.0, 64, 0.25),
    ):
        scenarios.append(Scenario(
            name=name,
            description=f"Fig 20: L={length} orthogonal code at {dist} m",
            tags=("coded", "geometry"),
            geometry=Geometry(tag_to_reader_m=dist),
            traffic=Traffic(regime="injected_cbr", rate_pps=500.0),
            channel=Channel(mode="coded", code_length=length),
            trial=TrialConfig(
                repeats=2, payload_bits=10, packets_per_bit=5.0,
            ),
            envelope=Envelope(ber_max=ber, latency_max_s=LATENCY_BOUND_S),
            seed=int(dist * 100) + length,
        ))

    # -- downlink reach (Fig 17: 2.2 m at 20 kbps) ---------------------------
    for name, dist, ber in (
        ("downlink_near_100cm", 1.0, 0.005),
        ("downlink_far_220cm", 2.2, 0.05),
    ):
        scenarios.append(Scenario(
            name=name,
            description=f"Fig 17: 20 kbps downlink at {dist} m",
            tags=("downlink",),
            geometry=Geometry(tag_to_reader_m=dist),
            traffic=Traffic(regime="injected_cbr", rate_pps=1000.0),
            channel=Channel(mode="downlink", downlink_rate_bps=20e3),
            trial=TrialConfig(
                repeats=1, payload_bits=36, packets_per_bit=10.0,
                downlink_bits=20_000,
            ),
            envelope=Envelope(
                ber_max=ber, throughput_min_bps=18_000.0,
                latency_max_s=LATENCY_BOUND_S,
            ),
            seed=int(dist * 100),
        ))

    # -- helper-traffic regimes ----------------------------------------------
    scenarios.append(Scenario(
        name="ambient_office_peak",
        description="Fig 15: ambient-only uplink at the 14:30 load peak",
        tags=("ambient", "traffic"),
        geometry=Geometry(tag_to_reader_m=0.3),
        traffic=Traffic(regime="ambient", start_hour=14.5),
        channel=Channel(mode="csi"),
        trial=TrialConfig(repeats=5, payload_bits=30, packets_per_bit=8.0),
        envelope=Envelope(ber_max=0.08, latency_max_s=LATENCY_BOUND_S),
        seed=1450,
    ))
    scenarios.append(Scenario(
        name="ambient_office_morning",
        description="Fig 15: ambient-only uplink on the 09:00 ramp",
        tags=("ambient", "traffic"),
        geometry=Geometry(tag_to_reader_m=0.3),
        traffic=Traffic(regime="ambient", start_hour=9.0),
        channel=Channel(mode="csi"),
        trial=TrialConfig(repeats=5, payload_bits=30, packets_per_bit=8.0),
        envelope=Envelope(ber_max=0.08, latency_max_s=LATENCY_BOUND_S),
        seed=900,
    ))
    scenarios.append(Scenario(
        name="ambient_office_night",
        description="ambient-only uplink on the overnight floor "
                    "(rate adaptation must ride ~100 pkts/s)",
        tags=("ambient", "traffic"),
        geometry=Geometry(tag_to_reader_m=0.3),
        traffic=Traffic(regime="ambient", start_hour=23.0),
        channel=Channel(mode="csi"),
        trial=TrialConfig(repeats=4, payload_bits=24, packets_per_bit=8.0),
        envelope=Envelope(ber_max=0.10, latency_max_s=LATENCY_BOUND_S),
        seed=2300,
    ))
    scenarios.append(Scenario(
        name="beacon_only_030cm",
        description="Fig 16: AP beacons (TBTT 102.4 ms) are the only "
                    "helper packets",
        tags=("beacon", "traffic"),
        geometry=Geometry(tag_to_reader_m=0.3),
        traffic=Traffic(regime="beacon_only"),
        channel=Channel(mode="csi"),
        trial=TrialConfig(repeats=3, payload_bits=16, packets_per_bit=2.0),
        envelope=Envelope(ber_max=0.15, latency_max_s=LATENCY_BOUND_S),
        seed=16,
    ))
    scenarios.append(Scenario(
        name="cts_reserved_045cm",
        description="§4.1: helper slots inside CTS_to_SELF reservations",
        tags=("cts", "traffic"),
        geometry=Geometry(tag_to_reader_m=0.45),
        traffic=Traffic(regime="cts", rate_pps=1500.0),
        channel=Channel(mode="csi"),
        trial=TrialConfig(repeats=5, payload_bits=30, packets_per_bit=10.0),
        envelope=Envelope(ber_max=0.06, latency_max_s=LATENCY_BOUND_S),
        seed=41,
    ))
    scenarios.append(Scenario(
        name="bursty_office_030cm",
        description="§3.2: Pareto-bursty shared-medium traffic",
        tags=("bursty", "traffic"),
        geometry=Geometry(tag_to_reader_m=0.3),
        traffic=Traffic(regime="bursty", rate_pps=1500.0),
        channel=Channel(mode="csi"),
        trial=TrialConfig(repeats=5, payload_bits=30, packets_per_bit=10.0),
        envelope=Envelope(ber_max=0.20, latency_max_s=LATENCY_BOUND_S),
        seed=32,
    ))
    scenarios.append(Scenario(
        name="poisson_mid_045cm",
        description="memoryless ambient-like arrivals at mid range",
        tags=("traffic",),
        geometry=Geometry(tag_to_reader_m=0.45),
        traffic=Traffic(regime="poisson", rate_pps=1200.0),
        channel=Channel(mode="csi"),
        trial=TrialConfig(repeats=5, payload_bits=30, packets_per_bit=10.0),
        envelope=Envelope(ber_max=0.10, latency_max_s=LATENCY_BOUND_S),
        seed=45,
    ))

    # -- mobility -------------------------------------------------------------
    scenarios.append(Scenario(
        name="mobility_walk_away",
        description="tag walks 0.15 m -> 0.60 m across the range curve",
        tags=("mobility",),
        geometry=Geometry(
            tag_to_reader_m=0.15,
            mobility=Mobility(kind="linear", end_m=0.60),
        ),
        traffic=Traffic(regime="injected_cbr", rate_pps=2000.0),
        channel=Channel(mode="csi"),
        trial=TrialConfig(repeats=6, payload_bits=30, packets_per_bit=10.0),
        envelope=Envelope(ber_max=0.12, latency_max_s=LATENCY_BOUND_S),
        seed=1560,
    ))
    scenarios.append(Scenario(
        name="mobility_jitter_030cm",
        description="hand-held jitter: random walk around 0.30 m",
        tags=("mobility",),
        geometry=Geometry(
            tag_to_reader_m=0.30,
            mobility=Mobility(kind="random_walk", step_std_m=0.04),
        ),
        traffic=Traffic(regime="injected_cbr", rate_pps=2000.0),
        channel=Channel(mode="csi"),
        trial=TrialConfig(repeats=6, payload_bits=30, packets_per_bit=10.0),
        envelope=Envelope(ber_max=0.08, latency_max_s=LATENCY_BOUND_S),
        seed=3030,
    ))

    # -- fault plans (chaos rides the corpus too) ----------------------------
    scenarios.append(_uplink(
        "fault_outage_030cm",
        "helper outage bursts over the near CSI point",
        0.30, ber_max=0.60, tags=("faults",),
        faults="outage:duty=0.2,burst=0.3", repeats=5, seed=5001,
    ))
    scenarios.append(_uplink(
        "fault_csi_dropout_030cm",
        "partial sub-channel dropout (antenna shadowing)",
        0.30, ber_max=0.35, tags=("faults",),
        faults="csi_dropout:duty=0.25,burst=0.2,frac=0.5",
        repeats=5, seed=5002,
    ))
    scenarios.append(_uplink(
        "fault_interference_045cm",
        "co-channel interference bursts at mid range",
        0.45, ber_max=0.40, tags=("faults",),
        faults="interference:duty=0.2,burst=0.1,noise=0.8",
        repeats=5, seed=5003,
    ))
    scenarios.append(_uplink(
        "fault_nan_drift_030cm",
        "NaN corruption + reader clock drift, combined",
        0.30, ber_max=0.35, tags=("faults",),
        faults="nan:prob=0.01;drift:ppm=60,jitter=1e-4",
        repeats=5, seed=5004,
    ))
    scenarios.append(_uplink(
        "fault_brownout_030cm",
        "tag brownouts: harvested-energy dropouts mid-frame",
        0.30, ber_max=0.70, tags=("faults",),
        faults="brownout:duty=0.15,burst=0.2", repeats=5, seed=5005,
    ))

    # -- serving resilience (streaming gateway, repro.serve) -----------------
    # Physics: 1600 pps helper / 16 pkts-per-bit = 100 bps uplink; a
    # 16-bit payload then occupies 0.16 s of decode airtime, i.e. a
    # 6.25 req/s gateway capacity.
    scenarios.append(Scenario(
        name="serve_overload_2x",
        description="gateway at 2x capacity: bounded queue must shed "
                    "by priority and recover after the burst",
        tags=("serve", "overload"),
        geometry=Geometry(tag_to_reader_m=0.3),
        traffic=Traffic(regime="injected_cbr", rate_pps=1600.0),
        channel=Channel(mode="csi"),
        trial=TrialConfig(repeats=1, payload_bits=16, packets_per_bit=16.0),
        serve=Serve(
            duration_s=12.0, offered_load_rps=4.0, burst_load_rps=12.5,
            burst_start_s=2.0, burst_end_s=6.0, deadline_ms=3000.0,
            queue_capacity=12, batch=4,
        ),
        envelope=Envelope(ber_max=0.05, latency_max_s=LATENCY_BOUND_S),
        seed=7001,
    ))
    scenarios.append(Scenario(
        name="serve_worker_crash",
        description="steady load with crashing + stalling decode "
                    "workers: supervision retries, nothing lost",
        tags=("serve", "faults"),
        geometry=Geometry(tag_to_reader_m=0.3),
        traffic=Traffic(regime="injected_cbr", rate_pps=1600.0),
        channel=Channel(mode="csi"),
        trial=TrialConfig(repeats=1, payload_bits=16, packets_per_bit=16.0),
        serve=Serve(
            duration_s=12.0, offered_load_rps=4.0, deadline_ms=4000.0,
            queue_capacity=16, batch=4, max_attempts=3,
        ),
        faults="worker_crash:prob=0.08;worker_stall:prob=0.05,stall=1.0",
        envelope=Envelope(ber_max=0.05, latency_max_s=LATENCY_BOUND_S),
        seed=7002,
    ))
    scenarios.append(Scenario(
        name="serve_fleet_outlier",
        description="64-tag fleet with one sabotaged tag at hostile "
                    "range: the health registry must surface it in the "
                    "offender boards and flag an anomaly",
        tags=("serve", "fleet"),
        geometry=Geometry(tag_to_reader_m=0.3),
        traffic=Traffic(regime="injected_cbr", rate_pps=1600.0),
        channel=Channel(mode="csi"),
        # 1600 pps / 8 pkts-per-bit = 200 bps; 8-bit payloads make a
        # 25 req/s gateway, so 20 rps offered keeps decodes (not
        # sheds) the dominant outcome the fleet view folds.
        trial=TrialConfig(repeats=1, payload_bits=8, packets_per_bit=8.0),
        serve=Serve(
            duration_s=12.0, offered_load_rps=20.0, deadline_ms=2500.0,
            queue_capacity=24, batch=4, n_tags=64, fleet_capacity=16,
            outlier_tags=(7,), outlier_distance_m=2.4,
        ),
        envelope=Envelope(ber_max=0.25, latency_max_s=LATENCY_BOUND_S),
        seed=7004,
    ))
    scenarios.append(Scenario(
        name="serve_office_diurnal",
        description="gateway riding the Fig 15 office diurnal arrival "
                    "shape at the afternoon peak",
        tags=("serve", "ambient"),
        geometry=Geometry(tag_to_reader_m=0.3),
        traffic=Traffic(regime="ambient", start_hour=14.5),
        channel=Channel(mode="csi"),
        trial=TrialConfig(repeats=1, payload_bits=16, packets_per_bit=11.0),
        serve=Serve(
            duration_s=10.0, offered_load_rps=3.0, deadline_ms=4000.0,
            queue_capacity=16, batch=4, arrival_profile="office",
        ),
        envelope=Envelope(ber_max=0.05, latency_max_s=LATENCY_BOUND_S),
        seed=7003,
    ))

    return scenarios
