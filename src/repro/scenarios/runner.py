"""Execute declarative scenarios through the simulation drivers.

:func:`run_scenario` maps a :class:`~repro.scenarios.schema.Scenario`
onto the existing :mod:`repro.sim.link` drivers — which already fan
trials over the parallel engine (:mod:`repro.sim.engine`), so
``workers=N`` is bit-identical to serial — and evaluates the result
against the scenario's expected envelope under a scoped observability
session with the decode flight recorder on.  The result carries:

* the headline metrics (BER, goodput, per-trial wall latency),
* per-bound envelope verdicts,
* the forensics attribution summary (dominant root-cause label),
* fired SLO alerts (when the scenario declares rules),
* optionally a written per-scenario run manifest.

``trial_scale`` shrinks Monte-Carlo spend uniformly (CI smoke vs the
nightly soak) without touching scenario definitions; the scale is
recorded so cross-run history never compares quick runs to full ones.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.errors import ScenarioError
from repro.obs import state
from repro.scenarios.schema import Scenario

#: Metric the runner reports -> (envelope op meaning) — see Envelope.
HEADLINE_METRICS = ("ber", "throughput_bps", "latency_s")


@dataclass
class EnvelopeVerdict:
    """One expected-envelope bound checked against the measured value."""

    metric: str
    op: str
    bound: float
    measured: float
    ok: bool

    def to_dict(self) -> Dict[str, Any]:
        return {
            "metric": self.metric, "op": self.op, "bound": self.bound,
            "measured": self.measured, "ok": self.ok,
        }


@dataclass
class ScenarioResult:
    """Everything one scenario execution produced."""

    name: str
    metrics: Dict[str, float]
    envelope: List[EnvelopeVerdict] = field(default_factory=list)
    passed: bool = True
    attribution: Dict[str, Any] = field(default_factory=dict)
    dominant_label: Optional[str] = None
    alerts: List[Dict[str, Any]] = field(default_factory=list)
    seed: int = 0
    trial_scale: float = 1.0
    derived: Dict[str, Any] = field(default_factory=dict)
    manifest_path: Optional[str] = None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "metrics": dict(self.metrics),
            "envelope": [v.to_dict() for v in self.envelope],
            "passed": self.passed,
            "attribution": dict(self.attribution),
            "dominant_label": self.dominant_label,
            "alerts": list(self.alerts),
            "seed": self.seed,
            "trial_scale": self.trial_scale,
            "derived": dict(self.derived),
            "manifest_path": self.manifest_path,
        }


def _scaled(value: int, scale: float, floor: int) -> int:
    return max(floor, int(round(value * scale)))


def _dominant_label(summary: Dict[str, Any]) -> Optional[str]:
    frames = summary.get("frames_by_label") or {}
    if not frames:
        return None
    return max(sorted(frames), key=lambda k: frames[k])


def _execute(
    scenario: Scenario, seed: int, workers: int, scale: float
) -> Dict[str, float]:
    """Dispatch on channel mode; returns the headline metrics."""
    from repro.faults import parse_fault_spec

    trial = scenario.trial
    repeats = _scaled(trial.repeats, scale, 1)
    payload_bits = _scaled(trial.payload_bits, scale, 8)
    faults = (
        parse_fault_spec(scenario.faults, base_seed=seed)
        if scenario.faults else None
    )
    rate_pps = scenario.traffic.effective_rate_pps()
    arrival = scenario.traffic.arrival_kind()
    mode = scenario.channel.mode

    if scenario.serve is not None:
        return _execute_serve(
            scenario, seed, workers, scale, faults, rate_pps,
            payload_bits,
        )

    t0 = time.perf_counter()
    if mode in ("csi", "rssi"):
        from repro.sim.link import run_mobility_uplink_ber, run_uplink_ber

        bit_rate = rate_pps / trial.packets_per_bit
        mobility = scenario.geometry.mobility
        if mobility is not None and mobility.kind != "static":
            distances = mobility.distances(
                scenario.geometry.tag_to_reader_m, repeats, seed
            )
            result = run_mobility_uplink_ber(
                distances,
                trial.packets_per_bit,
                mode=mode,
                num_payload_bits=payload_bits,
                bit_rate_bps=bit_rate,
                traffic=arrival,
                seed=seed,
                faults=faults,
                workers=workers,
                helper_to_tag_m=scenario.geometry.helper_to_tag_m,
            )
        else:
            result = run_uplink_ber(
                scenario.geometry.tag_to_reader_m,
                trial.packets_per_bit,
                mode=mode,
                repeats=repeats,
                num_payload_bits=payload_bits,
                bit_rate_bps=bit_rate,
                traffic=arrival,
                seed=seed,
                faults=faults,
                workers=workers,
                helper_to_tag_m=scenario.geometry.helper_to_tag_m,
            )
        ber = result.errors / result.total_bits if result.total_bits else 0.0
        goodput = bit_rate * (1.0 - ber)
        errors, total = result.errors, result.total_bits
    elif mode == "coded":
        from repro.sim.link import run_correlation_trial

        length = scenario.channel.code_length
        chip_rate = 100.0
        errors = total = 0
        for i in range(repeats):
            outcome = run_correlation_trial(
                scenario.geometry.tag_to_reader_m,
                length,
                num_bits=payload_bits,
                packets_per_chip=trial.packets_per_bit,
                chip_rate_cps=chip_rate,
                seed=seed + i,
                faults=faults,
                workers=workers,
            )
            errors += outcome.errors
            total += payload_bits
        ber = errors / total if total else 0.0
        bit_rate = chip_rate / length
        goodput = bit_rate * (1.0 - ber)
    elif mode == "downlink":
        from repro.core.downlink_encoder import bit_duration_for_rate
        from repro.sim.link import run_downlink_ber

        num_bits = _scaled(trial.downlink_bits, scale, 1000)
        bit_rate = scenario.channel.downlink_rate_bps
        result = run_downlink_ber(
            scenario.geometry.tag_to_reader_m,
            bit_duration_for_rate(bit_rate),
            num_bits=num_bits,
            seed=seed,
            faults=faults,
            workers=workers,
        )
        ber = result.errors / result.total_bits if result.total_bits else 0.0
        goodput = bit_rate * (1.0 - ber)
        errors, total = result.errors, result.total_bits
    else:  # pragma: no cover - schema validation forbids this
        raise ScenarioError(
            f"unsupported channel mode {mode!r}", field="channel.mode"
        )
    wall_s = time.perf_counter() - t0
    return {
        "ber": float(ber),
        "throughput_bps": float(goodput),
        "latency_s": wall_s / max(repeats, 1),
        "wall_s": wall_s,
        "errors": float(errors),
        "total_bits": float(total),
        "bit_rate_bps": float(bit_rate),
        "rate_pps": float(rate_pps),
        "repeats": float(repeats),
    }


def _execute_serve(
    scenario: Scenario,
    seed: int,
    workers: int,
    scale: float,
    faults,
    rate_pps: float,
    payload_bits: int,
) -> Dict[str, float]:
    """Drive the scenario through the streaming decode gateway.

    ``trial_scale`` shrinks the serving spell (duration and burst
    window together) rather than the per-request decode, so a quick
    soak still exercises admission, shedding, and recovery.
    """
    from repro.serve import ServeConfig, run_serve

    serve = scenario.serve
    bit_rate = rate_pps / scenario.trial.packets_per_bit
    duration = max(2.0, serve.duration_s * scale)
    time_scale = duration / serve.duration_s
    effective_workers = serve.workers or (workers if workers > 1 else 0)
    config = ServeConfig(
        duration_s=duration,
        offered_load_rps=serve.offered_load_rps,
        burst_load_rps=serve.burst_load_rps,
        burst_start_s=serve.burst_start_s * time_scale,
        burst_end_s=serve.burst_end_s * time_scale,
        deadline_ms=serve.deadline_ms,
        queue_capacity=serve.queue_capacity,
        batch=serve.batch,
        workers=effective_workers,
        max_attempts=serve.max_attempts,
        arrival_profile=serve.arrival_profile,
        payload_bits=payload_bits,
        packets_per_bit=scenario.trial.packets_per_bit,
        mode=scenario.channel.mode,
        bit_rate_bps=bit_rate,
        tag_to_reader_m=scenario.geometry.tag_to_reader_m,
        helper_to_tag_m=scenario.geometry.helper_to_tag_m,
        office_hour=scenario.traffic.start_hour,
        n_tags=serve.n_tags,
        fleet_capacity=serve.fleet_capacity,
        outlier_tags=serve.outlier_tags,
        outlier_distance_m=serve.outlier_distance_m,
    )
    t0 = time.perf_counter()
    report = run_serve(config, faults=faults, seed=seed).report
    wall_s = time.perf_counter() - t0
    span = max(report.duration_virtual_s, 1e-9)
    goodput = report.delivered_bits * (1.0 - report.ber) / span
    metrics = {
        "ber": float(report.ber),
        "throughput_bps": float(goodput),
        "latency_s": float(report.latency_mean_s),
        "wall_s": float(wall_s),
        "errors": float(report.error_bits),
        "total_bits": float(report.delivered_bits),
        "bit_rate_bps": float(bit_rate),
        "rate_pps": float(rate_pps),
        "repeats": float(report.arrivals),
        "arrivals": float(report.arrivals),
        "delivered": float(report.delivered),
        "shed_fraction": float(report.shed_fraction),
        "deadline_abandoned": float(report.deadline_abandoned),
        "worker_lost": float(report.worker_lost),
        "queue_depth_max": float(report.queue_depth_max),
        "latency_p99_s": float(report.latency_p99_s),
        "recovered": 1.0 if report.recovered else 0.0,
        "burn_alerts_fired": float(sum(
            1 for a in report.burn_alerts if a.get("kind") == "fired"
        )),
        "breaker_preempted": float(report.breaker_preempted),
    }
    if report.budget_remaining is not None:
        metrics["budget_remaining"] = float(report.budget_remaining)
    if report.recovery_s is not None:
        metrics["recovery_s"] = float(report.recovery_s)
    fleet = report.fleet or {}
    if fleet.get("outcomes"):
        metrics["fleet_anomaly_transitions"] = float(
            fleet.get("transitions_total", 0)
        )
        conserved = (
            fleet.get("tags_seen")
            == fleet.get("tracked", 0) + fleet.get("evictions", 0)
        )
        metrics["fleet_conservation"] = 1.0 if conserved else 0.0
    return metrics


def run_scenario(
    scenario: Scenario,
    seed: int = 0,
    workers: int = 1,
    trial_scale: float = 1.0,
    record: bool = True,
    manifest_dir: Optional[str] = None,
) -> ScenarioResult:
    """Run one scenario and evaluate it against its envelope.

    Args:
        seed: soak-run base seed; combined with the scenario's own
            ``seed`` offset so scenarios are decorrelated but a rerun
            with the same base seed reproduces every trial.
        workers: parallel engine fan-out (bit-identical to serial).
        trial_scale: uniform Monte-Carlo scale (1.0 = as declared).
        record: enable the decode flight recorder for attribution.
        manifest_dir: when set, write a per-scenario run manifest
            (``scenario_<name>.json``) under this directory.
    """
    if trial_scale <= 0:
        raise ScenarioError("trial_scale must be positive",
                            field="trial_scale")
    effective_seed = int(seed) + int(scenario.seed)
    alerts: List[Dict[str, Any]] = []
    attribution: Dict[str, Any] = {}
    manifest_path: Optional[str] = None
    with state.session(
        metrics=True, tracing=False, profiling=False, recording=record,
    ):
        metrics = _execute(scenario, effective_seed, workers, trial_scale)
        if scenario.slo:
            from repro.obs.perf.slo import SloEngine

            engine = SloEngine.from_spec(scenario.slo)
            alerts = [
                a.to_dict()
                for a in engine.evaluate(context={"scenario": scenario.name})
            ]
        if record:
            from repro.obs.forensics import summarize

            summary = summarize(state.get_recorder().records)
            summary.pop("margins", None)
            summary.pop("worst", None)
            attribution = summary
        if manifest_dir is not None:
            import os

            from repro.obs.manifest import build_manifest

            manifest = build_manifest(
                f"scenario_{scenario.name}",
                seed=effective_seed,
                config=scenario.to_dict(),
                results=dict(metrics),
                extra={"alerts": alerts} if alerts else None,
            )
            manifest_path = manifest.write(os.path.join(
                manifest_dir, f"scenario_{scenario.name}.json"
            ))

    verdicts = [
        EnvelopeVerdict(
            metric=metric, op=op, bound=bound,
            measured=metrics.get(metric, float("nan")),
            ok=(
                metrics.get(metric, float("inf")) <= bound if op == "<="
                else metrics.get(metric, float("-inf")) >= bound
            ),
        )
        for metric, op, bound in scenario.envelope.bounds()
    ]
    passed = all(v.ok for v in verdicts) and not alerts
    return ScenarioResult(
        name=scenario.name,
        metrics=metrics,
        envelope=verdicts,
        passed=passed,
        attribution=attribution,
        dominant_label=_dominant_label(attribution),
        alerts=alerts,
        seed=effective_seed,
        trial_scale=trial_scale,
        derived={
            "mode": scenario.channel.mode,
            "regime": scenario.traffic.regime,
            "tag_to_reader_m": scenario.geometry.tag_to_reader_m,
            "faults": scenario.faults,
            "tags": list(scenario.tags),
        },
        manifest_path=manifest_path,
    )
