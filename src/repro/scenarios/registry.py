"""Scenario registry: the corpus as an enumerable, filterable asset.

A registry maps unique scenario names to :class:`Scenario` instances.
:func:`builtin_registry` loads the built-in corpus
(:mod:`repro.scenarios.corpus`); :meth:`ScenarioRegistry.load_file`
merges user-defined scenarios from JSON, so a deployment can grow its
own corpus next to the built-in one.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence

from repro.errors import ScenarioError
from repro.scenarios.schema import Scenario, scenarios_from_json


class ScenarioRegistry:
    """Named, ordered collection of scenarios."""

    def __init__(self, scenarios: Sequence[Scenario] = ()) -> None:
        self._scenarios: Dict[str, Scenario] = {}
        for scenario in scenarios:
            self.register(scenario)

    def register(self, scenario: Scenario) -> None:
        if scenario.name in self._scenarios:
            raise ScenarioError(
                f"duplicate scenario name {scenario.name!r}", field="name"
            )
        self._scenarios[scenario.name] = scenario

    def load_file(self, path: str) -> List[Scenario]:
        """Merge scenarios from a JSON file; returns the new entries."""
        try:
            with open(path, "r", encoding="utf-8") as fh:
                text = fh.read()
        except OSError as exc:
            raise ScenarioError(f"cannot read {path}: {exc}") from None
        loaded = scenarios_from_json(text)
        for scenario in loaded:
            self.register(scenario)
        return loaded

    def get(self, name: str) -> Scenario:
        try:
            return self._scenarios[name]
        except KeyError:
            raise ScenarioError(
                f"unknown scenario {name!r}; known: {self.names()}",
                field="name",
            ) from None

    def names(self) -> List[str]:
        return list(self._scenarios)

    def select(
        self,
        names: Optional[Sequence[str]] = None,
        tag: Optional[str] = None,
    ) -> List[Scenario]:
        """Scenarios filtered by explicit names and/or a tag."""
        if names:
            picked = [self.get(n) for n in names]
        else:
            picked = list(self._scenarios.values())
        if tag is not None:
            picked = [s for s in picked if tag in s.tags]
        return picked

    def __len__(self) -> int:
        return len(self._scenarios)

    def __iter__(self) -> Iterator[Scenario]:
        return iter(self._scenarios.values())

    def __contains__(self, name: object) -> bool:
        return name in self._scenarios


def builtin_registry() -> ScenarioRegistry:
    """A fresh registry holding the built-in corpus."""
    from repro.scenarios.corpus import builtin_scenarios

    return ScenarioRegistry(builtin_scenarios())
