"""Tag antenna model: patch array RCS modulation + harvesting aperture.

The prototype antenna (paper Fig 9) is "an array of six small
micro-strip patch elements, each with dimensions 40.6 by 30.9 mm",
each connected to an RF switch and a rectifier. What matters to the
system is:

* the **differential radar cross-section**: "the contrast between the
  radar cross-section when the tag is reflecting versus not reflecting
  will determine the impact of the tag on a nearby Wi-Fi receiver"
  (§3.1) — exposed as the amplitude coupling used by the backscatter
  channel;
* the **effective aperture** for energy harvesting, feeding the
  harvester's power budget.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro import units
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class PatchArrayAntenna:
    """The prototype's six-element micro-strip patch array.

    Attributes:
        num_elements: patch count (prototype: 6).
        element_gain_dbi: per-patch gain (a 2.4 GHz patch is ~6 dBi).
        switch_isolation_db: RF switch on/off isolation (ADG902 class).
        center_frequency_hz: design frequency.
    """

    num_elements: int = 6
    element_gain_dbi: float = 6.0
    switch_isolation_db: float = 17.0
    center_frequency_hz: float = 2.437e9

    def __post_init__(self) -> None:
        if self.num_elements < 1:
            raise ConfigurationError("num_elements must be >= 1")
        if self.switch_isolation_db <= 0:
            raise ConfigurationError("switch_isolation_db must be positive")

    @property
    def array_gain_dbi(self) -> float:
        """Broadside array gain: element gain + 10 log10(N)."""
        return self.element_gain_dbi + 10.0 * math.log10(self.num_elements)

    @property
    def effective_aperture_m2(self) -> float:
        """Effective aperture A_e = G * lambda^2 / (4 pi)."""
        lam = units.wavelength(self.center_frequency_hz)
        gain = units.db_to_linear(self.array_gain_dbi)
        return gain * lam**2 / (4.0 * math.pi)

    @property
    def differential_coupling(self) -> float:
        """Amplitude coupling ``kappa`` of the reflect/absorb contrast.

        The re-radiated amplitude in the reflecting state scales with
        the array gain; the absorbing state suppresses it by the switch
        isolation. The coupling is the amplitude *difference* between
        states, normalized to the free-space re-radiation reference
        used by :class:`repro.phy.BackscatterChannel` (which applies
        path loss separately).
        """
        gain = units.db_to_linear(self.array_gain_dbi)
        isolation = units.db_to_linear(-self.switch_isolation_db)
        # Backscatter is a two-way antenna interaction (receive, then
        # re-radiate): the amplitude contrast relative to an isotropic
        # scatterer carries the full array gain, reduced by the switch
        # leakage in the absorbing state. The calibrated channel value
        # (repro.sim.calibration, ~14) sits below this ideal figure,
        # the difference being implementation losses of the prototype.
        return gain * (1.0 - math.sqrt(isolation))

    def harvested_power_w(self, incident_power_density_w_m2: float) -> float:
        """RF power collected from a plane wave of the given density.

        Raises:
            ConfigurationError: on negative density.
        """
        if incident_power_density_w_m2 < 0:
            raise ConfigurationError("power density must be >= 0")
        return incident_power_density_w_m2 * self.effective_aperture_m2
