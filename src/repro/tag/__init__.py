"""RF-powered tag substrate: antenna, modulator, receiver, energy.

Models the paper's prototype tag: the six-element patch-array antenna
with switchable radar cross-section, the MSP430-driven uplink
modulator, the ~1 uW peak-detection downlink receiver circuit, the MCU
power-state machine, and the RF energy harvester that makes the whole
device battery-free.
"""

from repro.tag.antenna import PatchArrayAntenna
from repro.tag.harvester import (
    EnergyHarvester,
    MCU_ACTIVE_POWER_W,
    MCU_SLEEP_POWER_W,
    RECEIVER_POWER_W,
    TRANSMIT_POWER_W,
    power_budget_summary,
    rectifier_efficiency,
    tv_power_density_w_m2,
    wifi_power_density_w_m2,
)
from repro.tag.mcu import McuEnergyLedger, McuMode, McuPowerProfile
from repro.tag.modulator import TagModulator, alternating_bits, random_payload
from repro.tag.receiver_circuit import CIRCUIT_POWER_W, ReceiverCircuit
from repro.tag.tag import WiFiBackscatterTag

__all__ = [
    "CIRCUIT_POWER_W",
    "EnergyHarvester",
    "MCU_ACTIVE_POWER_W",
    "MCU_SLEEP_POWER_W",
    "McuEnergyLedger",
    "McuMode",
    "McuPowerProfile",
    "PatchArrayAntenna",
    "RECEIVER_POWER_W",
    "ReceiverCircuit",
    "TRANSMIT_POWER_W",
    "TagModulator",
    "WiFiBackscatterTag",
    "alternating_bits",
    "power_budget_summary",
    "random_payload",
    "rectifier_efficiency",
    "tv_power_density_w_m2",
    "wifi_power_density_w_m2",
]
