"""The tag's analog downlink receiver circuit (paper Fig 8, §4.2).

Four stages, simulated in sampled time:

* **Envelope detector** — removes the 2.4 GHz carrier; modelled as a
  square-law detector (Schottky diode) followed by a first-order RC
  low-pass. Input is the envelope *power* waveform from
  :class:`repro.phy.EnvelopeSynthesizer`.
* **Peak finder** — "captures and holds the peak amplitude of the
  received signal" with a fast-attack diode; the set-threshold
  resistor network lets the held value leak away "over some relatively
  long time interval" so the circuit adapts to changing channels.
* **Set-threshold** — "the output of this peak-detection circuit is
  halved to produce the actual threshold".
* **Comparator** — "outputs a one bit whenever the received signal is
  greater than the threshold value and a zero bit otherwise".

The whole chain draws ~1 uW and is always on; the peak-detection
approach is what makes OFDM's high peak-to-average ratio an asset
rather than a liability.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.errors import ConfigurationError

#: Circuit power draw (always-on analog front end; paper: ~1 uW).
CIRCUIT_POWER_W = 1e-6


@dataclass
class ReceiverCircuit:
    """Sampled-time simulation of the Fig 8 receiver.

    Attributes:
        detector_gain_v_per_w: square-law detector responsivity.
        envelope_attack_tau_s: envelope-detector charge time (the diode
            charges its capacitor quickly on OFDM peaks).
        envelope_decay_tau_s: envelope-detector discharge time — slow
            enough to ride through the troughs between OFDM peaks
            within a packet, fast enough to fall below threshold within
            a 50 us silence slot.
        attack_tau_s: peak-finder charge (attack) time constant.
        leak_tau_s: peak-finder discharge through the set-threshold
            resistor network ("resetting over some relatively long time
            interval").
        threshold_fraction: threshold as a fraction of the held peak
            (0.5 per the paper's halving capacitor divider).
        comparator_noise_v: RMS input-referred comparator noise.
        comparator_floor_v: minimum threshold voltage — the effective
            sensitivity of the passive detector + comparator chain
            (calibrated so 50 us packets at +16 dBm are detectable to
            ~2.2 m, the paper's measured sensitivity).
    """

    detector_gain_v_per_w: float = 2000.0
    envelope_attack_tau_s: float = 1.0e-6
    envelope_decay_tau_s: float = 18e-6
    attack_tau_s: float = 0.2e-6
    leak_tau_s: float = 20e-3
    threshold_fraction: float = 0.5
    comparator_noise_v: float = 0.8e-3
    comparator_floor_v: float = 3.5e-3
    rng: Optional[np.random.Generator] = None

    def __post_init__(self) -> None:
        if self.detector_gain_v_per_w <= 0:
            raise ConfigurationError("detector_gain_v_per_w must be positive")
        for name in (
            "envelope_attack_tau_s",
            "envelope_decay_tau_s",
            "attack_tau_s",
            "leak_tau_s",
        ):
            if getattr(self, name) <= 0:
                raise ConfigurationError(f"{name} must be positive")
        if not 0 < self.threshold_fraction < 1:
            raise ConfigurationError("threshold_fraction must be in (0, 1)")
        if self.comparator_noise_v < 0 or self.comparator_floor_v < 0:
            raise ConfigurationError("noise/floor voltages must be >= 0")
        if self.rng is None:
            self.rng = np.random.default_rng()

    def process(
        self, power_w: np.ndarray, sample_interval_s: float
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Run the circuit over an envelope-power waveform.

        Args:
            power_w: instantaneous received power samples.
            sample_interval_s: sample spacing.

        Returns:
            ``(envelope_v, threshold_v, comparator_out)`` arrays of the
            same length as ``power_w``.
        """
        power = np.asarray(power_w, dtype=float)
        if power.ndim != 1 or power.size == 0:
            raise ConfigurationError("power_w must be a non-empty 1-D array")
        if sample_interval_s <= 0:
            raise ConfigurationError("sample_interval_s must be positive")
        dt = sample_interval_s
        a_env_up = 1.0 - np.exp(-dt / self.envelope_attack_tau_s)
        a_env_down = 1.0 - np.exp(-dt / self.envelope_decay_tau_s)
        a_attack = 1.0 - np.exp(-dt / self.attack_tau_s)
        a_leak = np.exp(-dt / self.leak_tau_s)

        detected = self.detector_gain_v_per_w * power
        env = np.empty_like(detected)
        peak = np.empty_like(detected)
        v_env = 0.0
        v_peak = 0.0
        for i, v_in in enumerate(detected):
            # Diode envelope follower: fast charge, slow discharge.
            if v_in > v_env:
                v_env += a_env_up * (v_in - v_env)
            else:
                v_env += a_env_down * (v_in - v_env)
            if v_env > v_peak:
                v_peak += a_attack * (v_env - v_peak)
            else:
                v_peak *= a_leak
            env[i] = v_env
            peak[i] = v_peak

        threshold = np.maximum(
            self.threshold_fraction * peak, self.comparator_floor_v
        )
        noisy_env = env
        if self.comparator_noise_v > 0:
            noisy_env = env + self.rng.normal(
                scale=self.comparator_noise_v, size=env.shape
            )
        out = (noisy_env > threshold).astype(int)
        return env, threshold, out

    def minimum_detectable_power_w(self) -> float:
        """Envelope power at which the detector output reaches the
        comparator floor — the circuit's raw sensitivity."""
        return self.comparator_floor_v / self.detector_gain_v_per_w
