"""Tag uplink modulator: the RF switch driven by a bit clock (§3.1, §6).

"A hardware timer module of the TI MSP430 microcontroller is used to
generate a bit clock and drives a simple firmware module." The
modulator turns a frame's bits (or their code expansion) into a switch
state as a function of time, including realistic clock skew between
the tag's cheap oscillator and the reader's notion of time.

The modulator only ever toggles at bit boundaries — "the minimum
period with which our tag changes its impedance is larger than the
duration of a Wi-Fi packet" (§3.1) — which the channel/capture layers
rely on (no mid-packet state changes).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.core.coding import OrthogonalCodePair
from repro.core.frames import UplinkFrame
from repro.errors import ConfigurationError

#: Transmit-circuit power draw (paper §6: 0.65 uW).
TRANSMIT_POWER_W = 0.65e-6


@dataclass
class TagModulator:
    """Switch-state schedule for one uplink transmission.

    Attributes:
        bit_duration_s: nominal bit (or chip) duration.
        clock_skew_ppm: tag oscillator error; positive runs slow.
        idle_state: switch state outside a transmission (0 = absorbing,
            matching "the tag modulates ... only when queried").
    """

    bit_duration_s: float = 10e-3
    clock_skew_ppm: float = 0.0
    idle_state: int = 0

    def __post_init__(self) -> None:
        if self.bit_duration_s <= 0:
            raise ConfigurationError("bit_duration_s must be positive")
        if self.idle_state not in (0, 1):
            raise ConfigurationError("idle_state must be 0 or 1")
        self._bits: List[int] = []
        self._start_s: Optional[float] = None

    @property
    def effective_bit_duration_s(self) -> float:
        """Bit duration as produced by the skewed oscillator."""
        return self.bit_duration_s * (1.0 + self.clock_skew_ppm * 1e-6)

    def load_bits(self, bits: Sequence[int], start_time_s: float) -> None:
        """Arm a raw bit sequence starting at ``start_time_s``."""
        for bit in bits:
            if bit not in (0, 1):
                raise ConfigurationError(f"bits must be 0/1, got {bit!r}")
        if not bits:
            raise ConfigurationError("bits must be non-empty")
        self._bits = list(bits)
        self._start_s = start_time_s

    def load_frame(self, frame: UplinkFrame, start_time_s: float) -> List[int]:
        """Arm a full framed transmission; returns the on-air bits."""
        bits = frame.to_bits()
        self.load_bits(bits, start_time_s)
        return bits

    def load_coded_frame(
        self,
        frame: UplinkFrame,
        code_pair: OrthogonalCodePair,
        start_time_s: float,
    ) -> List[int]:
        """Arm a code-expanded transmission for the long-range mode.

        Every frame bit becomes L chips; "the tag still only transmits
        bits (now the bit duration expanded by L) and does not perform
        any decoding operations" (§3.4), so tag power is unchanged.
        Returns the chip sequence as 0/1 switch states.
        """
        chips = code_pair.encode(frame.to_bits())
        states = [1 if c > 0 else 0 for c in chips]
        self.load_bits(states, start_time_s)
        return states

    @property
    def end_time_s(self) -> float:
        """When the armed transmission finishes.

        Raises:
            ConfigurationError: when nothing is armed.
        """
        if self._start_s is None:
            raise ConfigurationError("no transmission armed")
        return self._start_s + len(self._bits) * self.effective_bit_duration_s

    def state(self, time_s: float) -> int:
        """Switch state (0/1) at ``time_s``.

        Before the armed start and after the end the state is
        ``idle_state``. Usable directly as a
        :data:`repro.mac.capture.TagStateFn`.
        """
        if self._start_s is None:
            return self.idle_state
        dur = self.effective_bit_duration_s
        idx = int(np.floor((time_s - self._start_s) / dur))
        if idx < 0 or idx >= len(self._bits):
            return self.idle_state
        return self._bits[idx]

    def energy_used_j(self) -> float:
        """Transmit-circuit energy for the armed transmission."""
        if self._start_s is None:
            return 0.0
        duration = len(self._bits) * self.effective_bit_duration_s
        return TRANSMIT_POWER_W * duration


def alternating_bits(count: int) -> List[int]:
    """The 1,0,1,0,... calibration pattern of the paper's Fig 3."""
    if count < 1:
        raise ConfigurationError("count must be >= 1")
    return [i % 2 ^ 1 for i in range(count)]  # starts with 1


def random_payload(num_bits: int, rng: Optional[np.random.Generator] = None) -> List[int]:
    """Uniform random payload bits (BER experiments)."""
    if num_bits < 1:
        raise ConfigurationError("num_bits must be >= 1")
    rng = rng or np.random.default_rng()
    return [int(b) for b in rng.integers(0, 2, size=num_bits)]
