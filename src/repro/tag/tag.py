"""The assembled Wi-Fi Backscatter tag.

Combines the antenna, uplink modulator, downlink receiver (circuit +
decoder + MCU ledger), and energy harvester into the device the paper
prototypes: a battery-free node that answers reader queries.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.core.coding import OrthogonalCodePair
from repro.core.downlink_decoder import DownlinkDecoder
from repro.core.frames import DownlinkMessage, UplinkFrame, int_to_bits
from repro.core.protocol import Query, decode_query
from repro.errors import ConfigurationError, DecodeError
from repro.tag.antenna import PatchArrayAntenna
from repro.tag.harvester import (
    EnergyHarvester,
    RECEIVER_POWER_W,
    TRANSMIT_POWER_W,
)
from repro.tag.mcu import McuEnergyLedger
from repro.tag.modulator import TagModulator
from repro.tag.receiver_circuit import ReceiverCircuit


@dataclass
class WiFiBackscatterTag:
    """A complete RF-powered tag.

    Attributes:
        address: 16-bit tag address.
        antenna: patch-array model (supplies the channel coupling).
        modulator: uplink switch driver.
        circuit: downlink analog front end.
        harvester: energy store.
        mcu: energy ledger for the microcontroller.
        sensor_value: the value returned to CMD_READ_SENSOR queries
            (in a real deployment this comes from an attached sensor).
    """

    address: int = 0x0001
    antenna: PatchArrayAntenna = field(default_factory=PatchArrayAntenna)
    modulator: TagModulator = field(default_factory=TagModulator)
    circuit: ReceiverCircuit = field(default_factory=ReceiverCircuit)
    harvester: EnergyHarvester = field(default_factory=EnergyHarvester)
    mcu: McuEnergyLedger = field(default_factory=McuEnergyLedger)
    sensor_value: int = 0

    def __post_init__(self) -> None:
        if not 0 <= self.address < (1 << 16):
            raise ConfigurationError("address must fit in 16 bits")
        self.queries_heard: List[Query] = []

    @property
    def coupling(self) -> float:
        """Differential RCS coupling for the backscatter channel."""
        return self.antenna.differential_coupling

    # -- downlink --------------------------------------------------------------

    def receive_downlink(
        self,
        power_w: np.ndarray,
        sample_interval_s: float,
        bit_duration_s: float,
        payload_len: int = 64,
    ) -> DownlinkMessage:
        """Run the full receive path on an envelope-power waveform.

        Circuit -> transition preamble match -> mid-bit sampling ->
        CRC check, with MCU energy accounted.

        Raises:
            DecodeError / CrcError: when the message cannot be
                recovered (the reader will retransmit).
        """
        times = np.arange(len(power_w)) * sample_interval_s
        _, _, comparator = self.circuit.process(power_w, sample_interval_s)
        decoder = DownlinkDecoder(
            bit_duration_s=bit_duration_s, payload_len=payload_len
        )
        # Energy accounting: transitions wake the MCU in preamble mode.
        n_transitions = int(np.count_nonzero(np.diff(comparator)))
        self.mcu.idle(len(power_w) * sample_interval_s)
        self.mcu.transition_event(n_transitions)
        message = decoder.decode(comparator, times)  # may raise
        self.mcu.decode_packet(payload_len + 16)
        return message

    def handle_query(self, message: DownlinkMessage) -> Optional[Query]:
        """Process a decoded query; returns it when addressed to us."""
        query = decode_query(message)
        if query.tag_address != self.address:
            return None
        self.queries_heard.append(query)
        return query

    # -- uplink ----------------------------------------------------------------

    def response_frame(self, query: Query) -> UplinkFrame:
        """Build the response payload for a query.

        CMD_READ_SENSOR returns the 32-bit sensor value; other commands
        echo the tag address (a minimal, CRC-protected presence reply).
        """
        from repro.core.protocol import CMD_READ_SENSOR

        if query.command == CMD_READ_SENSOR:
            payload = int_to_bits(self.sensor_value & 0xFFFFFFFF, 32)
        else:
            payload = int_to_bits(self.address, 16)
        return UplinkFrame(payload_bits=tuple(payload))

    def arm_response(
        self,
        query: Query,
        start_time_s: float,
        code_pair: Optional[OrthogonalCodePair] = None,
    ) -> List[int]:
        """Arm the modulator with the response at the queried bit rate.

        Returns the on-air switch states. Draws transmit energy from
        the harvester.
        """
        frame = self.response_frame(query)
        self.modulator.bit_duration_s = 1.0 / query.rate_bps
        if code_pair is None:
            bits = self.modulator.load_frame(frame, start_time_s)
        else:
            bits = self.modulator.load_coded_frame(frame, code_pair, start_time_s)
        duration = len(bits) * self.modulator.effective_bit_duration_s
        self.harvester.draw(TRANSMIT_POWER_W, duration)
        return bits

    # -- energy ----------------------------------------------------------------

    def continuous_power_w(self) -> float:
        """Always-on draw: receiver circuit + modulator idle + MCU sleep."""
        return RECEIVER_POWER_W + self.mcu.profile.sleep_power_w

    def can_sustain(self, incident_density_w_m2: float) -> bool:
        """Whether harvesting covers the continuous draw."""
        return (
            self.harvester.harvest_rate_w(incident_density_w_m2)
            >= self.continuous_power_w()
        )
