"""MSP430 power-state machine (§4.2 energy-saving modes).

"The microcontroller requires a relatively large amount of power
(several hundred uW) in its active mode. To reduce overall power
consumption, the Wi-Fi Backscatter tag keeps the microcontroller in a
sleep state as much as possible":

* **Preamble detection mode** — the MCU sleeps between comparator
  transitions; each transition briefly wakes it to update the interval
  correlation.
* **Packet decoding mode** — the MCU "wakes up briefly to capture each
  sample, then sleeps until the next bit"; after the known packet
  length it wakes fully for framing/CRC.

This module does the energy accounting for those modes and tracks
false-positive wake-ups (each costs a doomed decode attempt — the
cost quantified by Fig 18).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List

from repro.errors import ConfigurationError
from repro.tag.harvester import MCU_ACTIVE_POWER_W, MCU_SLEEP_POWER_W


class McuMode(enum.Enum):
    """Operating modes of the tag's microcontroller."""

    SLEEP = "sleep"
    PREAMBLE_DETECTION = "preamble_detection"
    PACKET_DECODING = "packet_decoding"


@dataclass(frozen=True)
class McuPowerProfile:
    """Power draws and per-event wake costs.

    Attributes:
        active_power_w: full-active draw.
        sleep_power_w: sleep draw.
        transition_wake_s: active time to process one comparator
            transition in preamble-detection mode.
        sample_wake_s: active time to capture one mid-bit sample.
        decode_active_s: active time for framing + CRC after a packet.
    """

    active_power_w: float = MCU_ACTIVE_POWER_W
    sleep_power_w: float = MCU_SLEEP_POWER_W
    transition_wake_s: float = 5e-6
    sample_wake_s: float = 3e-6
    decode_active_s: float = 250e-6

    def __post_init__(self) -> None:
        if self.active_power_w <= self.sleep_power_w:
            raise ConfigurationError("active power must exceed sleep power")
        for name in ("transition_wake_s", "sample_wake_s", "decode_active_s"):
            if getattr(self, name) < 0:
                raise ConfigurationError(f"{name} must be >= 0")


@dataclass
class McuEnergyLedger:
    """Accumulates MCU energy over a simulated interval.

    Attributes:
        profile: power/timing profile.
        elapsed_s: wall time accounted so far.
        active_s: time spent in active mode.
        wakeups: total wake events.
        false_wakeups: wakes caused by false preamble matches.
    """

    profile: McuPowerProfile = field(default_factory=McuPowerProfile)
    elapsed_s: float = 0.0
    active_s: float = 0.0
    wakeups: int = 0
    false_wakeups: int = 0
    mode: McuMode = McuMode.SLEEP
    _log: List[str] = field(default_factory=list)

    def idle(self, duration_s: float) -> None:
        """Account a fully-asleep interval."""
        if duration_s < 0:
            raise ConfigurationError("duration_s must be >= 0")
        self.elapsed_s += duration_s
        self.mode = McuMode.SLEEP

    def transition_event(self, count: int = 1) -> None:
        """Account ``count`` comparator-transition wakes (preamble mode)."""
        if count < 0:
            raise ConfigurationError("count must be >= 0")
        self.wakeups += count
        self.active_s += count * self.profile.transition_wake_s
        self.mode = McuMode.PREAMBLE_DETECTION

    def decode_packet(self, num_bits: int, false_positive: bool = False) -> None:
        """Account a packet-decoding episode.

        Per-bit mid-sample wakes plus the final full-wake decode. A
        ``false_positive`` episode is the Fig 18 cost: the same energy,
        spent on noise.
        """
        if num_bits < 1:
            raise ConfigurationError("num_bits must be >= 1")
        self.wakeups += num_bits + 1
        self.active_s += (
            num_bits * self.profile.sample_wake_s + self.profile.decode_active_s
        )
        self.mode = McuMode.PACKET_DECODING
        if false_positive:
            self.false_wakeups += 1
            self._log.append(f"false wake after {self.elapsed_s:.3f} s")

    @property
    def sleep_s(self) -> float:
        return max(0.0, self.elapsed_s - self.active_s)

    @property
    def energy_j(self) -> float:
        """Total MCU energy over the accounted interval."""
        return (
            self.active_s * self.profile.active_power_w
            + self.sleep_s * self.profile.sleep_power_w
        )

    @property
    def average_power_w(self) -> float:
        """Mean draw; the number to compare against the harvest rate.

        Raises:
            ConfigurationError: before any time is accounted.
        """
        if self.elapsed_s <= 0:
            raise ConfigurationError("no time accounted yet")
        return self.energy_j / self.elapsed_s

    def false_wake_energy_cost_j(self, num_bits: int) -> float:
        """Energy wasted by one false preamble wake (Fig 18 economics)."""
        return (
            num_bits * self.profile.sample_wake_s
            + self.profile.decode_active_s
        ) * self.profile.active_power_w
