"""RF energy harvesting and the tag's energy budget (§6).

"Our results show that the Wi-Fi power harvester can continuously run
both the transmitter and receiver from a distance of one foot from the
Wi-Fi reader. Additionally, in a dual-antenna system with both Wi-Fi
and TV harvesting, the full system could be powered with a duty cycle
of around 50% at a distance of 10 km from a TV broadcast tower."

The harvester charges a storage capacitor from incident RF (Wi-Fi
and/or TV); loads draw from the capacitor; a duty-cycle controller
reports the sustainable activity fraction.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict

from repro import units
from repro.errors import ConfigurationError, EnergyError
from repro.tag.antenna import PatchArrayAntenna

#: Receiver-circuit draw (paper §6: 9.0 uW).
RECEIVER_POWER_W = 9.0e-6

#: Transmit-circuit draw (paper §6: 0.65 uW).
TRANSMIT_POWER_W = 0.65e-6

#: MSP430 active-mode draw (paper §4.2: "several hundred uW").
MCU_ACTIVE_POWER_W = 300e-6

#: MSP430 sleep (LPM3-class) draw.
MCU_SLEEP_POWER_W = 0.5e-6


def rectifier_efficiency(input_power_w: float) -> float:
    """RF-to-DC conversion efficiency of the Schottky rectifier.

    Efficiency of SMS7630-class detectors rises with input power: a few
    percent at -20 dBm up to ~50% near 0 dBm. Modelled as a smooth
    logistic in log-power.
    """
    if input_power_w < 0:
        raise ConfigurationError("input power must be >= 0")
    if input_power_w == 0:
        return 0.0
    dbm = units.watts_to_dbm(input_power_w)
    # ~7% at -20 dBm, ~23% at -12 dBm, ~46% at 0 dBm — the SMS7630
    # efficiency ladder reported for low-power rectennas.
    return 0.55 / (1.0 + math.exp(-(dbm + 10.0) / 6.0))


def wifi_power_density_w_m2(tx_power_w: float, distance_m: float) -> float:
    """Incident power density of a Wi-Fi transmitter at ``distance_m``."""
    if tx_power_w <= 0:
        raise ConfigurationError("tx_power_w must be positive")
    if distance_m <= 0:
        raise ConfigurationError("distance_m must be positive")
    return tx_power_w / (4.0 * math.pi * distance_m**2)


def tv_power_density_w_m2(erp_w: float = 1e6, distance_m: float = 10_000.0) -> float:
    """Incident power density from a TV broadcast tower.

    Defaults correspond to the paper's 10 km / megawatt-class UHF
    scenario (~0.8 uW/cm^2 order of magnitude at city scale).
    """
    if erp_w <= 0 or distance_m <= 0:
        raise ConfigurationError("erp_w and distance_m must be positive")
    return erp_w / (4.0 * math.pi * distance_m**2)


@dataclass
class EnergyHarvester:
    """Capacitor-backed energy store charged from RF sources.

    Attributes:
        antenna: aperture model for Wi-Fi-band harvesting.
        capacitance_f: storage capacitor.
        max_voltage_v: capacitor rating (energy cap = 1/2 C V^2).
        stored_j: current stored energy.
    """

    antenna: PatchArrayAntenna = field(default_factory=PatchArrayAntenna)
    capacitance_f: float = 100e-6
    max_voltage_v: float = 3.3
    stored_j: float = 0.0

    def __post_init__(self) -> None:
        if self.capacitance_f <= 0:
            raise ConfigurationError("capacitance_f must be positive")
        if self.max_voltage_v <= 0:
            raise ConfigurationError("max_voltage_v must be positive")
        if self.stored_j < 0:
            raise ConfigurationError("stored_j must be >= 0")

    @property
    def capacity_j(self) -> float:
        return 0.5 * self.capacitance_f * self.max_voltage_v**2

    def harvest_rate_w(self, incident_density_w_m2: float) -> float:
        """DC power harvested from a given incident power density."""
        rf = self.antenna.harvested_power_w(incident_density_w_m2)
        return rf * rectifier_efficiency(rf)

    def charge(self, incident_density_w_m2: float, duration_s: float) -> float:
        """Harvest for ``duration_s``; returns energy added (J)."""
        if duration_s < 0:
            raise ConfigurationError("duration_s must be >= 0")
        added = self.harvest_rate_w(incident_density_w_m2) * duration_s
        new_total = min(self.capacity_j, self.stored_j + added)
        added = new_total - self.stored_j
        self.stored_j = new_total
        return added

    def draw(self, power_w: float, duration_s: float) -> None:
        """Consume ``power_w`` for ``duration_s``.

        Raises:
            EnergyError: when the store cannot supply the demand.
        """
        if power_w < 0 or duration_s < 0:
            raise ConfigurationError("power and duration must be >= 0")
        needed = power_w * duration_s
        if needed > self.stored_j + 1e-18:
            raise EnergyError(
                f"demand of {needed:.3e} J exceeds stored {self.stored_j:.3e} J"
            )
        self.stored_j -= needed

    def sustainable_duty_cycle(
        self, harvest_rate_w: float, active_power_w: float,
        sleep_power_w: float = MCU_SLEEP_POWER_W,
    ) -> float:
        """Long-run duty cycle the harvest rate can sustain.

        Solves ``harvest = d * active + (1 - d) * sleep`` for the duty
        cycle ``d``, clamped to [0, 1].
        """
        if active_power_w <= sleep_power_w:
            raise ConfigurationError(
                "active_power_w must exceed sleep_power_w"
            )
        if harvest_rate_w <= sleep_power_w:
            return 0.0
        d = (harvest_rate_w - sleep_power_w) / (active_power_w - sleep_power_w)
        return min(1.0, d)


def power_budget_summary() -> Dict[str, float]:
    """The paper's measured power numbers (W), for documentation/tests."""
    return {
        "transmit_circuit_w": TRANSMIT_POWER_W,
        "receiver_circuit_w": RECEIVER_POWER_W,
        "mcu_active_w": MCU_ACTIVE_POWER_W,
        "mcu_sleep_w": MCU_SLEEP_POWER_W,
    }
