"""Descriptors for the commodity devices used in the paper's testbed.

These capture the capabilities that matter to Wi-Fi Backscatter:
whether a chipset exposes CSI or only RSSI, antenna count, and
transmit power — the difference that makes the CSI pipeline (Intel
5300 reader) outrange the RSSI pipeline (everything else).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import units
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class DeviceProfile:
    """Capability summary of a commodity Wi-Fi device.

    Attributes:
        name: model string.
        num_antennas: receive antenna count.
        provides_csi: whether per-sub-channel CSI is available.
        provides_rssi: whether per-packet RSSI is available.
        csi_for_beacons: whether CSI is reported for beacon frames
            (false on the Intel 5300, §7.5).
        max_tx_power_dbm: maximum transmit power.
    """

    name: str
    num_antennas: int
    provides_csi: bool
    provides_rssi: bool = True
    csi_for_beacons: bool = False
    max_tx_power_dbm: float = 16.0

    def __post_init__(self) -> None:
        if self.num_antennas < 1:
            raise ConfigurationError("num_antennas must be >= 1")
        if not (self.provides_csi or self.provides_rssi):
            raise ConfigurationError(
                "a reader must provide at least one of CSI or RSSI"
            )

    @property
    def max_tx_power_w(self) -> float:
        return units.dbm_to_watts(self.max_tx_power_dbm)


#: The paper's reader/helper card, with the Linux CSI Tool.
INTEL_5300 = DeviceProfile(
    name="Intel Wi-Fi Link 5300",
    num_antennas=3,
    provides_csi=True,
    csi_for_beacons=False,
    max_tx_power_dbm=16.0,
)

#: The paper's Wi-Fi helper AP for the Fig 3 experiment.
LINKSYS_WRT54GL = DeviceProfile(
    name="Linksys WRT54GL",
    num_antennas=2,
    provides_csi=False,
    max_tx_power_dbm=18.0,
)

#: A generic laptop Wi-Fi client (Fig 19 transmitter).
THINKPAD_LAPTOP = DeviceProfile(
    name="Lenovo ThinkPad built-in Wi-Fi",
    num_antennas=2,
    provides_csi=False,
    max_tx_power_dbm=15.0,
)


def reader_capabilities(profile: DeviceProfile) -> str:
    """Human-readable summary of what uplink pipeline a device supports."""
    modes = []
    if profile.provides_csi:
        modes.append("CSI decoding (65 cm class range)")
    if profile.provides_rssi:
        modes.append("RSSI decoding (30 cm class range)")
    return f"{profile.name}: " + ", ".join(modes)
