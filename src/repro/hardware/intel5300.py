"""Intel Wi-Fi Link 5300 CSI measurement model.

The paper's readers are Intel 5300 cards running the Linux CSI Tool
[Halperin et al.], which reports, per received packet, the channel
state for 30 sub-carrier groups on each of 3 receive antennas. Real
reports exhibit several artefacts that the paper's decoder explicitly
works around, all of which are modelled here:

* limited amplitude resolution (quantization),
* per-packet estimation noise,
* AGC scale wander (absolute CSI scale is not meaningful),
* *spurious* correlated jumps "once every so often ... even in a static
  network" (§3.2) — the motivation for hysteresis slicing,
* one chronically weak antenna: "one of the antennas on our Intel
  device almost always reported significantly low CSI values" (§7.1),
* no CSI for beacon frames ("Intel cards do not currently provide CSI
  information for beacon packets", §7.5) — those packets yield
  RSSI-only measurements.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro import units
from repro.errors import ConfigurationError
from repro.hardware.agc import AgcModel
from repro.hardware.rssi import RssiModel
from repro.phy.noise import SpuriousGlitchModel, quantize
from repro.measurement import ChannelMeasurement


@dataclass
class Intel5300:
    """Monitor-mode CSI/RSSI reporter.

    Converts true complex channel matrices (from
    :class:`repro.phy.BackscatterChannel`) into the measurement records
    an experimenter would log with the CSI Tool.

    Attributes:
        csi_noise_rel: std of per-value CSI estimation noise, relative
            to the mean CSI amplitude of the packet.
        csi_quantization_rel: CSI amplitude quantization step, relative
            to the nominal reported level.
        nominal_level: mean reported CSI amplitude after AGC (arbitrary
            card units; Fig 3 of the paper shows values of a few units).
        weak_antenna: index of the chronically weak antenna, or ``None``.
        weak_antenna_gain: amplitude factor applied to the weak antenna.
        glitches: spurious-jump model.
        agc: gain-control model.
        rssi: RSSI reporting model (shared with RSSI-only packets).
        tx_power_w: helper transmit power used for RSSI scaling.
        rng: random source.
    """

    csi_noise_rel: float = 0.035
    csi_quantization_rel: float = 0.01
    nominal_level: float = 8.0
    weak_antenna: Optional[int] = 2
    weak_antenna_gain: float = 0.15
    glitches: Optional[SpuriousGlitchModel] = None
    agc: Optional[AgcModel] = None
    rssi: Optional["RssiModel"] = None
    tx_power_w: float = units.dbm_to_watts(16.0)
    rng: Optional[np.random.Generator] = None

    def __post_init__(self) -> None:
        if self.csi_noise_rel < 0:
            raise ConfigurationError("csi_noise_rel must be >= 0")
        if self.csi_quantization_rel < 0:
            raise ConfigurationError("csi_quantization_rel must be >= 0")
        if self.nominal_level <= 0:
            raise ConfigurationError("nominal_level must be positive")
        if not 0 < self.weak_antenna_gain <= 1.0:
            raise ConfigurationError("weak_antenna_gain must be in (0, 1]")
        if self.rng is None:
            self.rng = np.random.default_rng()
        # Sub-models default onto the card's own random source, so a
        # seeded card is fully deterministic.
        if self.glitches is None:
            self.glitches = SpuriousGlitchModel(rng=self.rng)
        if self.agc is None:
            self.agc = AgcModel(rng=self.rng)
        if self.rssi is None:
            self.rssi = RssiModel(rng=self.rng)
        # Fix the AGC reference on the first packet so the nominal level
        # is stable while relative modulation is preserved.
        self._reference_amplitude: Optional[float] = None

    def measure(
        self,
        true_channel: np.ndarray,
        timestamp_s: float,
        source: str = "helper",
        with_csi: bool = True,
    ) -> ChannelMeasurement:
        """Produce one packet's measurement record.

        Args:
            true_channel: complex channel, shape (antennas, subchannels).
            timestamp_s: packet timestamp for the record.
            source: transmitter label.
            with_csi: ``False`` for frames the card reports RSSI-only
                (e.g. beacons).
        """
        h = np.asarray(true_channel, dtype=complex)
        if h.ndim != 2:
            raise ConfigurationError("true_channel must be 2-D (ant x subch)")
        amplitude = np.abs(h).astype(float)
        if self.weak_antenna is not None and self.weak_antenna < amplitude.shape[0]:
            amplitude = amplitude.copy()
            amplitude[self.weak_antenna] *= self.weak_antenna_gain

        rssi_dbm = self.rssi.measure(amplitude, tx_power_w=self.tx_power_w)

        csi = None
        if with_csi:
            if self._reference_amplitude is None:
                self._reference_amplitude = float(np.abs(h).mean())
            scale = self.nominal_level / self._reference_amplitude
            reported = amplitude * scale * self.agc.next_gain()
            reported = reported * self.glitches.sample_scale()
            noise_std = self.csi_noise_rel * self.nominal_level
            reported = reported + self.rng.normal(
                scale=noise_std, size=reported.shape
            )
            step = self.csi_quantization_rel * self.nominal_level
            reported = quantize(np.maximum(reported, 0.0), step)
            csi = reported

        return ChannelMeasurement(
            timestamp_s=timestamp_s, csi=csi, rssi_dbm=rssi_dbm, source=source
        )

    def measure_batch(
        self,
        true_channels: np.ndarray,
        timestamps_s: np.ndarray,
        source: str = "helper",
        with_csi: bool = True,
    ) -> "list[ChannelMeasurement]":
        """Vectorized :meth:`measure` for many packets.

        Args:
            true_channels: complex channels, shape (n, antennas, subch).
            timestamps_s: packet timestamps, shape (n,).
            source: transmitter label for every record.
            with_csi: whether CSI is reported (False for beacons).
        """
        h = np.asarray(true_channels, dtype=complex)
        times = np.asarray(timestamps_s, dtype=float)
        if h.ndim != 3:
            raise ConfigurationError("true_channels must be 3-D")
        if len(times) != h.shape[0]:
            raise ConfigurationError("timestamps must match channel count")
        n = h.shape[0]
        amplitude = np.abs(h).astype(float)
        if self.weak_antenna is not None and self.weak_antenna < amplitude.shape[1]:
            amplitude[:, self.weak_antenna, :] *= self.weak_antenna_gain

        rssi = self.rssi.measure_batch(amplitude, tx_power_w=self.tx_power_w)

        csi_all = None
        if with_csi:
            if self._reference_amplitude is None:
                self._reference_amplitude = float(np.abs(h[0]).mean())
            scale = self.nominal_level / self._reference_amplitude
            gains = self.agc.next_gains(n) * self.glitches.sample_scales(n)
            reported = amplitude * scale * gains[:, None, None]
            noise_std = self.csi_noise_rel * self.nominal_level
            reported = reported + self.rng.normal(
                scale=noise_std, size=reported.shape
            )
            step = self.csi_quantization_rel * self.nominal_level
            csi_all = quantize(np.maximum(reported, 0.0), step)

        out = []
        for i in range(n):
            out.append(
                ChannelMeasurement(
                    timestamp_s=float(times[i]),
                    csi=csi_all[i] if csi_all is not None else None,
                    rssi_dbm=rssi[i],
                    source=source,
                )
            )
        return out
