"""Commodity Wi-Fi hardware models: CSI/RSSI reporting and artefacts.

Models the measurement side of off-the-shelf devices: the Intel 5300's
30x3 CSI reports with quantization, AGC wander, spurious glitches, and
a weak antenna; coarse 1 dB RSSI on everything else; and device
capability profiles.
"""

from repro.hardware.agc import AgcModel
from repro.hardware.devices import (
    INTEL_5300,
    LINKSYS_WRT54GL,
    THINKPAD_LAPTOP,
    DeviceProfile,
    reader_capabilities,
)
from repro.hardware.intel5300 import Intel5300
from repro.hardware.rssi import RssiModel

__all__ = [
    "AgcModel",
    "DeviceProfile",
    "INTEL_5300",
    "Intel5300",
    "LINKSYS_WRT54GL",
    "RssiModel",
    "THINKPAD_LAPTOP",
    "reader_capabilities",
]
