"""Automatic gain control (AGC) model.

Commodity Wi-Fi front-ends apply a per-packet gain so the ADC sees a
full-scale signal; CSI tools report values in that AGC-scaled domain.
The practical consequence for Wi-Fi Backscatter is that the *absolute*
CSI scale wanders from packet to packet, which is one reason the
paper's decoder normalizes measurements rather than using absolute
amplitudes (§3.2 step 1).

We model AGC as a slowly varying multiplicative gain with small
per-packet quantized steps.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.errors import ConfigurationError


@dataclass
class AgcModel:
    """Per-packet AGC gain sequence.

    Attributes:
        step_db: granularity of the AGC gain steps (real front ends use
            ~0.5-2 dB steps).
        wander_std_db: standard deviation of the slow random walk in the
            target gain between packets.
        rng: random source.
    """

    step_db: float = 0.5
    wander_std_db: float = 0.02
    rng: Optional[np.random.Generator] = None

    def __post_init__(self) -> None:
        if self.step_db < 0:
            raise ConfigurationError("step_db must be >= 0")
        if self.wander_std_db < 0:
            raise ConfigurationError("wander_std_db must be >= 0")
        if self.rng is None:
            self.rng = np.random.default_rng()
        self._target_db = 0.0

    def next_gain(self) -> float:
        """Linear amplitude gain applied to the next packet's CSI."""
        self._target_db += self.rng.normal(scale=self.wander_std_db)
        # Mean-revert so the gain doesn't walk off to infinity.
        self._target_db *= 0.999
        if self.step_db > 0:
            quantized_db = round(self._target_db / self.step_db) * self.step_db
        else:
            quantized_db = self._target_db
        return 10.0 ** (quantized_db / 20.0)

    def next_gains(self, count: int) -> "np.ndarray":
        """Vector of ``count`` successive per-packet gains.

        Equivalent to ``count`` calls of :meth:`next_gain`.
        """
        if count < 0:
            raise ConfigurationError("count must be >= 0")
        steps = self.rng.normal(scale=self.wander_std_db, size=count)
        gains = np.empty(count)
        target = self._target_db
        for i in range(count):
            target = (target + steps[i]) * 0.999
            if self.step_db > 0:
                q = round(target / self.step_db) * self.step_db
            else:
                q = target
            gains[i] = 10.0 ** (q / 20.0)
        self._target_db = target
        return gains
