"""RSSI measurement model for commodity Wi-Fi chipsets.

"Most existing chipsets only provide the RSSI information. RSSI is a
single metric that provides a measure of the cumulative Wi-Fi signal
strength across all the sub-channels" (§3.3). Compared with CSI this
throws away frequency diversity and is reported with coarse (1 dB)
resolution — which is why the paper's RSSI pipeline reaches 30 cm
while the CSI pipeline reaches 65 cm.

MIMO receivers report one RSSI per antenna; the decoder picks the best
antenna by preamble correlation (§3.3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.errors import ConfigurationError


@dataclass
class RssiModel:
    """Per-antenna RSSI reports from a true channel amplitude matrix.

    Attributes:
        quantization_db: reporting granularity (1 dB on most chipsets).
        noise_std_db: per-packet measurement noise before quantization.
        floor_dbm: lowest reportable RSSI (sensitivity floor).
        ceiling_dbm: highest reportable RSSI (saturation).
        rng: random source.
    """

    quantization_db: float = 1.0
    noise_std_db: float = 0.35
    floor_dbm: float = -95.0
    ceiling_dbm: float = -10.0
    rng: Optional[np.random.Generator] = None

    def __post_init__(self) -> None:
        if self.quantization_db < 0:
            raise ConfigurationError("quantization_db must be >= 0")
        if self.noise_std_db < 0:
            raise ConfigurationError("noise_std_db must be >= 0")
        if self.floor_dbm >= self.ceiling_dbm:
            raise ConfigurationError("floor_dbm must be below ceiling_dbm")
        if self.rng is None:
            self.rng = np.random.default_rng()

    def measure(self, amplitude: np.ndarray, tx_power_w: float) -> np.ndarray:
        """Per-antenna RSSI (dBm) for one packet.

        Args:
            amplitude: true channel amplitude matrix, shape
                ``(antennas, subchannels)``.
            tx_power_w: transmit power of the packet's sender.

        Returns:
            Array of shape ``(antennas,)``.
        """
        amp = np.asarray(amplitude, dtype=float)
        if amp.ndim != 2:
            raise ConfigurationError("amplitude must be 2-D (ant x subch)")
        if tx_power_w <= 0:
            raise ConfigurationError("tx_power_w must be positive")
        # Cumulative power across sub-channels, normalized so that a
        # unit-mean-power channel yields the full transmit power.
        mean_gain = (amp**2).mean(axis=1)
        rx_power_w = np.maximum(mean_gain * tx_power_w, 1e-30)
        rssi = 10.0 * np.log10(rx_power_w / 1e-3)
        rssi = rssi + self.rng.normal(scale=self.noise_std_db, size=rssi.shape)
        if self.quantization_db > 0:
            rssi = np.round(rssi / self.quantization_db) * self.quantization_db
        return np.clip(rssi, self.floor_dbm, self.ceiling_dbm)

    def measure_batch(self, amplitudes: np.ndarray, tx_power_w: float) -> np.ndarray:
        """Vectorized RSSI for many packets.

        Args:
            amplitudes: shape ``(n_packets, antennas, subchannels)``.
            tx_power_w: transmit power.

        Returns:
            Array of shape ``(n_packets, antennas)``.
        """
        amp = np.asarray(amplitudes, dtype=float)
        if amp.ndim != 3:
            raise ConfigurationError("amplitudes must be 3-D (pkt x ant x subch)")
        if tx_power_w <= 0:
            raise ConfigurationError("tx_power_w must be positive")
        mean_gain = (amp**2).mean(axis=2)
        rx_power_w = np.maximum(mean_gain * tx_power_w, 1e-30)
        rssi = 10.0 * np.log10(rx_power_w / 1e-3)
        rssi = rssi + self.rng.normal(scale=self.noise_std_db, size=rssi.shape)
        if self.quantization_db > 0:
            rssi = np.round(rssi / self.quantization_db) * self.quantization_db
        return np.clip(rssi, self.floor_dbm, self.ceiling_dbm)
