"""Unit helpers: power (dBm/dB/mW/W), time, and frequency conversions.

All internal computation in the library uses linear SI units (watts,
seconds, hertz, meters). These helpers convert at the boundaries, where
parameters are naturally expressed in engineering units (dBm transmit
power, microsecond packet durations, microwatt circuit budgets).
"""

from __future__ import annotations

import math

#: Speed of light in vacuum (m/s).
SPEED_OF_LIGHT = 299_792_458.0

#: Boltzmann constant (J/K) for thermal-noise computation.
BOLTZMANN = 1.380649e-23

#: Reference temperature (K) used for thermal noise floors.
ROOM_TEMPERATURE_K = 290.0

# -- Power ------------------------------------------------------------------


def dbm_to_watts(dbm: float) -> float:
    """Convert a power level in dBm to watts."""
    return 10.0 ** (dbm / 10.0) * 1e-3


def watts_to_dbm(watts: float) -> float:
    """Convert a power level in watts to dBm.

    Raises:
        ValueError: if ``watts`` is not strictly positive.
    """
    if watts <= 0.0:
        raise ValueError(f"power must be positive to express in dBm, got {watts}")
    return 10.0 * math.log10(watts / 1e-3)


def db_to_linear(db: float) -> float:
    """Convert a power ratio in dB to a linear ratio."""
    return 10.0 ** (db / 10.0)


def linear_to_db(ratio: float) -> float:
    """Convert a linear power ratio to dB.

    Raises:
        ValueError: if ``ratio`` is not strictly positive.
    """
    if ratio <= 0.0:
        raise ValueError(f"ratio must be positive to express in dB, got {ratio}")
    return 10.0 * math.log10(ratio)


def amplitude_db(ratio: float) -> float:
    """Convert a linear *amplitude* ratio to dB (20 log10)."""
    if ratio <= 0.0:
        raise ValueError(f"ratio must be positive to express in dB, got {ratio}")
    return 20.0 * math.log10(ratio)


# -- Time -------------------------------------------------------------------


def us(value: float) -> float:
    """Microseconds to seconds."""
    return value * 1e-6


def ms(value: float) -> float:
    """Milliseconds to seconds."""
    return value * 1e-3


def to_us(seconds: float) -> float:
    """Seconds to microseconds."""
    return seconds * 1e6


def to_ms(seconds: float) -> float:
    """Seconds to milliseconds."""
    return seconds * 1e3


# -- Frequency / wavelength --------------------------------------------------


def wavelength(frequency_hz: float) -> float:
    """Free-space wavelength (m) of a carrier at ``frequency_hz``.

    Raises:
        ValueError: if ``frequency_hz`` is not strictly positive.
    """
    if frequency_hz <= 0.0:
        raise ValueError(f"frequency must be positive, got {frequency_hz}")
    return SPEED_OF_LIGHT / frequency_hz


def thermal_noise_watts(bandwidth_hz: float, noise_figure_db: float = 0.0) -> float:
    """Thermal noise power (W) over ``bandwidth_hz`` at room temperature.

    Args:
        bandwidth_hz: receiver bandwidth in Hz.
        noise_figure_db: receiver noise figure added on top of kTB.
    """
    if bandwidth_hz <= 0.0:
        raise ValueError(f"bandwidth must be positive, got {bandwidth_hz}")
    ktb = BOLTZMANN * ROOM_TEMPERATURE_K * bandwidth_hz
    return ktb * db_to_linear(noise_figure_db)
