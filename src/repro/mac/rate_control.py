"""802.11 bit-rate adaptation (ARF-style).

Fig 19 of the paper shows that normal Wi-Fi throughput is essentially
unaffected by the tag's modulation because "Wi-Fi uses rate adaptation
and can easily adapt for the small variations in the channel quality".
To reproduce that experiment we implement Auto Rate Fallback: step the
rate up after a run of consecutive successes, step down after
consecutive failures.

The per-rate delivery probability itself comes from
:class:`SnrLinkQualityModel`, which maps receiver SNR to frame error
rate using 802.11g sensitivity thresholds.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Optional

from repro.errors import ConfigurationError
from repro.mac.dcf import LinkQualityModel
from repro.mac.packets import FrameKind, WifiFrame
from repro.phy import constants

#: Approximate SNR (dB) required for ~1e-1 FER at each 802.11g rate
#: for ~1000-byte frames (textbook OFDM sensitivity ladder).
RATE_SNR_REQUIREMENTS_DB = {
    6e6: 4.0,
    9e6: 5.5,
    12e6: 7.0,
    18e6: 9.5,
    24e6: 12.5,
    36e6: 16.5,
    48e6: 20.5,
    54e6: 22.0,
}


class RateController:
    """ARF rate adaptation state machine.

    Attributes:
        up_threshold: consecutive successes needed to move up a rate.
        down_threshold: consecutive failures needed to move down.
    """

    def __init__(self, up_threshold: int = 10, down_threshold: int = 2,
                 initial_rate_bps: float = 54e6) -> None:
        if initial_rate_bps not in constants.OFDM_RATES_BPS:
            raise ConfigurationError(f"unknown OFDM rate {initial_rate_bps}")
        if up_threshold < 1 or down_threshold < 1:
            raise ConfigurationError("thresholds must be >= 1")
        self.up_threshold = up_threshold
        self.down_threshold = down_threshold
        self._rates = sorted(constants.OFDM_RATES_BPS)
        self._index = self._rates.index(initial_rate_bps)
        self._successes = 0
        self._failures = 0

    @property
    def current_rate_bps(self) -> float:
        return self._rates[self._index]

    def record(self, success: bool) -> None:
        """Feed one transmission outcome into the controller."""
        if success:
            self._successes += 1
            self._failures = 0
            if (
                self._successes >= self.up_threshold
                and self._index < len(self._rates) - 1
            ):
                self._index += 1
                self._successes = 0
        else:
            self._failures += 1
            self._successes = 0
            if self._failures >= self.down_threshold:
                if self._index > 0:
                    self._index -= 1
                self._failures = 0


@dataclass
class SnrLinkQualityModel(LinkQualityModel):
    """Delivery probability from receiver SNR vs per-rate requirements.

    The frame error rate follows a logistic curve around the rate's SNR
    requirement. A time-varying ``snr_perturbation_db`` callable models
    the small channel-quality wiggle the backscatter tag introduces
    (Fig 19 stress test).

    Attributes:
        snr_db: nominal link SNR.
        transition_width_db: softness of the FER-vs-SNR curve.
        snr_perturbation_db: optional function of time returning an SNR
            offset (dB), e.g. the tag's modulation.
        rng: random source (unused here but kept for interface parity).
    """

    snr_db: float = 25.0
    transition_width_db: float = 1.5
    snr_perturbation_db: Optional[Callable[[float], float]] = None

    def delivery_probability(self, frame: WifiFrame, time_s: float) -> float:
        if frame.kind is not FrameKind.DATA:
            return 1.0  # control frames at basic rate are robust
        required = RATE_SNR_REQUIREMENTS_DB.get(frame.rate_bps)
        if required is None:
            raise ConfigurationError(f"unknown OFDM rate {frame.rate_bps}")
        snr = self.snr_db
        if self.snr_perturbation_db is not None:
            snr += self.snr_perturbation_db(time_s)
        margin = snr - required
        # Logistic FER curve: ~0.5 delivery at the requirement point.
        return 1.0 / (1.0 + math.exp(-margin / self.transition_width_db))


def snr_from_distance(distance_m: float, tx_power_dbm: float = 16.0,
                      noise_floor_dbm: float = -94.0,
                      exponent: float = 2.5, num_walls: int = 0,
                      wall_loss_db: float = 5.0) -> float:
    """Receiver SNR (dB) for a link of ``distance_m`` meters.

    A convenience for the Fig 19 location sweep: log-distance path loss
    at channel 6 plus wall penetration, referenced to a -94 dBm noise
    floor.
    """
    from repro.phy.pathloss import LogDistancePathLoss

    freq = constants.channel_center_frequency(constants.DEFAULT_CHANNEL)
    model = LogDistancePathLoss(
        frequency_hz=freq, exponent=exponent, wall_loss_db=wall_loss_db
    )
    rx_dbm = tx_power_dbm - model.path_loss_db(distance_m, num_walls)
    return rx_dbm - noise_floor_dbm
