"""Monitor-mode capture: turning transmissions into channel measurements.

The paper's reader is an Intel 5300 in monitor mode, logging CSI/RSSI
for every packet it hears (§7.1). :class:`MonitorCapture` plays that
role in the simulation: it listens on the :class:`~repro.mac.dcf.Medium`,
and for each successfully received frame asks the backscatter channel
for the true response at that instant (given the tag's current switch
state) and the card model for the noisy measurement record.

The tag's switch state is supplied as a callable ``tag_state(t)`` so
the same capture works whether the tag is idle, alternating bits, or
transmitting framed messages.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

from repro.errors import ConfigurationError
from repro.faults.base import FaultPlan
from repro.hardware.intel5300 import Intel5300
from repro.mac.dcf import Medium
from repro.mac.packets import FrameKind, Transmission
from repro.phy.backscatter_channel import BackscatterChannel
from repro.measurement import MeasurementStream

#: Tag switch state at time t: 0 (absorb) or 1 (reflect).
TagStateFn = Callable[[float], int]


def idle_tag(time_s: float) -> int:
    """A tag that never reflects (the 'no device' baseline)."""
    return 0


@dataclass
class MonitorCapture:
    """Captures measurements for packets heard by the reader.

    Attributes:
        channel: the composite backscatter channel to the reader.
        card: the CSI/RSSI measurement model.
        tag_state: the tag's switch state as a function of time.
        sources: only frames from these transmitter names are captured
            (``None`` = capture everything, as a monitor-mode card
            hearing the whole channel would).
        csi_kinds: frame kinds for which the card reports CSI; beacons
            are RSSI-only on the Intel 5300 (§7.5).
        faults: optional fault plan. Outage drops discard audible
            frames before measurement, brownouts force the tag's
            switch to absorb, and corruption/clock-warp hooks rewrite
            the record the card produced (warped timestamps are
            clamped non-decreasing to keep the stream ordered).
    """

    channel: BackscatterChannel
    card: Intel5300
    tag_state: TagStateFn = idle_tag
    sources: Optional[Sequence[str]] = None
    csi_kinds: frozenset = frozenset({FrameKind.DATA, FrameKind.DOWNLINK_MARK})
    stream: MeasurementStream = field(default_factory=MeasurementStream)
    faults: Optional[FaultPlan] = None
    _last_warped_s: float = float("-inf")

    def attach(self, medium: Medium) -> None:
        """Start listening on ``medium``."""
        medium.add_listener(self.on_transmission)

    def on_transmission(self, tx: Transmission) -> None:
        """Medium callback: record a measurement for an audible frame."""
        if tx.collided:
            return  # collided frames don't decode, so no CSI is logged
        frame = tx.frame
        if self.sources is not None and frame.src not in self.sources:
            return
        active = self.faults is not None and not self.faults.empty
        if active and self.faults.drop_packet(tx.start_s):
            return  # outage/interference ate this frame at the reader
        # Sample the tag state at the middle of the packet airtime: the
        # paper guarantees the tag never switches mid-packet (§3.1), and
        # mid-packet sampling reflects that the channel estimate comes
        # from the packet's preamble/payload as a whole.
        t_mid = 0.5 * (tx.start_s + tx.end_s)
        state = self.tag_state(t_mid)
        if state not in (0, 1):
            raise ConfigurationError(f"tag_state must return 0/1, got {state!r}")
        if active and not self.faults.tag_powered(t_mid):
            state = 0  # browned out: the switch rests in absorb
        true_h = self.channel.response(tx.start_s, state)
        with_csi = frame.kind in self.csi_kinds
        source = frame.src if frame.kind is not FrameKind.BEACON else "ap-beacon"
        measurement = self.card.measure(
            true_h, timestamp_s=tx.start_s, source=source, with_csi=with_csi
        )
        if active:
            measurement = self.faults.corrupt_measurement(measurement)
            if measurement.timestamp_s < self._last_warped_s:
                from repro.measurement import ChannelMeasurement

                measurement = ChannelMeasurement(
                    timestamp_s=self._last_warped_s,
                    csi=measurement.csi,
                    rssi_dbm=measurement.rssi_dbm,
                    source=measurement.source,
                )
            self._last_warped_s = measurement.timestamp_s
        self.stream.append(measurement)

    def measurements(self) -> MeasurementStream:
        """The stream captured so far."""
        return self.stream
