"""Traffic generators driving the 802.11 simulation.

The uplink's achievable bit rate is set by how many helper packets per
second the reader observes (§5, Fig 12) and by traffic burstiness
(timestamp binning, §3.2). These generators reproduce the workloads
used in the paper's evaluation:

* :class:`ConstantRateTraffic` — injected packets with a fixed
  inter-packet delay (the knob the paper turns in §7.2 to sweep
  240-3070 packets/s).
* :class:`PoissonTraffic` — memoryless arrivals.
* :class:`BurstyTraffic` — Pareto-distributed bursts with idle gaps,
  the "bursty in nature" shared-medium traffic of §3.2.
* :class:`SaturatedTraffic` — always-backlogged source, modelling the
  1 GB media-file download of Fig 3.
* :class:`DiurnalOfficeLoad` — time-of-day-varying office load for the
  ambient-traffic experiments (Fig 15, Fig 18).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Optional

import numpy as np

from repro.errors import ConfigurationError
from repro.mac.packets import FrameKind, WifiFrame
from repro.mac.simulator import EventScheduler

#: Callable that hands a ready frame to a station queue.
FrameSink = Callable[[WifiFrame], None]


@dataclass
class TrafficSource:
    """Base class: emits frames into a sink on a schedule."""

    src: str
    dst: str
    sink: FrameSink
    scheduler: EventScheduler
    payload_bytes: int = 1000
    rate_bps: float = 54e6
    rng: Optional[np.random.Generator] = None

    def __post_init__(self) -> None:
        if self.payload_bytes <= 0:
            raise ConfigurationError("payload_bytes must be positive")
        if self.rng is None:
            self.rng = np.random.default_rng()
        self._stopped = False

    def start(self) -> None:
        """Begin emitting frames."""
        self._schedule_next()

    def stop(self) -> None:
        self._stopped = True

    def _make_frame(self) -> WifiFrame:
        return WifiFrame(
            src=self.src,
            dst=self.dst,
            kind=FrameKind.DATA,
            payload_bytes=self.payload_bytes,
            rate_bps=self.rate_bps,
        )

    def _emit(self) -> None:
        if self._stopped:
            return
        self.sink(self._make_frame())
        self._schedule_next()

    def _schedule_next(self) -> None:
        raise NotImplementedError

    # Interval hook shared by subclasses.
    def _schedule_after(self, delay_s: float) -> None:
        if self._stopped:
            return
        self.scheduler.schedule_in(max(0.0, delay_s), self._emit)


@dataclass
class ConstantRateTraffic(TrafficSource):
    """Fixed inter-packet interval (paper §7.2: injected traffic)."""

    interval_s: float = 1e-3

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.interval_s <= 0:
            raise ConfigurationError("interval_s must be positive")

    def _schedule_next(self) -> None:
        self._schedule_after(self.interval_s)


@dataclass
class PoissonTraffic(TrafficSource):
    """Exponential inter-arrival times at ``mean_rate_pps`` packets/s."""

    mean_rate_pps: float = 500.0

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.mean_rate_pps <= 0:
            raise ConfigurationError("mean_rate_pps must be positive")

    def _schedule_next(self) -> None:
        self._schedule_after(self.rng.exponential(1.0 / self.mean_rate_pps))


@dataclass
class BurstyTraffic(TrafficSource):
    """Pareto-burst traffic: bursts of back-to-back packets, idle gaps.

    Attributes:
        burst_shape: Pareto shape of the burst length (smaller = heavier
            tail).
        mean_burst_packets: mean packets per burst.
        mean_gap_s: mean idle gap between bursts.
    """

    burst_shape: float = 1.5
    mean_burst_packets: float = 20.0
    mean_gap_s: float = 20e-3
    _burst_remaining: int = field(default=0, init=False)

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.burst_shape <= 1.0:
            raise ConfigurationError(
                "burst_shape must be > 1 for a finite mean burst size"
            )
        if self.mean_burst_packets < 1:
            raise ConfigurationError("mean_burst_packets must be >= 1")
        if self.mean_gap_s <= 0:
            raise ConfigurationError("mean_gap_s must be positive")

    def _draw_burst_length(self) -> int:
        # Pareto with mean = xm * shape / (shape - 1).
        xm = self.mean_burst_packets * (self.burst_shape - 1.0) / self.burst_shape
        return max(1, int(xm * (1.0 + self.rng.pareto(self.burst_shape))))

    def _schedule_next(self) -> None:
        if self._burst_remaining > 0:
            self._burst_remaining -= 1
            # Back-to-back within a burst (queueing spaces them out).
            self._schedule_after(0.0)
        else:
            self._burst_remaining = self._draw_burst_length()
            self._schedule_after(self.rng.exponential(self.mean_gap_s))


@dataclass
class SaturatedTraffic(TrafficSource):
    """Always-backlogged source: keeps ``backlog`` frames queued.

    Models the 1 GB media-file download of the paper's Fig 3
    experiment — the AP always has data pending for the client.
    """

    backlog: int = 4
    queue_length: Callable[[], int] = lambda: 0

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.backlog < 1:
            raise ConfigurationError("backlog must be >= 1")

    def _schedule_next(self) -> None:
        # Poll frequently; refill whenever the queue drains below backlog.
        self._schedule_after(50e-6)

    def _emit(self) -> None:
        if self._stopped:
            return
        while self.queue_length() < self.backlog:
            self.sink(self._make_frame())
        self._schedule_next()


def office_load_pps(hour_of_day: float, peak_pps: float = 1100.0,
                    base_pps: float = 100.0) -> float:
    """Diurnal office network load (packets/s) at ``hour_of_day``.

    A smooth single-peak curve: ramps up through the morning, peaks in
    the early afternoon (~14:30), and decays into the evening —
    matching the qualitative load curve the paper logs from its
    organization's AP between 12 PM and 8 PM (Fig 15).
    """
    if not 0.0 <= hour_of_day <= 24.0:
        raise ConfigurationError("hour_of_day must be within [0, 24]")
    peak_hour = 14.5
    width_hours = 3.4
    load = base_pps + (peak_pps - base_pps) * math.exp(
        -((hour_of_day - peak_hour) ** 2) / (2 * width_hours**2)
    )
    return load


@dataclass
class DiurnalOfficeLoad(TrafficSource):
    """Poisson traffic whose rate follows :func:`office_load_pps`.

    Attributes:
        start_hour: wall-clock hour corresponding to simulation t=0.
        peak_pps: mid-afternoon peak load.
        base_pps: overnight floor.
    """

    start_hour: float = 12.0
    peak_pps: float = 1100.0
    base_pps: float = 100.0

    def __post_init__(self) -> None:
        super().__post_init__()
        if not 0.0 <= self.start_hour <= 24.0:
            raise ConfigurationError("start_hour must be within [0, 24]")

    def current_rate_pps(self) -> float:
        hour = (self.start_hour + self.scheduler.now / 3600.0) % 24.0
        return office_load_pps(hour, self.peak_pps, self.base_pps)

    def _schedule_next(self) -> None:
        rate = self.current_rate_pps()
        self._schedule_after(self.rng.exponential(1.0 / rate))
