"""Beacon-only network helpers (paper §7.5, Fig 16).

The paper shows the uplink can run from nothing but the AP's periodic
beacons: "the Wi-Fi reader can use the periodic beacon packets
transmitted by Wi-Fi APs to decode the bits from the tag". Since the
Intel 5300 does not expose CSI for beacons, the reader falls back to
RSSI for this mode.

:func:`build_beacon_network` wires up an AP whose only traffic is
beacons at a configurable rate, plus a monitor-mode reader capture.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.errors import ConfigurationError
from repro.hardware.intel5300 import Intel5300
from repro.mac.capture import MonitorCapture, TagStateFn, idle_tag
from repro.mac.dcf import Medium
from repro.mac.simulator import EventScheduler
from repro.mac.station import AccessPoint
from repro.phy.backscatter_channel import BackscatterChannel


@dataclass
class BeaconNetwork:
    """An AP beaconing at a fixed rate with a monitoring reader."""

    scheduler: EventScheduler
    medium: Medium
    ap: AccessPoint
    capture: MonitorCapture

    def run(self, duration_s: float) -> None:
        """Advance the simulation by ``duration_s`` seconds."""
        self.scheduler.run_until(self.scheduler.now + duration_s)


def build_beacon_network(
    beacons_per_second: float,
    channel: BackscatterChannel,
    card: Optional[Intel5300] = None,
    tag_state: TagStateFn = idle_tag,
    rng: Optional[np.random.Generator] = None,
) -> BeaconNetwork:
    """Create a network whose only traffic is AP beacons.

    Args:
        beacons_per_second: effective beacon rate (the paper sweeps
            10-70 beacons/s by changing the beacon interval).
        channel: the backscatter channel to the reader.
        card: reader measurement model (a default Intel 5300 if None).
        tag_state: the tag's switch state over time.
        rng: random source.
    """
    if beacons_per_second <= 0:
        raise ConfigurationError("beacons_per_second must be positive")
    rng = rng or np.random.default_rng()
    scheduler = EventScheduler()
    medium = Medium(scheduler, rng=rng)
    ap = AccessPoint(
        "ap",
        medium,
        scheduler,
        beacon_interval_s=1.0 / beacons_per_second,
        rng=rng,
    )
    card = card or Intel5300(rng=rng)
    capture = MonitorCapture(channel=channel, card=card, tag_state=tag_state)
    capture.attach(medium)
    return BeaconNetwork(scheduler=scheduler, medium=medium, ap=ap, capture=capture)
