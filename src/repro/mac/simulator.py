"""Discrete-event simulation engine.

A minimal, deterministic event scheduler used by the 802.11 MAC
simulation: events are ``(time, sequence, callback)`` triples in a
binary heap; ties in time break by insertion order so runs are
reproducible.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, List

from repro import obs
from repro.errors import SimulationError


@dataclass(order=True)
class _Event:
    time_s: float
    sequence: int
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)


class EventHandle:
    """Handle returned by :meth:`EventScheduler.schedule`; supports cancel."""

    def __init__(self, event: _Event) -> None:
        self._event = event

    def cancel(self) -> None:
        """Cancel the event; a cancelled event's callback never runs."""
        self._event.cancelled = True

    @property
    def time_s(self) -> float:
        return self._event.time_s

    @property
    def cancelled(self) -> bool:
        return self._event.cancelled


class EventScheduler:
    """Priority-queue discrete-event scheduler.

    Example:
        >>> sched = EventScheduler()
        >>> fired = []
        >>> _ = sched.schedule_at(1.0, lambda: fired.append(sched.now))
        >>> sched.run_until(2.0)
        >>> fired
        [1.0]
    """

    def __init__(self) -> None:
        self._heap: List[_Event] = []
        self._counter = itertools.count()
        self._now = 0.0
        self._running = False

    @property
    def now(self) -> float:
        """Current simulation time (s)."""
        return self._now

    def schedule_at(self, time_s: float, callback: Callable[[], None]) -> EventHandle:
        """Schedule ``callback`` at absolute time ``time_s``.

        Raises:
            SimulationError: if ``time_s`` is in the past.
        """
        if time_s < self._now:
            raise SimulationError(
                f"cannot schedule at {time_s} s; current time is {self._now} s"
            )
        event = _Event(time_s=time_s, sequence=next(self._counter), callback=callback)
        heapq.heappush(self._heap, event)
        return EventHandle(event)

    def schedule_in(self, delay_s: float, callback: Callable[[], None]) -> EventHandle:
        """Schedule ``callback`` after ``delay_s`` seconds.

        Raises:
            SimulationError: if ``delay_s`` is negative.
        """
        if delay_s < 0:
            raise SimulationError(f"delay must be >= 0, got {delay_s}")
        return self.schedule_at(self._now + delay_s, callback)

    def run_until(self, end_time_s: float) -> None:
        """Process events with time <= ``end_time_s``; advance the clock.

        The clock finishes at ``end_time_s`` even if the queue drains
        earlier.
        """
        if end_time_s < self._now:
            raise SimulationError(
                f"end time {end_time_s} s is before current time {self._now} s"
            )
        if self._running:
            raise SimulationError("run_until is not reentrant")
        self._running = True
        processed = 0
        try:
            while self._heap and self._heap[0].time_s <= end_time_s:
                event = heapq.heappop(self._heap)
                if event.cancelled:
                    continue
                self._now = event.time_s
                event.callback()
                processed += 1
            self._now = end_time_s
        finally:
            self._running = False
            if processed and obs.metrics_enabled():
                obs.counter("mac.sim.events").inc(processed)

    def run_all(self, safety_limit: int = 10_000_000) -> None:
        """Process every pending event.

        Args:
            safety_limit: abort (raising :class:`SimulationError`) after
                this many events, to catch runaway self-rescheduling.
        """
        if self._running:
            raise SimulationError("run_all is not reentrant")
        self._running = True
        processed = 0
        try:
            while self._heap:
                event = heapq.heappop(self._heap)
                if event.cancelled:
                    continue
                self._now = event.time_s
                event.callback()
                processed += 1
                if processed > safety_limit:
                    raise SimulationError(
                        f"event limit {safety_limit} exceeded; likely a "
                        "self-rescheduling loop"
                    )
        finally:
            self._running = False
            if processed and obs.metrics_enabled():
                obs.counter("mac.sim.events").inc(processed)

    def pending_count(self) -> int:
        """Number of queued (possibly cancelled) events."""
        return len(self._heap)
