"""802.11 MAC substrate: DCF, stations, traffic, beacons, capture.

An event-driven 802.11 network simulation providing the traffic
dynamics the paper's uplink depends on: helper packet rates, bursty
shared-medium arrivals, AP beacons, CTS_to_SELF reservations, and
monitor-mode capture that turns each heard packet into a CSI/RSSI
measurement at the reader.
"""

from repro.mac.beacons import BeaconNetwork, build_beacon_network
from repro.mac.capture import MonitorCapture, idle_tag
from repro.mac.cts_to_self import ReservationPlan, cts_to_self_frame, plan_reservations
from repro.mac.dcf import DcfAccess, DcfStats, LinkQualityModel, Medium
from repro.mac.packets import FrameKind, Transmission, WifiFrame
from repro.mac.rate_control import (
    RateController,
    SnrLinkQualityModel,
    snr_from_distance,
)
from repro.mac.simulator import EventHandle, EventScheduler
from repro.mac.station import AccessPoint, Station
from repro.mac.traffic import (
    BurstyTraffic,
    ConstantRateTraffic,
    DiurnalOfficeLoad,
    PoissonTraffic,
    SaturatedTraffic,
    office_load_pps,
)

__all__ = [
    "AccessPoint",
    "BeaconNetwork",
    "BurstyTraffic",
    "ConstantRateTraffic",
    "DcfAccess",
    "DcfStats",
    "DiurnalOfficeLoad",
    "EventHandle",
    "EventScheduler",
    "FrameKind",
    "LinkQualityModel",
    "Medium",
    "MonitorCapture",
    "PoissonTraffic",
    "RateController",
    "ReservationPlan",
    "SaturatedTraffic",
    "SnrLinkQualityModel",
    "Station",
    "Transmission",
    "WifiFrame",
    "build_beacon_network",
    "cts_to_self_frame",
    "idle_tag",
    "office_load_pps",
    "plan_reservations",
    "snr_from_distance",
]
