"""Stations and access points.

A :class:`Station` couples a DCF access engine with an optional rate
controller; an :class:`AccessPoint` additionally emits periodic
beacons at the TBTT (Fig 16's beacon-only uplink relies on these).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import ConfigurationError
from repro.mac.dcf import DcfAccess, Medium
from repro.mac.packets import FrameKind, WifiFrame
from repro.mac.rate_control import RateController
from repro.mac.simulator import EventScheduler
from repro.phy import constants


class Station:
    """A Wi-Fi device with a transmit queue and DCF access.

    Attributes:
        name: unique station name (used for addressing and NAV).
        access: the DCF engine.
        rate_controller: optional adaptation; when present, each
            dequeued data frame is stamped with the controller's
            current rate and outcomes are fed back.
    """

    def __init__(
        self,
        name: str,
        medium: Medium,
        scheduler: EventScheduler,
        rate_controller: Optional[RateController] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        if not name:
            raise ConfigurationError("station name must be non-empty")
        self.name = name
        self.scheduler = scheduler
        self.rate_controller = rate_controller
        self.access = DcfAccess(
            name=name,
            medium=medium,
            scheduler=scheduler,
            rng=rng,
            on_result=self._on_result,
        )

    def send(self, frame: WifiFrame, front: bool = False) -> None:
        """Queue a frame for transmission."""
        if frame.src != self.name:
            raise ConfigurationError(
                f"frame src {frame.src!r} does not match station {self.name!r}"
            )
        if self.rate_controller is not None and frame.kind is FrameKind.DATA:
            frame.rate_bps = self.rate_controller.current_rate_bps
        self.access.enqueue(frame, front=front)

    def _on_result(self, frame: WifiFrame, success: bool) -> None:
        if self.rate_controller is not None and frame.kind is FrameKind.DATA:
            self.rate_controller.record(success)

    @property
    def stats(self):
        return self.access.stats


class AccessPoint(Station):
    """A station that additionally broadcasts periodic beacons.

    Attributes:
        beacon_interval_s: TBTT spacing (102.4 ms default; Fig 16
            sweeps effective beacon rates of 10-70 per second).
    """

    def __init__(
        self,
        name: str,
        medium: Medium,
        scheduler: EventScheduler,
        beacon_interval_s: float = constants.BEACON_INTERVAL_S,
        beacons_enabled: bool = True,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__(name, medium, scheduler, rng=rng)
        if beacon_interval_s <= 0:
            raise ConfigurationError("beacon_interval_s must be positive")
        self.beacon_interval_s = beacon_interval_s
        self.beacons_sent = 0
        if beacons_enabled:
            scheduler.schedule_in(beacon_interval_s, self._beacon_tick)

    def _beacon_tick(self) -> None:
        beacon = WifiFrame(src=self.name, dst="*", kind=FrameKind.BEACON)
        # Beacons go to the head of the queue (the AP prioritizes them).
        self.access.enqueue(beacon, front=True)
        self.beacons_sent += 1
        self.scheduler.schedule_in(self.beacon_interval_s, self._beacon_tick)
