"""802.11 frame descriptors and airtime computation.

Frames carry only the attributes the simulation needs: addressing,
kind, size, PHY rate, and transmit power. Airtime is computed with the
OFDM model from :mod:`repro.phy.ofdm`; control frames (ACK, CTS) use
fixed sizes per the standard.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from repro import units
from repro.errors import ConfigurationError
from repro.phy import constants
from repro.phy.ofdm import OfdmPacket

#: MAC header + FCS bytes for data frames.
DATA_HEADER_BYTES = 28

#: ACK frame body size (bytes).
ACK_BYTES = 14

#: CTS frame body size (bytes).
CTS_BYTES = 14

#: Beacon frame body size (bytes), including typical IEs.
BEACON_BYTES = 110

#: PHY rate used for control frames and beacons (basic rate).
BASIC_RATE_BPS = 6e6

_frame_ids = itertools.count(1)


class FrameKind(enum.Enum):
    """802.11 frame types used by the simulation."""

    DATA = "data"
    ACK = "ack"
    BEACON = "beacon"
    CTS_TO_SELF = "cts_to_self"
    #: Short padding frames used by the downlink encoder as '1' bits.
    DOWNLINK_MARK = "downlink_mark"


@dataclass
class WifiFrame:
    """One simulated 802.11 frame.

    Attributes:
        src: transmitter name.
        dst: receiver name ("*" for broadcast).
        kind: frame type.
        payload_bytes: MAC payload size excluding header.
        rate_bps: PHY data rate.
        tx_power_w: transmit power.
        nav_s: NAV duration carried in the frame header (used by
            CTS_to_SELF to silence the medium).
        retries: number of retransmission attempts so far.
    """

    src: str
    dst: str
    kind: FrameKind = FrameKind.DATA
    payload_bytes: int = 1000
    rate_bps: float = 54e6
    tx_power_w: float = units.dbm_to_watts(16.0)
    nav_s: float = 0.0
    retries: int = 0
    frame_id: int = field(default_factory=lambda: next(_frame_ids))

    def __post_init__(self) -> None:
        if self.payload_bytes < 0:
            raise ConfigurationError("payload_bytes must be >= 0")
        if self.tx_power_w <= 0:
            raise ConfigurationError("tx_power_w must be positive")
        if self.nav_s < 0:
            raise ConfigurationError("nav_s must be >= 0")
        if self.nav_s > constants.MAX_CTS_TO_SELF_RESERVATION_S + 1e-9:
            raise ConfigurationError(
                f"NAV of {self.nav_s * 1e3:.1f} ms exceeds the 802.11 limit of "
                f"{constants.MAX_CTS_TO_SELF_RESERVATION_S * 1e3:.0f} ms"
            )

    @property
    def airtime_s(self) -> float:
        """On-air duration of this frame."""
        if self.kind is FrameKind.ACK:
            return OfdmPacket(ACK_BYTES, BASIC_RATE_BPS).airtime_s
        if self.kind is FrameKind.CTS_TO_SELF:
            return OfdmPacket(CTS_BYTES, BASIC_RATE_BPS).airtime_s
        if self.kind is FrameKind.BEACON:
            return OfdmPacket(BEACON_BYTES, BASIC_RATE_BPS).airtime_s
        size = self.payload_bytes
        if self.kind is FrameKind.DATA:
            size += DATA_HEADER_BYTES
        return OfdmPacket(size, self.rate_bps).airtime_s

    @property
    def needs_ack(self) -> bool:
        """Whether the receiver replies with an ACK after SIFS."""
        return self.kind is FrameKind.DATA and self.dst != "*"


@dataclass(frozen=True)
class Transmission:
    """A completed on-air transmission, as recorded by the medium.

    Attributes:
        frame: the transmitted frame.
        start_s: airtime start.
        end_s: airtime end.
        collided: True when it overlapped another transmission.
    """

    frame: WifiFrame
    start_s: float
    end_s: float
    collided: bool = False

    @property
    def duration_s(self) -> float:
        return self.end_s - self.start_s
