"""802.11 DCF medium access: carrier sense, backoff, NAV, collisions.

The :class:`Medium` is the single shared broadcast channel: it tracks
busy airtime, the virtual carrier-sense NAV (set by CTS_to_SELF), and
detects collisions between overlapping transmissions. Each station
owns a :class:`DcfAccess` that implements CSMA/CA: wait DIFS after the
medium goes idle, count down a random backoff (frozen while busy),
transmit, and on failure retry with a doubled contention window.

Frame delivery errors come from two sources: collisions (modelled
exactly, from overlap) and channel losses (delegated to a pluggable
:class:`LinkQualityModel`, used by the rate-adaptation experiments).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

import numpy as np

from repro import obs
from repro.errors import ConfigurationError, SimulationError
from repro.mac.packets import FrameKind, Transmission, WifiFrame
from repro.mac.simulator import EventHandle, EventScheduler
from repro.phy import constants

#: Minimum contention window (slots), 802.11g OFDM PHY.
CW_MIN = 15

#: Maximum contention window (slots).
CW_MAX = 1023

#: Retry limit before a frame is dropped.
RETRY_LIMIT = 7


class LinkQualityModel:
    """Maps a transmission to a delivery probability (non-collision loss).

    The default model is an ideal channel: everything not collided is
    delivered. Experiments override :meth:`delivery_probability`.
    """

    def delivery_probability(self, frame: WifiFrame, time_s: float) -> float:
        """Probability the frame survives channel impairments."""
        return 1.0


TransmissionListener = Callable[[Transmission], None]


class Medium:
    """Shared wireless medium with carrier sense, NAV, and collisions."""

    def __init__(
        self,
        scheduler: EventScheduler,
        link_quality: Optional[LinkQualityModel] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        self.scheduler = scheduler
        self.link_quality = link_quality or LinkQualityModel()
        self.rng = rng or np.random.default_rng()
        self.busy_until = 0.0
        self.nav_until = 0.0
        self.nav_owner: Optional[str] = None
        self.transmission_log: List[Transmission] = []
        self._active: List[Transmission] = []
        self._occupied_until = 0.0
        self._listeners: List[TransmissionListener] = []
        self._contenders: List["DcfAccess"] = []

    # -- carrier sense -------------------------------------------------------

    def is_physically_idle(self) -> bool:
        """True when no *sensible* energy is on the air right now.

        A transmission that began at this very instant cannot have been
        sensed yet — carrier sense takes non-zero time — so a station
        whose backoff expires in the same slot as another's must also
        transmit, producing the collision that DCF's exponential
        backoff exists to resolve.
        """
        now = self.scheduler.now
        if now >= self.busy_until:
            return True
        if now < self._occupied_until:
            return False
        eps = 1e-12
        active = [t for t in self._active if t.end_s > now + eps]
        return bool(active) and all(
            abs(t.start_s - now) <= eps for t in active
        )

    def is_idle_for(self, station_name: str) -> bool:
        """Physical + virtual (NAV) carrier sense for ``station_name``."""
        if not self.is_physically_idle():
            return False
        if self.scheduler.now < self.nav_until and station_name != self.nav_owner:
            return False
        return True

    def add_listener(self, listener: TransmissionListener) -> None:
        """Register a callback invoked for every completed transmission."""
        self._listeners.append(listener)

    def register_contender(self, access: "DcfAccess") -> None:
        self._contenders.append(access)

    # -- transmission --------------------------------------------------------

    def begin_transmission(self, frame: WifiFrame) -> Transmission:
        """Put a frame on the air; returns the in-flight transmission.

        Overlap with any already-active transmission marks both as
        collided. The completion event fires at airtime end.
        """
        now = self.scheduler.now
        tx = Transmission(frame=frame, start_s=now, end_s=now + frame.airtime_s)
        collided = False
        for other in self._active:
            if other.end_s > now:
                collided = True
                idx = self._active.index(other)
                self._active[idx] = Transmission(
                    frame=other.frame,
                    start_s=other.start_s,
                    end_s=other.end_s,
                    collided=True,
                )
        if collided:
            tx = Transmission(
                frame=frame, start_s=tx.start_s, end_s=tx.end_s, collided=True
            )
        self._active.append(tx)
        self.busy_until = max(self.busy_until, tx.end_s)
        if frame.nav_s > 0:
            self.nav_until = max(self.nav_until, tx.end_s + frame.nav_s)
            self.nav_owner = frame.src
            # CTS window telemetry: reservation length and how many the
            # downlink needed (long messages split across <=32 ms NAVs).
            obs.counter("mac.nav.reservations").inc()
            obs.histogram("mac.nav.window_s").observe(frame.nav_s)
            # Wake deferring stations when the reservation expires.
            self.scheduler.schedule_at(self.nav_until, self._idle_check)
        self.scheduler.schedule_at(tx.end_s, self._complete_transmissions)
        return tx

    def _idle_check(self) -> None:
        if self.is_physically_idle():
            self._notify_idle()

    def _complete_transmissions(self) -> None:
        now = self.scheduler.now
        done = [t for t in self._active if t.end_s <= now + 1e-12]
        self._active = [t for t in self._active if t.end_s > now + 1e-12]
        for tx in done:
            self.transmission_log.append(tx)
            for listener in self._listeners:
                listener(tx)
        if done and obs.metrics_enabled():
            for tx in done:
                obs.counter("mac.transmissions").inc()
                obs.histogram("mac.airtime_s").observe(tx.end_s - tx.start_s)
                if tx.collided:
                    obs.counter("mac.collisions").inc()
        if self.is_physically_idle():
            self._notify_idle()

    def _notify_idle(self) -> None:
        for access in self._contenders:
            access.on_medium_idle()

    def occupy(self, duration_s: float) -> None:
        """Mark the medium busy for ``duration_s`` without a frame.

        Used for SIFS-spaced control exchanges modelled in aggregate.
        """
        if duration_s < 0:
            raise ConfigurationError("duration_s must be >= 0")
        self.busy_until = max(self.busy_until, self.scheduler.now + duration_s)
        self._occupied_until = max(
            self._occupied_until, self.scheduler.now + duration_s
        )
        # occupy() has no completing transmission, so schedule the idle
        # notification that _complete_transmissions would otherwise give.
        self.scheduler.schedule_at(self.busy_until, self._idle_check)

    def channel_delivers(self, frame: WifiFrame) -> bool:
        """Sample the non-collision channel loss for a frame."""
        p = self.link_quality.delivery_probability(frame, self.scheduler.now)
        if not 0.0 <= p <= 1.0:
            raise SimulationError(f"delivery probability {p} outside [0, 1]")
        return bool(self.rng.random() < p)


@dataclass
class DcfStats:
    """Per-station MAC statistics."""

    attempts: int = 0
    successes: int = 0
    collisions: int = 0
    channel_losses: int = 0
    drops: int = 0
    bytes_delivered: int = 0


class DcfAccess:
    """CSMA/CA transmit engine for one station.

    The owner enqueues frames; DCF delivers a completion callback
    ``on_result(frame, success)`` for each attempt outcome (used by
    rate adaptation).
    """

    def __init__(
        self,
        name: str,
        medium: Medium,
        scheduler: EventScheduler,
        rng: Optional[np.random.Generator] = None,
        on_result: Optional[Callable[[WifiFrame, bool], None]] = None,
    ) -> None:
        self.name = name
        self.medium = medium
        self.scheduler = scheduler
        self.rng = rng or np.random.default_rng()
        self.on_result = on_result
        self.queue: List[WifiFrame] = []
        self.stats = DcfStats()
        self._cw = CW_MIN
        self._backoff_slots: Optional[int] = None
        self._pending_attempt: Optional[EventHandle] = None
        self._attempt_idle_start: Optional[float] = None
        self._in_flight: Optional[WifiFrame] = None
        medium.register_contender(self)

    # -- queueing ------------------------------------------------------------

    def enqueue(self, frame: WifiFrame, front: bool = False) -> None:
        """Add a frame to the transmit queue and start contending."""
        if front:
            self.queue.insert(0, frame)
        else:
            self.queue.append(frame)
        self._try_start_contention()

    @property
    def queue_length(self) -> int:
        return len(self.queue)

    # -- contention ----------------------------------------------------------

    def _try_start_contention(self) -> None:
        if self._in_flight is not None or self._pending_attempt is not None:
            return
        if not self.queue:
            return
        if self._backoff_slots is None:
            self._backoff_slots = int(self.rng.integers(0, self._cw + 1))
        if self.medium.is_idle_for(self.name):
            self._schedule_attempt()
        # else: wait for on_medium_idle notification.

    def on_medium_idle(self) -> None:
        """Medium transitioned to idle; resume DIFS + backoff countdown."""
        if self._in_flight is None and self._pending_attempt is None and self.queue:
            if self.medium.is_idle_for(self.name):
                if self._backoff_slots is None:
                    self._backoff_slots = int(self.rng.integers(0, self._cw + 1))
                self._schedule_attempt()

    def _schedule_attempt(self) -> None:
        assert self._backoff_slots is not None
        wait = constants.DIFS_S + self._backoff_slots * constants.SLOT_TIME_S
        self._attempt_idle_start = self.scheduler.now
        self._pending_attempt = self.scheduler.schedule_in(wait, self._attempt)

    def _freeze_backoff(self) -> None:
        """Cancel the pending attempt and keep the un-elapsed slots."""
        if self._pending_attempt is None:
            return
        if self._pending_attempt.time_s <= self.scheduler.now + 1e-12:
            # The attempt fires at this very instant: the station has
            # already committed to transmitting in this slot and cannot
            # sense the other station's simultaneous start — this is
            # exactly how DCF collisions happen. Let it run.
            return
        assert self._attempt_idle_start is not None
        elapsed = self.scheduler.now - self._attempt_idle_start - constants.DIFS_S
        elapsed_slots = max(0, int(elapsed / constants.SLOT_TIME_S))
        if self._backoff_slots is not None:
            self._backoff_slots = max(0, self._backoff_slots - elapsed_slots)
        self._pending_attempt.cancel()
        self._pending_attempt = None
        self._attempt_idle_start = None

    def _attempt(self) -> None:
        self._pending_attempt = None
        self._attempt_idle_start = None
        if not self.queue:
            return
        if not self.medium.is_idle_for(self.name):
            # Someone grabbed the medium during our countdown; freeze and
            # wait for the next idle notification.
            return
        frame = self.queue.pop(0)
        self._backoff_slots = None
        self._in_flight = frame
        self.stats.attempts += 1
        # Freeze everyone else's countdown.
        for access in self.medium._contenders:
            if access is not self:
                access._freeze_backoff()
        tx = self.medium.begin_transmission(frame)
        self.scheduler.schedule_at(tx.end_s, lambda: self._on_airtime_done(tx))

    def _on_airtime_done(self, tx: Transmission) -> None:
        frame = tx.frame
        self._in_flight = None
        # Look up the final collision flag from the log (overlap may have
        # been detected after we started).
        final = next(
            (t for t in reversed(self.medium.transmission_log)
             if t.frame.frame_id == frame.frame_id),
            tx,
        )
        if final.collided:
            self.stats.collisions += 1
            self._handle_failure(frame)
            return
        if frame.needs_ack:
            if self.medium.channel_delivers(frame):
                # Receiver ACKs after SIFS; model the ACK as busy airtime.
                ack_time = constants.SIFS_S + WifiFrame(
                    src=frame.dst, dst=frame.src, kind=FrameKind.ACK
                ).airtime_s
                self.medium.occupy(ack_time)
                self._handle_success(frame)
            else:
                self.stats.channel_losses += 1
                self._handle_failure(frame)
        else:
            self._handle_success(frame)

    def _handle_success(self, frame: WifiFrame) -> None:
        self.stats.successes += 1
        self.stats.bytes_delivered += frame.payload_bytes
        self._cw = CW_MIN
        if self.on_result is not None:
            self.on_result(frame, True)
        self._try_start_contention()

    def _handle_failure(self, frame: WifiFrame) -> None:
        if self.on_result is not None:
            self.on_result(frame, False)
        if frame.retries + 1 >= RETRY_LIMIT:
            self.stats.drops += 1
            obs.counter("mac.frames.dropped").inc()
            self._cw = CW_MIN
        else:
            self._cw = min(CW_MAX, (self._cw + 1) * 2 - 1)
            frame.retries += 1
            self.queue.insert(0, frame)
        self._try_start_contention()
