"""CTS_to_SELF medium reservation.

The downlink encoder needs silence periods that other Wi-Fi devices do
not fill: "the Wi-Fi reader transmits a CTS_to_SELF packet before
transmitting the message. CTS_to_SELF is a Wi-Fi message that forces
802.11-compliant devices to refrain for a specified time period"
(§4.1). The 802.11 standard caps one reservation at 32 ms, so longer
messages must be split across multiple reservations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro import obs
from repro.errors import MediumReservationError
from repro.mac.packets import FrameKind, WifiFrame
from repro.phy import constants


@dataclass(frozen=True)
class ReservationPlan:
    """How a downlink message of ``total_duration_s`` maps to NAV windows.

    Attributes:
        window_durations_s: per-CTS_to_SELF reserved payload time.
        bits_per_window: number of downlink bits carried per window.
    """

    window_durations_s: List[float]
    bits_per_window: List[int]

    @property
    def num_windows(self) -> int:
        return len(self.window_durations_s)

    @property
    def total_reserved_s(self) -> float:
        return sum(self.window_durations_s)


def plan_reservations(num_bits: int, bit_duration_s: float) -> ReservationPlan:
    """Split ``num_bits`` of on-off keying into <=32 ms NAV windows.

    Args:
        num_bits: total downlink bits (preamble + payload + CRC).
        bit_duration_s: one bit slot (packet or equal silence), e.g.
            50 us for the paper's 20 kbps mode.

    Raises:
        MediumReservationError: if a single bit cannot fit in a window.
    """
    if num_bits <= 0:
        raise MediumReservationError("num_bits must be positive")
    if bit_duration_s <= 0:
        raise MediumReservationError("bit_duration_s must be positive")
    max_window = constants.MAX_CTS_TO_SELF_RESERVATION_S
    bits_per_window = int(max_window / bit_duration_s)
    if bits_per_window < 1:
        raise MediumReservationError(
            f"bit duration {bit_duration_s * 1e3:.1f} ms exceeds the "
            f"{max_window * 1e3:.0f} ms reservation limit"
        )
    windows: List[float] = []
    bits: List[int] = []
    remaining = num_bits
    while remaining > 0:
        n = min(bits_per_window, remaining)
        windows.append(n * bit_duration_s)
        bits.append(n)
        remaining -= n
    if obs.metrics_enabled():
        obs.counter("mac.cts.windows").inc(len(windows))
        obs.histogram("mac.cts.window_s").observe_many(windows)
    return ReservationPlan(window_durations_s=windows, bits_per_window=bits)


def cts_to_self_frame(src: str, nav_s: float,
                      tx_power_w: float = None) -> WifiFrame:
    """Build a CTS_to_SELF frame reserving ``nav_s`` of medium time.

    Raises:
        MediumReservationError: if ``nav_s`` exceeds the 32 ms limit.
    """
    if nav_s <= 0:
        raise MediumReservationError("nav_s must be positive")
    if nav_s > constants.MAX_CTS_TO_SELF_RESERVATION_S + 1e-12:
        raise MediumReservationError(
            f"requested NAV {nav_s * 1e3:.1f} ms exceeds the 802.11 limit of "
            f"{constants.MAX_CTS_TO_SELF_RESERVATION_S * 1e3:.0f} ms"
        )
    kwargs = {}
    if tx_power_w is not None:
        kwargs["tx_power_w"] = tx_power_w
    return WifiFrame(
        src=src, dst=src, kind=FrameKind.CTS_TO_SELF, payload_bytes=0,
        nav_s=nav_s, **kwargs,
    )
