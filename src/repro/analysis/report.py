"""Plain-text rendering of experiment results.

The benchmark harness prints each figure's data as an ASCII table (and
a rough log-scale sparkline for BER curves), matching the paper's
rows/series so paper-vs-measured comparison is a visual diff.
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence

from repro.analysis.sweep import SweepResult
from repro.errors import ConfigurationError


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]], title: str = ""
) -> str:
    """Fixed-width ASCII table."""
    if not headers:
        raise ConfigurationError("headers must be non-empty")
    str_rows = [[_fmt(c) for c in row] for row in rows]
    for row in str_rows:
        if len(row) != len(headers):
            raise ConfigurationError(
                f"row width {len(row)} != header width {len(headers)}"
            )
    widths = [
        max(len(h), *(len(r[i]) for r in str_rows)) if str_rows else len(h)
        for i, h in enumerate(headers)
    ]
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) < 1e-2 or abs(value) >= 1e5:
            return f"{value:.2e}"
        return f"{value:.3g}"
    return str(value)


def render_series(results: Sequence[SweepResult], title: str = "") -> str:
    """Multiple sweeps as one table keyed by the shared x column."""
    if not results:
        raise ConfigurationError("results must be non-empty")
    xs = results[0].xs
    for r in results[1:]:
        if r.xs != xs:
            raise ConfigurationError("all series must share the same x grid")
    headers = [results[0].x_name] + [r.label or r.y_name for r in results]
    rows = [
        [x] + [r.ys[i] for r in results] for i, x in enumerate(xs)
    ]
    return format_table(headers, rows, title=title)


def log_sparkline(ys: Sequence[float], floor: float = 1e-5) -> str:
    """A one-line log-scale sketch of a positive series."""
    blocks = " .:-=+*#%@"
    if not ys:
        raise ConfigurationError("ys must be non-empty")
    logs = [math.log10(max(y, floor)) for y in ys]
    lo, hi = min(logs), max(logs)
    if hi == lo:
        return blocks[len(blocks) // 2] * len(ys)
    out = []
    for v in logs:
        idx = int((v - lo) / (hi - lo) * (len(blocks) - 1))
        out.append(blocks[idx])
    return "".join(out)


def paper_vs_measured(
    rows: Sequence[Dict[str, object]], title: str = "paper vs measured"
) -> str:
    """Table of {'metric', 'paper', 'measured'} comparison rows."""
    headers = ["metric", "paper", "measured"]
    table_rows = [[r.get("metric"), r.get("paper"), r.get("measured")] for r in rows]
    return format_table(headers, table_rows, title=title)
