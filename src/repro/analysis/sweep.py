"""Parameter sweep utilities for the benchmark harness."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Sequence, Tuple

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class SweepPoint:
    """One (x, y) result of a sweep, with optional extra columns."""

    x: float
    y: float
    extra: Tuple[Tuple[str, float], ...] = ()

    def as_dict(self) -> Dict[str, float]:
        d = {"x": self.x, "y": self.y}
        d.update(dict(self.extra))
        return d


@dataclass
class SweepResult:
    """A labelled series of sweep points.

    Attributes:
        label: series name (e.g. "30 pkts/bit").
        x_name: x-axis meaning.
        y_name: y-axis meaning.
        points: the measured points in sweep order.
    """

    label: str
    x_name: str
    y_name: str
    points: List[SweepPoint] = field(default_factory=list)

    @property
    def xs(self) -> List[float]:
        return [p.x for p in self.points]

    @property
    def ys(self) -> List[float]:
        return [p.y for p in self.points]

    def add(self, x: float, y: float, **extra: float) -> None:
        self.points.append(
            SweepPoint(x=x, y=y, extra=tuple(sorted(extra.items())))
        )


def sweep(
    xs: Sequence[float],
    fn: Callable[[float], float],
    label: str = "",
    x_name: str = "x",
    y_name: str = "y",
) -> SweepResult:
    """Evaluate ``fn`` over ``xs`` into a :class:`SweepResult`."""
    if not xs:
        raise ConfigurationError("xs must be non-empty")
    result = SweepResult(label=label, x_name=x_name, y_name=y_name)
    for x in xs:
        result.add(float(x), float(fn(x)))
    return result


def crossover_x(result: SweepResult, threshold: float) -> float:
    """First x where the series crosses above/below ``threshold``.

    Linear interpolation between the bracketing points; raises if the
    series never crosses.
    """
    pts = result.points
    if len(pts) < 2:
        raise ConfigurationError("need at least 2 points to find a crossover")
    for a, b in zip(pts, pts[1:]):
        if (a.y - threshold) * (b.y - threshold) <= 0 and a.y != b.y:
            frac = (threshold - a.y) / (b.y - a.y)
            return a.x + frac * (b.x - a.x)
    raise ConfigurationError(
        f"series {result.label!r} never crosses {threshold}"
    )


def monotone_fraction(ys: Sequence[float], increasing: bool = True) -> float:
    """Fraction of consecutive pairs obeying the expected monotonicity.

    Used by shape checks: noisy Monte-Carlo curves need not be strictly
    monotone, but most steps should move the right way.
    """
    if len(ys) < 2:
        raise ConfigurationError("need at least 2 values")
    good = 0
    for a, b in zip(ys, ys[1:]):
        if (b >= a) == increasing or a == b:
            good += 1
    return good / (len(ys) - 1)
