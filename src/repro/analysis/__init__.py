"""Analytic models, sweeps, and report rendering."""

from repro.analysis.ber import (
    CorrelationRangeModel,
    DownlinkDetectionModel,
    majority_vote_ber,
    measurement_error_probability,
    q_function,
    q_inverse,
    uplink_ber,
)
from repro.analysis.report import (
    format_table,
    log_sparkline,
    paper_vs_measured,
    render_series,
)
from repro.analysis.sweep import (
    SweepPoint,
    SweepResult,
    crossover_x,
    monotone_fraction,
    sweep,
)
from repro.analysis.throughput import (
    DcfTiming,
    saturation_throughput_bps,
    single_station_throughput_bps,
    transmission_probability,
)

__all__ = [
    "CorrelationRangeModel",
    "DcfTiming",
    "DownlinkDetectionModel",
    "SweepPoint",
    "SweepResult",
    "crossover_x",
    "format_table",
    "log_sparkline",
    "majority_vote_ber",
    "measurement_error_probability",
    "monotone_fraction",
    "paper_vs_measured",
    "q_function",
    "q_inverse",
    "render_series",
    "saturation_throughput_bps",
    "single_station_throughput_bps",
    "sweep",
    "transmission_probability",
    "uplink_ber",
]
