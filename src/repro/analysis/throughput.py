"""Analytic 802.11 DCF throughput (Bianchi's model).

The MAC simulator is a substrate the paper's results depend on, so it
deserves independent validation: Bianchi's classic fixed-point model
[Bianchi 2000] predicts DCF saturation throughput from first
principles. `benchmarks/test_substrate_validation.py` checks the
event-driven simulator against it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.mac.dcf import CW_MIN, CW_MAX
from repro.mac.packets import ACK_BYTES, BASIC_RATE_BPS, DATA_HEADER_BYTES
from repro.phy import constants
from repro.phy.ofdm import OfdmPacket


@dataclass(frozen=True)
class DcfTiming:
    """Airtime components of one DCF exchange."""

    slot_s: float = constants.SLOT_TIME_S
    sifs_s: float = constants.SIFS_S
    difs_s: float = constants.DIFS_S

    def data_airtime_s(self, payload_bytes: int, rate_bps: float) -> float:
        return OfdmPacket(
            payload_bytes + DATA_HEADER_BYTES, rate_bps
        ).airtime_s

    def ack_airtime_s(self) -> float:
        return OfdmPacket(ACK_BYTES, BASIC_RATE_BPS).airtime_s

    def success_slot_s(self, payload_bytes: int, rate_bps: float) -> float:
        """Busy time of one successful exchange."""
        return (
            self.data_airtime_s(payload_bytes, rate_bps)
            + self.sifs_s
            + self.ack_airtime_s()
            + self.difs_s
        )

    def collision_slot_s(self, payload_bytes: int, rate_bps: float) -> float:
        """Busy time wasted by a collision (no ACK follows)."""
        return self.data_airtime_s(payload_bytes, rate_bps) + self.difs_s


def _backoff_stages(cw_min: int = CW_MIN, cw_max: int = CW_MAX) -> int:
    """Number of doubling stages between CW_MIN and CW_MAX."""
    stages = 0
    cw = cw_min
    while cw < cw_max:
        cw = (cw + 1) * 2 - 1
        stages += 1
    return stages


def transmission_probability(n_stations: int, cw_min: int = CW_MIN,
                             cw_max: int = CW_MAX) -> float:
    """Bianchi's per-slot transmission probability tau (fixed point).

    Solves the coupled equations::

        tau = 2 (1 - 2p) / ((1 - 2p)(W + 1) + p W (1 - (2p)^m))
        p   = 1 - (1 - tau)^(n - 1)

    by damped iteration.
    """
    if n_stations < 1:
        raise ConfigurationError("n_stations must be >= 1")
    w = cw_min + 1
    m = _backoff_stages(cw_min, cw_max)
    if n_stations == 1:
        # No collisions: mean backoff is W0/2 slots; tau = 2/(W+1).
        return 2.0 / (w + 1.0)
    tau = 0.1
    for _ in range(10_000):
        p = 1.0 - (1.0 - tau) ** (n_stations - 1)
        denom = (1.0 - 2.0 * p) * (w + 1.0) + p * w * (1.0 - (2.0 * p) ** m)
        new_tau = 2.0 * (1.0 - 2.0 * p) / denom if denom > 0 else 1e-6
        new_tau = min(max(new_tau, 1e-9), 0.999)
        if abs(new_tau - tau) < 1e-12:
            tau = new_tau
            break
        tau = 0.5 * tau + 0.5 * new_tau
    return tau


def saturation_throughput_bps(
    n_stations: int,
    payload_bytes: int = 1470,
    rate_bps: float = 54e6,
    timing: DcfTiming = DcfTiming(),
) -> float:
    """Application-payload saturation throughput of n contending stations.

    Bianchi's renewal-reward expression: the payload delivered per
    expected slot time, summed over the network.
    """
    if payload_bytes <= 0:
        raise ConfigurationError("payload_bytes must be positive")
    n = n_stations
    tau = transmission_probability(n)
    p_tr = 1.0 - (1.0 - tau) ** n
    p_s = (
        n * tau * (1.0 - tau) ** (n - 1) / p_tr if p_tr > 0 else 0.0
    )
    t_s = timing.success_slot_s(payload_bytes, rate_bps)
    t_c = timing.collision_slot_s(payload_bytes, rate_bps)
    sigma = timing.slot_s
    expected_slot = (
        (1.0 - p_tr) * sigma
        + p_tr * p_s * t_s
        + p_tr * (1.0 - p_s) * t_c
    )
    payload_bits = payload_bytes * 8
    return p_tr * p_s * payload_bits / expected_slot


def single_station_throughput_bps(
    payload_bytes: int = 1470,
    rate_bps: float = 54e6,
    timing: DcfTiming = DcfTiming(),
) -> float:
    """Closed-form throughput of one saturated station (no collisions).

    Each exchange costs the success slot plus the mean initial backoff
    of CW_MIN / 2 slots.
    """
    if payload_bytes <= 0:
        raise ConfigurationError("payload_bytes must be positive")
    per_frame = (
        timing.success_slot_s(payload_bytes, rate_bps)
        + (CW_MIN / 2.0) * timing.slot_s
    )
    return payload_bytes * 8 / per_frame
