"""Analytic BER models.

Fast closed-form companions to the Monte-Carlo simulators, used for
parameter sweeps, calibration, and the ablation benches that check the
simulation against theory:

* Gaussian Q-function single-measurement error,
* majority-vote BER over M measurements,
* correlation-decoder BER with sub-coherent integration efficiency
  (long codes integrate imperfectly because of drift and clock skew),
* the downlink peak-detection model behind Fig 17.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ConfigurationError


def q_function(x: float) -> float:
    """Gaussian tail probability Q(x) = P(N(0,1) > x)."""
    return 0.5 * math.erfc(x / math.sqrt(2.0))


def q_inverse(p: float, tol: float = 1e-12) -> float:
    """Inverse Q-function by bisection.

    Raises:
        ConfigurationError: for p outside (0, 0.5].
    """
    if not 0.0 < p <= 0.5:
        raise ConfigurationError(f"p must be in (0, 0.5], got {p}")
    lo, hi = 0.0, 40.0
    while hi - lo > tol:
        mid = 0.5 * (lo + hi)
        if q_function(mid) > p:
            lo = mid
        else:
            hi = mid
    return 0.5 * (lo + hi)


def measurement_error_probability(snr: float) -> float:
    """Per-measurement slicing error for decision SNR (mu/sigma)^2."""
    if snr < 0:
        raise ConfigurationError("snr must be >= 0")
    return q_function(math.sqrt(snr))


def majority_vote_ber(p: float, m: int) -> float:
    """Bit error rate of an M-measurement majority vote.

    Ties (even M) count as half an error. Exact binomial sum.
    """
    if not 0.0 <= p <= 1.0:
        raise ConfigurationError("p must be in [0, 1]")
    if m < 1:
        raise ConfigurationError("m must be >= 1")
    total = 0.0
    for k in range(m + 1):
        prob = math.comb(m, k) * p**k * (1.0 - p) ** (m - k)
        if 2 * k > m:
            total += prob
        elif 2 * k == m:
            total += 0.5 * prob
    # The binomial terms can sum to 1 + O(eps) in floating point.
    return min(max(total, 0.0), 1.0)


def uplink_ber(snr_per_measurement: float, packets_per_bit: int) -> float:
    """Short-range uplink BER: Q-function + majority vote."""
    p = measurement_error_probability(snr_per_measurement)
    return majority_vote_ber(p, packets_per_bit)


@dataclass(frozen=True)
class CorrelationRangeModel:
    """Correlation-decoder SNR model with sub-coherent integration.

    Ideal correlation over an L-chip code multiplies the per-chip SNR
    by L. Over long codes the real system integrates sub-coherently —
    channel drift, clock skew, and conditioning losses erode the gain —
    modelled as an efficiency ``eta(L) = eta0 / L**loss_exponent``, so
    the post-correlation SNR is::

        SNR_out = eta0 * L**(1 - loss_exponent) * M * snr_meas(d)

    Fitted to the paper's (L=20 @ 1.6 m, L=150 @ 2.1 m) anchors.

    Attributes:
        snr_at_reference: per-measurement decision SNR at the reference
            distance.
        reference_distance_m: anchor distance for the SNR model.
        distance_exponent: SNR decay exponent with tag-reader distance.
        packets_per_chip: measurements averaged per code chip.
        eta0: integration efficiency scale.
        loss_exponent: efficiency decay with code length.
    """

    snr_at_reference: float = 0.24
    reference_distance_m: float = 0.65
    distance_exponent: float = 2.0
    packets_per_chip: float = 30.0
    eta0: float = 2.2
    loss_exponent: float = 0.734

    def snr_per_measurement(self, distance_m: float) -> float:
        if distance_m <= 0:
            raise ConfigurationError("distance_m must be positive")
        return self.snr_at_reference * (
            self.reference_distance_m / distance_m
        ) ** self.distance_exponent

    def post_correlation_snr(self, distance_m: float, code_length: int) -> float:
        if code_length < 1:
            raise ConfigurationError("code_length must be >= 1")
        eta = self.eta0 / code_length**self.loss_exponent
        return (
            eta
            * code_length
            * self.packets_per_chip
            * self.snr_per_measurement(distance_m)
        )

    def ber(self, distance_m: float, code_length: int) -> float:
        return q_function(math.sqrt(self.post_correlation_snr(distance_m, code_length)))

    def required_code_length(
        self, distance_m: float, ber_target: float = 1e-2, max_length: int = 4096
    ) -> int:
        """Smallest L meeting the BER target at ``distance_m`` (Fig 20).

        Raises:
            ConfigurationError: if even ``max_length`` is insufficient.
        """
        if not 0 < ber_target < 0.5:
            raise ConfigurationError("ber_target must be in (0, 0.5)")
        needed = q_inverse(ber_target) ** 2
        for length in range(1, max_length + 1):
            if self.post_correlation_snr(distance_m, length) >= needed:
                return length
        raise ConfigurationError(
            f"no code length up to {max_length} reaches BER {ber_target} at "
            f"{distance_m} m"
        )


@dataclass(frozen=True)
class DownlinkDetectionModel:
    """Peak-detection downlink BER vs distance (Fig 17 shape).

    A '1' bit (one Wi-Fi packet) is detected when at least one OFDM
    envelope peak within the packet crosses the comparator threshold.
    With one independent peak opportunity per OFDM symbol (4 us) and a
    per-peak detection probability ``q(d) = exp(-(d/scale)**shape)``
    (Rayleigh-like tail of the peak amplitude against a threshold that
    grows with path loss), the miss probability is ``(1-q)**n``.

    '0' bits flip only on rare noise/interference events
    (``false_one_probability``), giving the short-range BER floor.

    Attributes:
        scale_m: calibrated distance scale.
        shape: calibrated tail exponent.
        symbol_duration_s: peak opportunity spacing (4 us OFDM symbol).
        false_one_probability: per-bit probability of a spurious '1'.
    """

    scale_m: float = 2.09
    shape: float = 2.0
    symbol_duration_s: float = 4e-6
    false_one_probability: float = 5e-6

    def peak_detection_probability(self, distance_m: float) -> float:
        if distance_m <= 0:
            raise ConfigurationError("distance_m must be positive")
        return math.exp(-((distance_m / self.scale_m) ** self.shape))

    def peaks_per_bit(self, bit_duration_s: float) -> int:
        if bit_duration_s <= 0:
            raise ConfigurationError("bit_duration_s must be positive")
        return max(1, int(bit_duration_s / self.symbol_duration_s))

    def miss_probability(self, distance_m: float, bit_duration_s: float) -> float:
        """P(a '1' bit is not detected)."""
        q = self.peak_detection_probability(distance_m)
        n = self.peaks_per_bit(bit_duration_s)
        return (1.0 - q) ** n

    def ber(self, distance_m: float, bit_duration_s: float) -> float:
        """BER with equiprobable bits."""
        miss = self.miss_probability(distance_m, bit_duration_s)
        return 0.5 * (miss + self.false_one_probability)

    def range_at_ber(
        self, bit_duration_s: float, ber_target: float = 1e-2,
        max_distance_m: float = 10.0,
    ) -> float:
        """Largest distance meeting the BER target (bisection)."""
        if not 0 < ber_target < 0.5:
            raise ConfigurationError("ber_target must be in (0, 0.5)")
        lo, hi = 0.01, max_distance_m
        if self.ber(lo, bit_duration_s) > ber_target:
            return 0.0
        if self.ber(hi, bit_duration_s) <= ber_target:
            return hi
        for _ in range(80):
            mid = 0.5 * (lo + hi)
            if self.ber(mid, bit_duration_s) <= ber_target:
                lo = mid
            else:
                hi = mid
        return lo
