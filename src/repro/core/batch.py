"""Cross-packet batched uplink decoding (§3.2/§3.3 at batch scale).

The scalar :class:`~repro.core.uplink_decoder.UplinkDecoder` pays its
Python, observability, and per-call numpy overhead once per packet.
This module stacks K packets' conditioned CSI streams into one
``(K, samples, channels)`` ndarray and runs the pipeline across the
whole batch:

* moving-average conditioning via one batched ``cumsum`` over the
  packed array (window gathers fused through ``np.take`` into reusable
  scratch buffers),
* preamble search through
  :func:`repro.core.subchannel.correlation_matrix_batch`,
* expected-chip evaluation as one elementwise pass over the packed
  timestamp matrix (gathered through a cached chip table),
* top-``good_count`` sub-channel selection via ``argpartition``,
* noise-variance-weighted MRC with the weight math batched across the
  selected sub-channels of every packet at once,
* hysteresis slicing as a batched forward-fill
  (``np.maximum.accumulate``), and
* majority voting via ``np.add.at`` scatter-adds.

**Bit-identity contract.**  Every decode produced here is bitwise
identical to the scalar pipeline — bits, margins, selected
sub-channels, and forensics stage records (the unit/property suites
hold an equality oracle over all of it).  Three rules make that true:

1. Integer and elementwise float work (searchsorted, chip indexing,
   weight signs, hysteresis, majority counts) is batched freely —
   results do not depend on array shape.
2. Floating-point reductions over the *sample* axis (conditioning
   scale, per-bit thresholds) batch only because numpy reduces a
   strided axis in sequential index order and a contiguous axis with
   length-determined pairwise blocking — either way the summation
   order depends on the reduction length alone, which the batch
   preserves.  When packet lengths are ragged those reductions fall
   back to per-item views with the exact shape the scalar call sees.
3. Reductions whose length differs per item even at equal packet
   counts (the preamble-masked correlation mean and noise variance)
   always run per item, on the same gathered rows the scalar pipeline
   builds.

Sub-channel selection uses an ``argpartition`` fast path and falls
back to the scalar ``argsort`` selector whenever |correlation| values
tie (fault plans that zero channels create exact ties, and the
selected *order* feeds the combiner's matrix-vector product).

Observability: batched decodes emit one ``uplink.decode_batch`` span
plus the scalar path's counters (``uplink.decodes``,
``uplink.nonfinite.repaired``, ``uplink.degradation.rssi_fallbacks``);
the per-decode histogram/gauge emissions of the scalar path are
intentionally skipped on the batch hot path.  Forensics stage records
are replayed per item and match the scalar records exactly.

The decoder keeps per-shape scratch buffers (a few MB at serve
shapes) so steady-state batches allocate almost nothing; instances are
therefore not thread-safe, matching the scalar decoder's contract.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro import obs
from repro.obs import forensics
from repro.obs.caches import register_cache
from repro.core import combining, conditioning, slicer, subchannel
from repro.core.uplink_decoder import (
    UplinkDecodeResult,
    UplinkDecoder,
    UplinkDecoderConfig,
)
from repro.errors import ConfigurationError, DecodeError, PreambleNotFound
from repro.measurement import MeasurementStream

__all__ = [
    "BatchItem",
    "BatchOutcome",
    "BatchedUplinkDecoder",
    "BatchDecodeTask",
    "run_batch_decode_task",
]


# -- cached templates ---------------------------------------------------------

@lru_cache(maxsize=64)
def _chip_table(preamble_bits: Tuple[float, ...]) -> np.ndarray:
    """Chip template with an out-of-preamble sentinel appended.

    The batched expected-chip pass gathers through this table with a
    sentinel index for samples outside the preamble, replacing the
    scalar path's boolean scatter.  Read-only: shared across batches.
    """
    from repro.core.barker import bits_to_chips

    chips = bits_to_chips(preamble_bits)
    table = np.concatenate([chips, [0.0]])
    table.flags.writeable = False
    return table


@lru_cache(maxsize=64)
def _index_grid(n: int) -> np.ndarray:
    """Read-only ``arange(n)`` row used by the batched forward-fill.

    One grid per padded batch width; cached because serve micro-batches
    re-use the same shapes continuously.
    """
    grid = np.arange(n)
    grid.flags.writeable = False
    return grid


register_cache("core.batch_chip_table", _chip_table)
register_cache("core.batch_index_grid", _index_grid)


# -- public item/outcome types ------------------------------------------------

@dataclass(frozen=True)
class BatchItem:
    """One packet's decode request inside a batch.

    Mirrors the arguments of :meth:`UplinkDecoder.decode_bits`.
    """

    stream: MeasurementStream
    num_bits: int
    bit_duration_s: float
    mode: str = "csi"
    start_time_s: Optional[float] = None


@dataclass(frozen=True)
class BatchOutcome:
    """Per-item decode result or the exception the scalar path raises."""

    result: Optional[UplinkDecodeResult] = None
    error: Optional[Exception] = None

    @property
    def ok(self) -> bool:
        return self.error is None


# -- internal per-item state --------------------------------------------------

@dataclass
class _Lane:
    """Mutable per-item pipeline state inside one decode_batch call."""

    index: int
    num_bits: int
    bit_duration_s: float
    requested_mode: str
    start_time_s: Optional[float]
    mode: str = ""
    matrix: Optional[np.ndarray] = None
    repaired: int = 0
    n: int = 0
    error: Optional[Exception] = None
    pre_record: bool = False   # error raised before the forensics record opens
    stages: List[Tuple[str, Dict[str, Any]]] = field(default_factory=list)
    # group-local fields
    slot: int = -1
    normalized: Optional[np.ndarray] = None
    timestamps: Optional[np.ndarray] = None
    detection: Optional[subchannel.PreambleDetection] = None
    sel_rows: Optional[np.ndarray] = None    # preamble-masked normalized rows
    sel_chips: Optional[np.ndarray] = None   # matching nonzero chips
    good: Optional[np.ndarray] = None
    variances: Optional[np.ndarray] = None
    weights: Optional[combining.CombinerWeights] = None
    combined: Optional[np.ndarray] = None
    thresholds: Optional[slicer.HysteresisThresholds] = None
    data_start: float = float("nan")
    last_needed: float = float("nan")
    sliced: Optional[slicer.SlicedBits] = None

    def fail(self, exc: Exception) -> None:
        self.error = exc

    @property
    def live(self) -> bool:
        return self.error is None


def _select_good(correlations: np.ndarray, count: int) -> np.ndarray:
    """Top-``count`` channels by |correlation| via ``argpartition``.

    Bitwise-identical to :func:`subchannel.select_good_subchannels`:
    when the top set is free of ties (the clean-stream case) the
    partition + in-set descending sort reproduces the scalar
    ``argsort`` prefix exactly; any tie at or across the selection
    boundary falls back to the scalar selector, because tied |values|
    make the *order* an implementation detail of the sort and the
    order feeds the combiner.
    """
    corr = np.asarray(correlations, dtype=float)
    count = min(count, len(corr))
    if count >= len(corr):
        return subchannel.select_good_subchannels(corr, count)
    magnitude = np.abs(corr)
    part = np.argpartition(-magnitude, count)
    top = part[:count]
    vals = magnitude[top]
    order = np.argsort(-vals)
    ranked = vals[order]
    distinct = bool(np.all(ranked[:-1] > ranked[1:])) if count > 1 else True
    if distinct and magnitude[part[count]] < ranked[-1]:
        return top[order]
    return subchannel.select_good_subchannels(corr, count)


class BatchedUplinkDecoder:
    """Decodes many tag transmissions in one batched pipeline pass.

    Wraps a scalar :class:`UplinkDecoder` for mode resolution (CSI →
    RSSI degradation, sanitize policy) and for the per-source
    conditioning path, which stays scalar.
    """

    def __init__(self, config: Optional[UplinkDecoderConfig] = None) -> None:
        self.scalar = UplinkDecoder(config)
        self.config = self.scalar.config
        #: Per-shape scratch arrays, reused across decode calls.
        self._buffers: Dict[Tuple[int, int, int], Dict[str, np.ndarray]] = {}

    # -- entry points ---------------------------------------------------------

    def decode_batch(self, items: Sequence[BatchItem]) -> List[BatchOutcome]:
        """Decode every item, returning per-item results or errors.

        The scalar pipeline raises per decode; the batch API instead
        captures each item's exception in its :class:`BatchOutcome`
        (same type and message the scalar call would raise) so one bad
        packet cannot take down the rest of the batch.
        """
        if self.config.per_source_conditioning:
            # Per-source conditioning re-interleaves per-transmitter
            # segments; batching buys nothing there, so defer to the
            # scalar path wholesale.
            return [self._scalar_outcome(item) for item in items]
        with obs.span("uplink.decode_batch", items=len(items)), \
                obs.profile("uplink.decode_batch"):
            lanes = [self._resolve_lane(i, item)
                     for i, item in enumerate(items)]
            for group in self._group(lanes):
                self._decode_group(group)
            self._finalize_obs(lanes)
            if obs.recording_enabled():
                for lane in lanes:
                    self._replay_forensics(lane)
            return [self._outcome(lane) for lane in lanes]

    def decode_arrays(
        self,
        matrices: Sequence[np.ndarray],
        timestamps: Sequence[np.ndarray],
        num_bits: Sequence[int],
        bit_durations_s: Sequence[float],
        modes: Sequence[str],
        start_times_s: Sequence[Optional[float]],
    ) -> List[BatchOutcome]:
        """Array-level entry: decode pre-resolved measurement matrices.

        Callers (the zero-copy engine task) have already picked the
        effective mode and sanitized each matrix; this skips the
        stream-level resolution and runs the packed pipeline directly.
        """
        lanes = []
        for i in range(len(matrices)):
            lane = _Lane(
                index=i,
                num_bits=int(num_bits[i]),
                bit_duration_s=float(bit_durations_s[i]),
                requested_mode=modes[i],
                start_time_s=(
                    None if start_times_s[i] is None
                    else float(start_times_s[i])
                ),
            )
            matrix = np.asarray(matrices[i], dtype=float)
            lane.mode = modes[i]
            lane.matrix = matrix
            lane.timestamps = np.asarray(timestamps[i], dtype=float)
            lane.n = matrix.shape[0]
            if lane.n == 0:
                lane.fail(DecodeError("empty measurement stream"))
                lane.pre_record = True
            elif lane.num_bits < 1:
                lane.fail(ConfigurationError("num_bits must be >= 1"))
                lane.pre_record = True
            lanes.append(lane)
        with obs.span("uplink.decode_batch", items=len(lanes)), \
                obs.profile("uplink.decode_batch"):
            for group in self._group(lanes):
                self._decode_group(group)
            self._finalize_obs(lanes)
            if obs.recording_enabled():
                for lane in lanes:
                    self._replay_forensics(lane)
        return [self._outcome(lane) for lane in lanes]

    # -- resolution -----------------------------------------------------------

    def _scalar_outcome(self, item: BatchItem) -> BatchOutcome:
        try:
            return BatchOutcome(result=self.scalar.decode_bits(
                item.stream, item.num_bits, item.bit_duration_s,
                mode=item.mode, start_time_s=item.start_time_s,
            ))
        except Exception as exc:  # mirror scalar raise as a captured error
            return BatchOutcome(error=exc)

    def _resolve_lane(self, index: int, item: BatchItem) -> _Lane:
        lane = _Lane(
            index=index,
            num_bits=item.num_bits,
            bit_duration_s=item.bit_duration_s,
            requested_mode=item.mode,
            start_time_s=item.start_time_s,
        )
        # Scalar decode_bits raises these before opening its forensics
        # record, so no record is replayed for them either.
        if len(item.stream) == 0:
            lane.fail(DecodeError("empty measurement stream"))
            lane.pre_record = True
            return lane
        if item.num_bits < 1:
            lane.fail(ConfigurationError("num_bits must be >= 1"))
            lane.pre_record = True
            return lane
        try:
            mode, matrix, repaired = self.scalar._resolve_matrix(
                item.stream, item.mode
            )
        except Exception as exc:
            lane.fail(exc)
            return lane
        lane.mode = mode
        lane.matrix = matrix
        lane.repaired = repaired
        lane.timestamps = item.stream.timestamps
        lane.n = matrix.shape[0]
        return lane

    @staticmethod
    def _group(lanes: Sequence[_Lane]) -> List[List[_Lane]]:
        """Live lanes grouped by channel count (CSI 90 vs RSSI 3)."""
        groups: Dict[int, List[_Lane]] = {}
        for lane in lanes:
            if not lane.live:
                continue
            groups.setdefault(lane.matrix.shape[1], []).append(lane)
        return list(groups.values())

    def _scratch(
        self, k_count: int, n_max: int, channels: int
    ) -> Dict[str, np.ndarray]:
        """Reusable per-shape work arrays (uninitialised between calls)."""
        key = (k_count, n_max, channels)
        found = self._buffers.get(key)
        if found is None:
            if len(self._buffers) >= 4:
                self._buffers.clear()
            found = {
                "values": np.empty((k_count, n_max, channels)),
                "times": np.empty((k_count, n_max)),
                "prefix": np.empty((k_count, n_max + 1, channels)),
                "normalized": np.empty((k_count, n_max, channels)),
                "buf_a": np.empty((k_count, n_max, channels)),
                "buf_b": np.empty((k_count, n_max, channels)),
                "combined": np.empty((k_count, n_max)),
            }
            self._buffers[key] = found
        return found

    def _scratch_block(self, name: str, shape: Tuple[int, ...]) -> np.ndarray:
        """One reusable uninitialised block per (name, shape) key."""
        key = (name,) + shape
        found = self._buffers.get(key)
        if found is None:
            if len(self._buffers) >= 12:
                self._buffers.clear()
            found = np.empty(shape)
            self._buffers[key] = found
        return found

    # -- the packed pipeline --------------------------------------------------

    def _decode_group(self, lanes: List[_Lane]) -> None:
        cfg = self.config
        recording = obs.recording_enabled()
        channels = lanes[0].matrix.shape[1]
        n_max = max(lane.n for lane in lanes)
        uniform = all(lane.n == n_max for lane in lanes)
        buf = self._scratch(len(lanes), n_max, channels)
        values, times = buf["values"], buf["times"]
        for slot, lane in enumerate(lanes):
            lane.slot = slot
            values[slot, :lane.n] = lane.matrix
            times[slot, :lane.n] = lane.timestamps
            if lane.n < n_max:
                values[slot, lane.n:] = 0.0
                times[slot, lane.n:] = np.inf

        # Stage 1: conditioning.  One batched cumsum provides every
        # lane's prefix sums; window gathers run through np.take into
        # scratch, and the scale reduction batches over the (strided)
        # sample axis — or falls back to per-lane views when ragged.
        prefix = buf["prefix"]
        prefix[:, 0] = 0.0
        np.cumsum(values, axis=1, out=prefix[:, 1:])
        half = cfg.window_s / 2.0
        if uniform:
            self._condition_uniform(lanes, buf, half)
        else:
            self._condition_ragged(lanes, buf, half)
        normalized = buf["normalized"]
        for lane in lanes:
            lane.normalized = normalized[lane.slot, :lane.n]
            if recording:
                lane.stages.append(("condition", dict(
                    mode=lane.mode,
                    requested_mode=lane.requested_mode,
                    packets=lane.n,
                    channels=int(lane.matrix.shape[1]),
                    repaired=int(lane.repaired),
                    window_s=float(cfg.window_s),
                )))

        # Stage 2: preamble detection.  Scan lanes share one batched
        # correlation pass; then one elementwise pass yields every
        # lane's expected chips at its (given or detected) start, and
        # known-timing lanes correlate on the gathered preamble rows —
        # which stage 3 reuses for the noise variance.
        self._detect_scan(lanes, normalized, times, recording)
        chips = self._expected_chips(lanes, times)
        gathered = self._gather_preamble(lanes, chips, buf)
        self._correlate_known(lanes, channels, gathered, recording)

        # Stage 3+4: selection, noise variance, MRC weights, combine,
        # thresholds.  Per-lane where reduction lengths differ (masked
        # variance), batched where elementwise (weight math) or
        # length-uniform (threshold mean/std).
        self._combine_group(lanes, buf, uniform, gathered, recording)

        # Stage 5: hysteresis slicing, batched as a forward-fill of the
        # last defined decision (integer-exact), then span checks and
        # one scatter-add majority vote across the group.
        decisions = self._hysteresis(lanes, buf)
        preamble = cfg.preamble_bits
        for lane in lanes:
            if not lane.live:
                continue
            lane.data_start = (
                lane.detection.start_time_s
                + len(preamble) * lane.bit_duration_s
            )
            lane.last_needed = (
                lane.data_start + lane.num_bits * lane.bit_duration_s
            )
            last_t = lane.timestamps[-1]
            if last_t < lane.data_start:
                lane.fail(DecodeError(
                    "measurement stream ends before the data bits begin"
                ))
            elif last_t + lane.bit_duration_s < lane.last_needed:
                lane.fail(DecodeError(
                    f"stream covers only {last_t - lane.data_start:.3f}"
                    f" s of the {lane.num_bits * lane.bit_duration_s:.3f}"
                    f" s data span"
                ))
        self._majority_vote(lanes, decisions, times)
        if recording:
            for lane in lanes:
                if not lane.live:
                    continue
                lane.stages.append(("slice", dict(
                    low=lane.thresholds.low,
                    high=lane.thresholds.high,
                    support=lane.sliced.support,
                    erasures=len(lane.sliced.erasures),
                    preamble_len=len(preamble),
                    bit_margins=slicer.margin_profile(
                        lane.combined, lane.thresholds, lane.timestamps,
                        lane.data_start, lane.bit_duration_s, lane.num_bits,
                    ),
                )))

    def _condition_uniform(
        self, lanes: List[_Lane], buf: Dict[str, np.ndarray], half: float
    ) -> None:
        """Moving-average conditioning, fully batched (equal lengths)."""
        values, prefix = buf["values"], buf["prefix"]
        k_count, n_max, channels = values.shape
        times = buf["times"]
        if bool((times == times[0]).all()):
            # One helper schedule shared by the whole batch (the serve
            # micro-batching case): the window bounds are identical per
            # lane, so search once and broadcast.
            ts = lanes[0].timestamps
            lo1 = ts.searchsorted(ts - half, side="left")
            hi1 = ts.searchsorted(ts + half, side="right")
            lo = np.broadcast_to(lo1, (k_count, n_max))
            hi = np.broadcast_to(hi1, (k_count, n_max))
        else:
            lo = np.empty((k_count, n_max), dtype=np.intp)
            hi = np.empty((k_count, n_max), dtype=np.intp)
            for lane in lanes:
                ts = lane.timestamps
                lo[lane.slot] = ts.searchsorted(ts - half, side="left")
                hi[lane.slot] = ts.searchsorted(ts + half, side="right")
        flat = prefix.reshape(-1, channels)
        offsets = (_index_grid(k_count) * (n_max + 1))[:, None]
        work, mag = buf["buf_a"], buf["buf_b"]
        np.take(flat, (hi + offsets).ravel(), axis=0,
                out=work.reshape(-1, channels))
        np.take(flat, (lo + offsets).ravel(), axis=0,
                out=mag.reshape(-1, channels))
        np.subtract(work, mag, out=work)
        counts = (hi - lo).astype(float)
        np.divide(work, counts[:, :, None], out=work)       # baseline
        np.subtract(values, work, out=work)                 # zero-mean
        np.abs(work, out=mag)
        scale = mag.mean(axis=1)
        safe = np.where(scale > 0, scale, 1.0)
        np.divide(work, safe[:, None, :], out=buf["normalized"])

    def _condition_ragged(
        self, lanes: List[_Lane], buf: Dict[str, np.ndarray], half: float
    ) -> None:
        """Per-lane conditioning on views (ragged packet counts)."""
        values, prefix = buf["values"], buf["prefix"]
        normalized = buf["normalized"]
        for lane in lanes:
            ts = lane.timestamps
            lo = np.searchsorted(ts, ts - half, side="left")
            hi = np.searchsorted(ts, ts + half, side="right")
            csum = prefix[lane.slot]
            counts = (hi - lo).astype(float)
            baseline = (csum[hi] - csum[lo]) / counts[:, None]
            zero_mean = values[lane.slot, :lane.n] - baseline
            scale = np.abs(zero_mean).mean(axis=0)
            safe = np.where(scale > 0, scale, 1.0)
            normalized[lane.slot, :lane.n] = zero_mean / safe
            # Scan correlation prefix-sums over the packed rows, so the
            # padding must stay zero.
            normalized[lane.slot, lane.n:] = 0.0

    def _detect_scan(
        self,
        lanes: List[_Lane],
        normalized: np.ndarray,
        times: np.ndarray,
        recording: bool,
    ) -> None:
        cfg = self.config
        scan_lanes: List[_Lane] = []
        candidates: List[np.ndarray] = []
        for lane in lanes:
            if not lane.live or lane.start_time_s is not None:
                continue
            try:
                candidates.append(self._scan_candidates(lane))
                scan_lanes.append(lane)
            except Exception as exc:
                lane.fail(exc)
        if not scan_lanes:
            return
        slots = [lane.slot for lane in scan_lanes]
        corr_per_lane = subchannel.correlation_matrix_batch(
            normalized[slots],
            times[slots],
            np.array([lane.n for lane in scan_lanes]),
            candidates,
            cfg.preamble_bits,
            np.array([lane.bit_duration_s for lane in scan_lanes]),
        )
        for lane, cand, corr_matrix in zip(
            scan_lanes, candidates, corr_per_lane
        ):
            scores = np.abs(corr_matrix).sum(axis=1)
            best = int(np.argmax(scores))
            best_score = float(scores[best])
            if best_score < cfg.min_detection_score:
                lane.fail(PreambleNotFound(
                    f"best correlation score {best_score:.3f} below "
                    f"threshold {cfg.min_detection_score:.3f}"
                ))
                continue
            lane.detection = subchannel.PreambleDetection(
                start_time_s=float(cand[best]),
                correlations=corr_matrix[best],
                score=best_score,
                threshold=cfg.min_detection_score,
            )
            self._record_detect(lane, "scan", recording)

    def _scan_candidates(self, lane: _Lane) -> np.ndarray:
        """Candidate frame starts, matching detect_preamble exactly."""
        cfg = self.config
        timestamps = lane.timestamps
        if lane.bit_duration_s <= 0:
            raise ConfigurationError("bit_duration_s must be positive")
        preamble_span = len(cfg.preamble_bits) * lane.bit_duration_s
        t_first, t_last = timestamps[0], timestamps[-1]
        if t_last - t_first < preamble_span:
            raise PreambleNotFound(
                f"stream spans {t_last - t_first:.3f} s, shorter than the "
                f"{preamble_span:.3f} s preamble"
            )
        step = cfg.search_step_fraction * lane.bit_duration_s
        return np.arange(t_first, t_last - preamble_span + step, step)

    def _record_detect(
        self, lane: _Lane, search: str, recording: bool
    ) -> None:
        if recording:
            lane.stages.append(("detect", dict(
                search=search,
                start_time_s=lane.detection.start_time_s,
                score=lane.detection.score,
                threshold=lane.detection.threshold,
                correlations=lane.detection.correlations,
            )))

    def _expected_chips(
        self, lanes: List[_Lane], times: np.ndarray
    ) -> np.ndarray:
        """Expected chip per packed sample for every live lane.

        One elementwise pass; gathered through the cached sentinel
        table.  Cell values match expected_chips_at exactly: the
        elementwise float ops see identical operands, and out-of-range
        samples (including the +inf padding) read the 0.0 sentinel.
        """
        cfg = self.config
        table = _chip_table(tuple(float(b) for b in cfg.preamble_bits))
        num_chips = len(table) - 1
        k_count = times.shape[0]
        starts = np.full(k_count, np.nan)
        bits = np.ones(k_count)
        for lane in lanes:
            if not lane.live:
                continue
            starts[lane.slot] = (
                lane.start_time_s if lane.start_time_s is not None
                else lane.detection.start_time_s
            )
            bits[lane.slot] = lane.bit_duration_s
        with np.errstate(invalid="ignore"):
            idx = np.floor((times - starts[:, None]) / bits[:, None])
            valid = (idx >= 0) & (idx < num_chips)
        gather = np.where(valid, idx, num_chips).astype(int)
        return table[gather]

    def _gather_preamble(
        self, lanes: List[_Lane], chips: np.ndarray, buf: Dict[str, np.ndarray]
    ) -> Optional[Dict[str, Any]]:
        """Gather each lane's preamble rows once, for corr + variance.

        The scalar pipeline gathers these rows twice (correlate_at and
        estimate_noise_variance); both consume the identical selection,
        so one gather serves both stages.  When every live lane selects
        the same number of preamble rows (the common case: one helper
        schedule shared across the batch), the gathers fuse into a
        single flat ``np.take`` and the per-row views land in one
        ``(lanes, rows, channels)`` block — returned so the correlation
        and variance reductions can batch over it (axis-1 reductions
        match the per-lane axis-0 ones bitwise).
        """
        live = [lane for lane in lanes if lane.live]
        if not live:
            return None
        normalized = buf["normalized"]
        k_count, n_max, channels = normalized.shape
        # Padding and dead-lane cells hold the 0.0 sentinel, so one
        # flat nonzero yields every live lane's in-preamble positions.
        mask = chips != 0
        counts = mask.sum(axis=1)
        live_counts = {int(counts[lane.slot]) for lane in live}
        if len(live_counts) != 1 or min(live_counts) == 0:
            for lane in live:
                lane_chips = chips[lane.slot, :lane.n]
                pos = np.nonzero(lane_chips != 0)[0]
                lane.sel_rows = lane.normalized[pos]
                lane.sel_chips = lane_chips[pos]
            return None
        m = live_counts.pop()
        flat_idx = np.flatnonzero(mask)
        sel = self._scratch_block("sel", (len(live), m, channels))
        np.take(
            normalized.reshape(-1, channels), flat_idx, axis=0,
            out=sel.reshape(-1, channels),
        )
        sel_chips = chips.reshape(-1).take(flat_idx).reshape(
            len(live), m
        )
        for i, lane in enumerate(live):
            lane.sel_rows = sel[i]
            lane.sel_chips = sel_chips[i]
        return {"lanes": live, "sel": sel, "chips": sel_chips, "m": m}

    def _correlate_known(
        self,
        lanes: List[_Lane],
        channels: int,
        gathered: Optional[Dict[str, Any]],
        recording: bool,
    ) -> None:
        """correlate_at for known-timing lanes, on the gathered rows."""
        known = [
            lane for lane in lanes
            if lane.live and lane.start_time_s is not None
        ]
        if not known:
            return
        if gathered is not None and len(known) == len(gathered["lanes"]):
            # All live lanes share known timing and a uniform row
            # count: one batched multiply + axis-1 sum replaces the
            # per-lane correlate (identical summation order per lane).
            sel, sel_chips = gathered["sel"], gathered["chips"]
            prod = self._scratch_block("work", sel.shape)
            np.multiply(sel, sel_chips[:, :, None], out=prod)
            corr_all = np.add.reduce(prod, axis=1) / gathered["m"]
            gathered["corr"] = corr_all
            scores = np.abs(corr_all).sum(axis=1)
            for i, lane in enumerate(gathered["lanes"]):
                lane.detection = subchannel.PreambleDetection(
                    start_time_s=lane.start_time_s,
                    correlations=corr_all[i],
                    score=float(scores[i]),
                    threshold=0.0,
                )
                self._record_detect(lane, "known", recording)
            return
        for lane in known:
            if len(lane.sel_chips) == 0:
                corr = np.zeros(channels)
            else:
                # (sel * chips).mean(axis=0) via the exact _mean op
                # sequence (pairwise sum, then true_divide by count).
                prod = lane.sel_rows * lane.sel_chips[:, None]
                corr = np.add.reduce(prod, axis=0) / prod.shape[0]
            lane.detection = subchannel.PreambleDetection(
                start_time_s=lane.start_time_s,
                correlations=corr,
                score=float(np.abs(corr).sum()),
                threshold=0.0,
            )
            self._record_detect(lane, "known", recording)

    def _select_group(
        self,
        lanes: List[_Lane],
        gathered: Optional[Dict[str, Any]] = None,
    ) -> None:
        """Top-``good_count`` selection, batched across the group.

        Every lane in a group shares the channel count and (because
        groups never mix CSI with RSSI mode) the ``good_count``, so one
        ``argpartition``/``argsort`` pass along ``axis=1`` serves all
        lanes — numpy runs the identical per-row algorithm the 1-D fast
        path uses.  Rows with |correlation| ties at the selection
        boundary fall back to the scalar selector, as in
        :func:`_select_good`.
        """
        cfg = self.config
        live = [lane for lane in lanes if lane.live]
        if not live:
            return
        count = 1 if live[0].mode == "rssi" else cfg.good_count
        channels = len(live[0].detection.correlations)
        if count >= channels or len(live) == 1:
            for lane in live:
                lane.good = _select_good(lane.detection.correlations, count)
            return
        if (
            gathered is not None and "corr" in gathered
            and len(gathered["lanes"]) == len(live)
            and all(a is b for a, b in zip(gathered["lanes"], live))
        ):
            # Each lane's correlations are views of this stack already.
            magnitude = np.abs(gathered["corr"])
        else:
            magnitude = np.abs(np.stack(
                [lane.detection.correlations for lane in live]
            ))
        part = np.argpartition(-magnitude, count, axis=1)
        top = part[:, :count]
        # Row-fancy gathers instead of take_along_axis: identical
        # values, none of the index-grid wrapper overhead.
        rows = _index_grid(len(live))[:, None]
        vals = magnitude[rows, top]
        order = np.argsort(-vals, axis=1)
        ranked = vals[rows, order]
        boundary = magnitude[rows[:, 0], part[:, count]]
        if count > 1:
            distinct = np.all(ranked[:, :-1] > ranked[:, 1:], axis=1)
        else:
            distinct = np.ones(len(live), dtype=bool)
        clean = distinct & (boundary < ranked[:, -1])
        for i, lane in enumerate(live):
            if clean[i]:
                lane.good = top[i][order[i]]
            else:
                lane.good = subchannel.select_good_subchannels(
                    lane.detection.correlations, count
                )

    def _combine_group(
        self,
        lanes: List[_Lane],
        buf: Dict[str, np.ndarray],
        uniform: bool,
        gathered: Optional[Dict[str, Any]],
        recording: bool,
    ) -> None:
        cfg = self.config
        self._select_group(lanes, gathered)
        if gathered is not None and gathered["m"] >= 2 and all(
            lane.live for lane in gathered["lanes"]
        ):
            # Uniform preamble-row count: the whole group's noise
            # variance batches as axis-1 reductions over the gathered
            # block (per-lane summation order unchanged).
            sel, sel_chips, m = (
                gathered["sel"], gathered["chips"], gathered["m"]
            )
            live = gathered["lanes"]
            corr_stack = gathered.get("corr")
            if corr_stack is None:
                corr_stack = np.stack(
                    [lane.detection.correlations for lane in live]
                )
            residual = self._scratch_block("work", sel.shape)
            np.multiply(sel_chips[:, :, None], corr_stack[:, None, :],
                        out=residual)
            np.subtract(sel, residual, out=residual)
            mean = np.add.reduce(residual, axis=1) / m
            np.subtract(residual, mean[:, None, :], out=residual)
            np.multiply(residual, residual, out=residual)
            var_all = np.maximum(
                np.add.reduce(residual, axis=1) / m, combining.MIN_VARIANCE
            )
            gathered["var"] = var_all
            for i, lane in enumerate(live):
                lane.variances = var_all[i]
        else:
            for lane in lanes:
                if not lane.live:
                    continue
                corr = lane.detection.correlations
                if len(lane.sel_chips) < 2:
                    lane.fail(ConfigurationError(
                        "need at least 2 preamble packets to estimate "
                        "noise variance"
                    ))
                    continue
                # residual.var(axis=0), spelled as the op sequence
                # numpy's _var runs (sum/divide/subtract/multiply/sum)
                # — the method wrapper costs ~20us per call at
                # preamble shapes.
                residual = lane.sel_rows - lane.sel_chips[:, None] * corr
                m = residual.shape[0]
                mean = np.add.reduce(residual, axis=0) / m
                np.subtract(residual, mean, out=residual)
                np.multiply(residual, residual, out=residual)
                lane.variances = np.maximum(
                    np.add.reduce(residual, axis=0) / m,
                    combining.MIN_VARIANCE,
                )
        live = [lane for lane in lanes if lane.live]
        if not live:
            return
        good_counts = {len(lane.good) for lane in live}
        if len(good_counts) == 1:
            # Elementwise weight math batched over (lanes, selected):
            # identical per row to make_weights on the same indices.
            stacked = (
                gathered is not None
                and "corr" in gathered and "var" in gathered
                and len(gathered["lanes"]) == len(live)
                and all(a is b for a, b in zip(gathered["lanes"], live))
            )
            good_all = np.stack([lane.good for lane in live])
            if stacked:
                rows = _index_grid(len(live))[:, None]
                corr_sel = gathered["corr"][rows, good_all]
                var_sel = gathered["var"][rows, good_all]
            else:
                corr_sel = np.stack([
                    lane.detection.correlations[lane.good] for lane in live
                ])
                var_sel = np.stack([
                    lane.variances[lane.good] for lane in live
                ])
            signs = np.sign(corr_sel)
            signs[signs == 0] = 1.0
            weights_all = signs / np.maximum(var_sel, combining.MIN_VARIANCE)
            unit_all = weights_all / np.abs(weights_all).sum(axis=1)[:, None]
            for i, lane in enumerate(live):
                lane.weights = combining.CombinerWeights(
                    channel_indices=lane.good, weights=weights_all[i]
                )
                # The column pick must stay the scalar path's exact
                # fancy-index copy: BLAS selects kernels by buffer
                # alignment, so a take_along_axis block view produces
                # ULP-different matvec results.
                lane.combined = lane.normalized[:, lane.good] @ unit_all[i]
        else:
            for lane in live:
                lane.weights = combining.make_weights(
                    lane.detection.correlations, lane.variances, lane.good
                )
                lane.combined = combining.combine(
                    lane.normalized, lane.weights
                )
        cmb = buf["combined"]
        filled = np.zeros(cmb.shape[0], dtype=bool)
        for lane in live:
            cmb[lane.slot, :lane.n] = lane.combined
            cmb[lane.slot, lane.n:] = 0.0
            filled[lane.slot] = True
        cmb[~filled] = 0.0
        if uniform:
            # Threshold mean/std batch bit-exactly: each row is
            # contiguous with the same length the scalar 1-D call sees.
            mu = cmb.mean(axis=1)
            sigma = cmb.std(axis=1)
            low = mu - cfg.hysteresis_width * sigma
            high = mu + cfg.hysteresis_width * sigma
            for lane in live:
                try:
                    lane.thresholds = slicer.HysteresisThresholds(
                        low=float(low[lane.slot]),
                        high=float(high[lane.slot]),
                    )
                except Exception as exc:
                    lane.fail(exc)
        else:
            for lane in live:
                try:
                    lane.thresholds = slicer.compute_thresholds(
                        lane.combined, cfg.hysteresis_width
                    )
                except Exception as exc:
                    lane.fail(exc)
        if recording:
            for lane in live:
                if not lane.live:
                    continue
                lane.stages.append(("select", subchannel.selection_diagnostics(
                    lane.detection.correlations, lane.good
                )))
                lane.stages.append(("combine", dict(
                    noise_variances=lane.variances[lane.good],
                    **combining.weight_diagnostics(lane.weights),
                )))

    def _hysteresis(
        self, lanes: List[_Lane], buf: Dict[str, np.ndarray]
    ) -> np.ndarray:
        """Batched hysteresis_slice: forward-fill the last decision.

        A sample above ``high`` decides 1, below ``low`` decides 0, and
        dead-band samples repeat the previous decision — i.e. each
        output is the decision at the last *defined* sample, or the
        initial state 0.  ``np.maximum.accumulate`` over the defined
        indices computes exactly that, in integers.
        """
        combined = buf["combined"]
        k_count, n_max = combined.shape
        low = np.full(k_count, np.nan)
        high = np.full(k_count, np.nan)
        for lane in lanes:
            if lane.live:
                low[lane.slot] = lane.thresholds.low
                high[lane.slot] = lane.thresholds.high
        with np.errstate(invalid="ignore"):
            up = combined > high[:, None]
            down = combined < low[:, None]
        defined = up | down
        val = up.astype(int)
        grid = _index_grid(n_max)
        idx = np.where(defined, grid[None, :], -1)
        last = np.maximum.accumulate(idx, axis=1)
        filled = val[_index_grid(k_count)[:, None], np.maximum(last, 0)]
        return np.where(last >= 0, filled, 0)

    def _majority_vote(
        self,
        lanes: List[_Lane],
        decisions: np.ndarray,
        times: np.ndarray,
    ) -> None:
        """Batched majority_vote_bits via scatter-adds (integer exact)."""
        live = [lane for lane in lanes if lane.live]
        if not live:
            return
        k_count = times.shape[0]
        starts = np.full(k_count, np.nan)
        bits_d = np.ones(k_count)
        nbits = np.zeros(k_count, dtype=int)
        for lane in live:
            starts[lane.slot] = lane.data_start
            bits_d[lane.slot] = lane.bit_duration_s
            nbits[lane.slot] = lane.num_bits
        nb_max = int(nbits.max())
        with np.errstate(invalid="ignore"):
            bin_idx = np.floor((times - starts[:, None]) / bits_d[:, None])
            valid = (bin_idx >= 0) & (bin_idx < nbits[:, None])
        gather = np.where(valid, bin_idx, 0).astype(int)
        rows = np.nonzero(valid)
        flat = rows[0] * nb_max + gather[rows]
        size = k_count * nb_max
        # bincount instead of np.add.at: float64 sums of small ints are
        # exact, and bincount's single pass is ~10x the scatter's speed.
        ones = np.bincount(
            flat, weights=decisions[rows], minlength=size
        ).astype(int).reshape(k_count, nb_max)
        support = np.bincount(flat, minlength=size).reshape(k_count, nb_max)
        bit_out = np.where(support >= 1, (2 * ones >= support).astype(int), 0)
        for lane in live:
            nb = lane.num_bits
            support_k = support[lane.slot, :nb]
            lane.sliced = slicer.SlicedBits(
                bits=bit_out[lane.slot, :nb],
                support=support_k,
                erasures=np.flatnonzero(support_k == 0),
            )

    # -- epilogue -------------------------------------------------------------

    def _finalize_obs(self, lanes: Sequence[_Lane]) -> None:
        successes = sum(1 for lane in lanes if lane.live)
        if successes:
            obs.counter("uplink.decodes").inc(successes)
        for lane in lanes:
            if lane.repaired:
                obs.counter("uplink.nonfinite.repaired").inc(lane.repaired)

    def _replay_forensics(self, lane: _Lane) -> None:
        """Replay the lane's stage records as the scalar decode would.

        The scalar pipeline stages into a record as it computes; the
        batch pipeline computes first and replays after, which yields
        byte-identical records (same stages, same fields, same failure
        attribution) because ``ensure_record`` commits the failure from
        the in-flight exception type.
        """
        if lane.pre_record:
            return
        try:
            with forensics.ensure_record("uplink"):
                for name, fields in lane.stages:
                    forensics.stage(name, **fields)
                if lane.error is not None:
                    raise lane.error
        except Exception:
            pass

    def _outcome(self, lane: _Lane) -> BatchOutcome:
        if lane.error is not None:
            return BatchOutcome(error=lane.error)
        detection = lane.detection
        frame_lo, frame_hi = lane.timestamps.searchsorted(
            [detection.start_time_s, lane.last_needed]
        )
        return BatchOutcome(result=UplinkDecodeResult(
            bits=lane.sliced.bits,
            detection=detection,
            weights=lane.weights,
            combined=lane.combined,
            sliced=lane.sliced,
            mode=lane.mode,
            fallback_from=(
                lane.requested_mode if lane.mode != lane.requested_mode
                else None
            ),
            repaired_values=lane.repaired,
            frame_slice=(int(frame_lo), int(frame_hi)),
        ))


# -- zero-copy engine task ----------------------------------------------------

@dataclass(frozen=True)
class _SharedArrayRef:
    """Name/shape/dtype descriptor of an array parked in shared memory."""

    name: str
    shape: Tuple[int, ...]
    dtype: str


@dataclass(frozen=True)
class BatchDecodeTask:
    """Engine task: decode a packed batch of pre-resolved matrices.

    The packed ``matrices``/``timestamps`` arrays dominate the task's
    pickle size; :meth:`to_shared` parks them in
    ``multiprocessing.shared_memory`` segments and replaces them with
    name/shape/dtype descriptors so the pool ships bytes-free task
    stubs, and :meth:`from_shared` re-attaches zero-copy views on the
    worker side.  Both hooks are optional protocol methods recognised
    by :mod:`repro.sim.engine`; when shared memory is unavailable the
    task simply pickles inline.
    """

    matrices: Optional[np.ndarray]
    timestamps: Optional[np.ndarray]
    lengths: Tuple[int, ...]
    num_bits: Tuple[int, ...]
    bit_durations_s: Tuple[float, ...]
    modes: Tuple[str, ...]
    start_times_s: Tuple[Optional[float], ...]
    shared_refs: Tuple[_SharedArrayRef, ...] = ()

    @staticmethod
    def pack(
        items: Sequence[BatchItem], decoder: BatchedUplinkDecoder
    ) -> "BatchDecodeTask":
        """Resolve and pack stream items into an array-only task."""
        matrices = []
        stamps = []
        modes = []
        for item in items:
            mode, matrix, _ = decoder.scalar._resolve_matrix(
                item.stream, item.mode
            )
            matrices.append(matrix)
            stamps.append(item.stream.timestamps)
            modes.append(mode)
        n_max = max((m.shape[0] for m in matrices), default=0)
        channels = max((m.shape[1] for m in matrices), default=0)
        packed_m = np.zeros((len(items), n_max, channels))
        packed_t = np.full((len(items), n_max), np.inf)
        for i, (matrix, ts) in enumerate(zip(matrices, stamps)):
            packed_m[i, :matrix.shape[0], :matrix.shape[1]] = matrix
            packed_t[i, :len(ts)] = ts
        return BatchDecodeTask(
            matrices=packed_m,
            timestamps=packed_t,
            lengths=tuple(m.shape[0] for m in matrices),
            num_bits=tuple(item.num_bits for item in items),
            bit_durations_s=tuple(item.bit_duration_s for item in items),
            modes=tuple(modes),
            start_times_s=tuple(item.start_time_s for item in items),
        )

    def to_shared(self):
        """Export the packed arrays into shared-memory segments.

        Returns ``(task_stub, segments)``; the caller owns the segments
        and must close+unlink them once the task's result is collected.
        Any failure (no /dev/shm, permissions) falls back to the inline
        task with no segments.
        """
        try:
            from multiprocessing import shared_memory
            from dataclasses import replace

            segments = []
            refs = []
            for array in (self.matrices, self.timestamps):
                seg = shared_memory.SharedMemory(
                    create=True, size=max(1, array.nbytes)
                )
                view = np.ndarray(
                    array.shape, dtype=array.dtype, buffer=seg.buf
                )
                view[...] = array
                segments.append(seg)
                refs.append(_SharedArrayRef(
                    name=seg.name, shape=array.shape, dtype=str(array.dtype)
                ))
            stub = replace(
                self, matrices=None, timestamps=None, shared_refs=tuple(refs)
            )
            return stub, segments
        except Exception:
            return self, []

    def from_shared(self):
        """Re-attach shared segments as zero-copy array views.

        Returns ``(task, handles)``; the engine closes the handles
        after the task function returns.  Inline tasks pass through.
        """
        if not self.shared_refs:
            return self, []
        from multiprocessing import shared_memory
        from dataclasses import replace

        handles = []
        arrays = []
        for ref in self.shared_refs:
            seg = shared_memory.SharedMemory(name=ref.name)
            handles.append(seg)
            arrays.append(np.ndarray(
                ref.shape, dtype=np.dtype(ref.dtype), buffer=seg.buf
            ))
        task = replace(
            self, matrices=arrays[0], timestamps=arrays[1], shared_refs=()
        )
        return task, handles


def run_batch_decode_task(task: BatchDecodeTask) -> List[dict]:
    """Pool-side entry: decode a packed batch, return JSON-safe rows."""
    decoder = BatchedUplinkDecoder()
    outcomes = decoder.decode_arrays(
        [task.matrices[i, :n] for i, n in enumerate(task.lengths)],
        [task.timestamps[i, :n] for i, n in enumerate(task.lengths)],
        task.num_bits,
        task.bit_durations_s,
        task.modes,
        task.start_times_s,
    )
    rows = []
    for outcome in outcomes:
        if outcome.ok:
            rows.append({
                "ok": True,
                "bits": [int(b) for b in outcome.result.bits],
                "mode": outcome.result.mode,
            })
        else:
            rows.append({
                "ok": False,
                "error": type(outcome.error).__name__,
                "message": str(outcome.error),
            })
    return rows
