"""Single-bit uplink acknowledgments (§4.1).

"More generally, the Wi-Fi Backscatter tag could also transmit ACK
packets back to the Wi-Fi reader using the uplink communication. The
Wi-Fi Backscatter tag can reduce the overhead of the ACK packet by
dropping the preamble and the address fields, and transmitting a
single bit message."

With no preamble there is nothing to correlate against, but none is
needed: the reader knows exactly when the ACK slot starts (it follows
its own downlink message by a fixed turnaround), so detection reduces
to a binary hypothesis test — did the tag reflect during the slot, or
not? The detector conditions the measurement stream as usual, then
compares each channel's in-slot mean against its out-of-slot noise.
"""

from __future__ import annotations

from dataclasses import dataclass
import numpy as np

from repro import obs
from repro.core import conditioning
from repro.errors import ConfigurationError, DecodeError
from repro.measurement import MeasurementStream

#: Default ACK slot length, in tag bit periods. A few bits of sustained
#: reflection make the slot mean stand clear of per-packet noise while
#: staying far below the conditioning window.
DEFAULT_SLOT_BITS = 4


@dataclass(frozen=True)
class AckResult:
    """Outcome of an ACK slot test.

    Attributes:
        detected: the reader's decision.
        score: the detection statistic (max per-channel |z|).
        threshold: the decision threshold used.
        best_channel: channel index achieving the score.
    """

    detected: bool
    score: float
    threshold: float
    best_channel: int


class AckDetector:
    """Detects a preamble-less single-bit tag response at a known time.

    Attributes:
        threshold_sigmas: decision threshold on the per-channel z-score
            of the in-slot mean. With ~90 CSI channels, 4.5 sigma keeps
            the false-ACK probability per slot small while a real
            reflection (many sigma at working range) is detected
            reliably.
        slot_bits: tag bit periods the tag reflects for.
        window_s: conditioning moving-average window.
        nonfinite_policy: NaN/inf handling before conditioning (see
            :func:`repro.core.conditioning.sanitize`).
        empty_slot_ok: treat a measurement-less ACK slot (helper outage
            during the slot) as "no ACK heard" instead of raising
            :class:`DecodeError` — what an ARQ loop wants, since either
            way the reader retransmits.
    """

    def __init__(
        self,
        threshold_sigmas: float = 4.5,
        slot_bits: int = DEFAULT_SLOT_BITS,
        window_s: float = conditioning.DEFAULT_WINDOW_S,
        nonfinite_policy: str = "repair",
        empty_slot_ok: bool = False,
    ) -> None:
        if threshold_sigmas <= 0:
            raise ConfigurationError("threshold_sigmas must be positive")
        if slot_bits < 1:
            raise ConfigurationError("slot_bits must be >= 1")
        if nonfinite_policy not in conditioning.NONFINITE_POLICIES:
            raise ConfigurationError(
                f"nonfinite_policy must be one of "
                f"{conditioning.NONFINITE_POLICIES}"
            )
        self.threshold_sigmas = threshold_sigmas
        self.slot_bits = slot_bits
        self.window_s = window_s
        self.nonfinite_policy = nonfinite_policy
        self.empty_slot_ok = empty_slot_ok

    def detect(
        self,
        stream: MeasurementStream,
        slot_start_s: float,
        bit_duration_s: float,
        mode: str = "csi",
    ) -> AckResult:
        """Test for the tag's reflection during the agreed ACK slot.

        Args:
            stream: reader measurements spanning the slot plus context
                on both sides (the conditioning window needs history).
            slot_start_s: when the ACK slot begins.
            bit_duration_s: the tag's bit period.
            mode: "csi" or "rssi".

        Raises:
            DecodeError: when the slot contains no measurements.
        """
        if bit_duration_s <= 0:
            raise ConfigurationError("bit_duration_s must be positive")
        if len(stream) == 0:
            raise DecodeError("empty measurement stream")
        if mode == "csi":
            matrix = stream.flattened_csi()
        elif mode == "rssi":
            matrix = stream.rssi_matrix()
        else:
            raise ConfigurationError(f"unknown mode {mode!r}")
        timestamps = stream.timestamps
        matrix, repaired = conditioning.sanitize(matrix, self.nonfinite_policy)
        if repaired:
            obs.counter("ack.nonfinite.repaired").inc(repaired)
        cond = conditioning.condition(
            matrix, timestamps, self.window_s, nonfinite="propagate"
        )
        slot_end = slot_start_s + self.slot_bits * bit_duration_s
        in_slot = (timestamps >= slot_start_s) & (timestamps < slot_end)
        n = int(in_slot.sum())
        if n == 0:
            if self.empty_slot_ok:
                obs.counter("ack.slots.empty").inc()
                return AckResult(
                    detected=False,
                    score=0.0,
                    threshold=self.threshold_sigmas,
                    best_channel=-1,
                )
            raise DecodeError("no measurements in the ACK slot")
        out_slot = ~in_slot
        if int(out_slot.sum()) < 10 * n:
            raise DecodeError("too little context around the ACK slot")
        slot_mean = cond.normalized[in_slot].mean(axis=0)
        # Empirical null: the same n-sample window mean computed over
        # the out-of-slot region. Measurement noise is not i.i.d.
        # (glitches and drift are correlated), so the analytic
        # sigma/sqrt(n) scaling would understate the tail; sliding
        # window means capture the true distribution.
        outside = cond.normalized[out_slot]
        kernel = np.ones(n) / n
        window_means = np.apply_along_axis(
            lambda col: np.convolve(col, kernel, mode="valid"), 0, outside
        )
        null_std = np.maximum(window_means.std(axis=0), 1e-9)
        z = np.abs(slot_mean) / null_std
        best = int(np.argmax(z))
        score = float(z[best])
        return AckResult(
            detected=score > self.threshold_sigmas,
            score=score,
            threshold=self.threshold_sigmas,
            best_channel=best,
        )


def ack_slot_start(
    downlink_end_s: float, turnaround_bits: float, bit_duration_s: float
) -> float:
    """The agreed ACK slot start: a fixed turnaround after the query.

    Both sides derive this from the downlink message timing, which is
    how the slot needs no preamble or address.
    """
    if turnaround_bits < 0:
        raise ConfigurationError("turnaround_bits must be >= 0")
    if bit_duration_s <= 0:
        raise ConfigurationError("bit_duration_s must be positive")
    return downlink_end_s + turnaround_bits * bit_duration_s
