"""The complete uplink decoding pipeline (§3.2, §3.3).

Chains every stage the paper describes:

1. signal conditioning (400 ms moving average removal + normalization),
2. preamble correlation to find the frame start and rank sub-channels,
3. top-10 good sub-channel selection with antennas treated as extra
   sub-channels,
4. noise-variance-weighted maximum-ratio combining,
5. hysteresis slicing of the combined statistic,
6. timestamp binning + majority vote per transmitted bit,
7. optional frame parsing with CRC check.

Two measurement modes share the pipeline:

* ``"csi"`` — all 90 antenna x sub-channel values (Intel 5300);
* ``"rssi"`` — per-antenna RSSI only; the best single RSSI channel is
  chosen by preamble correlation (§3.3), reflecting that RSSI carries
  no frequency diversity.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro import obs
from repro.obs import forensics
from repro.core import combining, conditioning, slicer, subchannel
from repro.core.barker import barker_bits
from repro.core.frames import UplinkFrame
from repro.errors import ConfigurationError, DecodeError, MeasurementError
from repro.measurement import MeasurementStream

#: Supported measurement modes.
MODES = ("csi", "rssi")

#: Minimum fraction of finite samples for a CSI sub-channel to count as
#: usable when deciding whether CSI-mode decoding is viable at all.
MIN_CHANNEL_FINITE_FRACTION = 0.5


@dataclass(frozen=True)
class UplinkDecoderConfig:
    """Tunables of the uplink pipeline (paper defaults).

    Attributes:
        window_s: conditioning moving-average window (400 ms).
        good_count: sub-channels kept by the selector (10).
        hysteresis_width: threshold offset in units of sigma (0.5).
        preamble_bits: the known tag preamble (13-bit Barker).
        search_step_fraction: preamble search grid, as a fraction of the
            bit duration.
        min_detection_score: preamble detection threshold (0 accepts the
            best candidate).
        per_source_conditioning: condition each transmitter's packets
            separately before combining. Different helpers reach the
            reader over different channels, so their raw CSI levels
            differ; normalizing per source lets the reader "leverage
            transmissions from all Wi-Fi devices in the network and
            combine the channel information across all of them" (§5).
        nonfinite_policy: what to do with NaN/inf samples — "repair"
            (default: impute the channel's finite median and keep
            decoding), "reject" (raise :class:`MeasurementError`), or
            "propagate" (legacy NaN-poisoning, for diagnosis only).
        rssi_fallback: graceful degradation — when CSI-mode decoding is
            requested but the stream's CSI is missing or mostly dead
            (sub-channel dropouts), silently fall back to RSSI-mode
            decoding instead of failing.  Clean streams are unaffected.
    """

    window_s: float = conditioning.DEFAULT_WINDOW_S
    good_count: int = subchannel.DEFAULT_GOOD_COUNT
    hysteresis_width: float = 0.5
    preamble_bits: Sequence[int] = field(default_factory=barker_bits)
    search_step_fraction: float = 0.25
    min_detection_score: float = 0.0
    per_source_conditioning: bool = False
    nonfinite_policy: str = "repair"
    rssi_fallback: bool = True

    def __post_init__(self) -> None:
        if self.good_count < 1:
            raise ConfigurationError("good_count must be >= 1")
        if not 0 < self.search_step_fraction <= 1:
            raise ConfigurationError("search_step_fraction must be in (0, 1]")
        if self.nonfinite_policy not in conditioning.NONFINITE_POLICIES:
            raise ConfigurationError(
                f"nonfinite_policy must be one of "
                f"{conditioning.NONFINITE_POLICIES}"
            )


@dataclass(frozen=True)
class UplinkDecodeResult:
    """Everything the pipeline produced for one transmission.

    Attributes:
        bits: decoded data bits (after the preamble).
        detection: the preamble detection record.
        weights: MRC weights used.
        combined: per-packet combined statistic.
        sliced: binning/majority metadata.
        mode: the mode actually decoded with ("csi" or "rssi").
        fallback_from: the originally requested mode when graceful
            degradation switched modes (None on the normal path).
        repaired_values: non-finite samples repaired before decoding.
        frame_slice: ``(start, end)`` packet indices of the decoded
            frame within ``combined`` (the stream also holds idle
            padding, which quality assessment must not average in).
    """

    bits: np.ndarray
    detection: subchannel.PreambleDetection
    weights: combining.CombinerWeights
    combined: np.ndarray
    sliced: slicer.SlicedBits
    mode: str
    fallback_from: Optional[str] = None
    repaired_values: int = 0
    frame_slice: Optional[Tuple[int, int]] = None


@dataclass(frozen=True)
class LinkQuality:
    """Post-decode link health, driving the degradation ladder.

    Attributes:
        separation: two-level separability of the combined statistic —
            the gap between the upper and lower sample clusters in
            units of their intra-cluster spread.  Past ~65 cm "there
            are no two distinct levels in the channel measurements"
            (Fig 6), which shows up here as the separation collapsing
            toward the unimodal-noise baseline (~2.7 for a Gaussian).
        erasure_fraction: fraction of bit intervals with zero
            measurements (helper outage bursts produce these).
        mean_support: mean measurements per decided bit.
        repaired_values: non-finite samples repaired during decoding.
        degraded: whether the decode already fell back CSI -> RSSI.
    """

    separation: float
    erasure_fraction: float
    mean_support: float
    repaired_values: int
    degraded: bool

    #: Separation below which standard slicing is considered collapsed
    #: and the ladder recommends the long-range correlation mode.
    SEPARATION_COLLAPSE = 3.5
    #: Erasure fraction above which the frame was starved of packets
    #: (retry later / back off — the channel may recover).
    ERASURE_STARVED = 0.25

    @property
    def recommendation(self) -> str:
        """One of "ok", "retry", "long_range"."""
        if self.erasure_fraction > self.ERASURE_STARVED:
            return "retry"
        if self.separation < self.SEPARATION_COLLAPSE:
            return "long_range"
        return "ok"


def assess_quality(result: UplinkDecodeResult) -> LinkQuality:
    """Judge a decode's trustworthiness from its own diagnostics.

    Cheap (no re-decode) and label-free: uses only the combined
    statistic and slicing metadata, so the ARQ layer can call it on
    every transaction to decide whether to accept, retry, or drop to
    the coded long-range mode.
    """
    combined = np.asarray(result.combined, dtype=float)
    if result.frame_slice is not None:
        lo, hi = result.frame_slice
        combined = combined[lo:hi]
    finite = combined[np.isfinite(combined)]
    support = np.asarray(result.sliced.support, dtype=float)
    # Per-packet samples are noise-dominated even when the eye is wide
    # open; the slicer's decisions work because it averages ~support
    # packets per bit. Block-average at that scale so the statistic
    # measures the *level* separation the slicer actually sees, not
    # the raw packet noise (for which a median split is always ~2.7).
    k = int(round(float(support.mean()))) if support.size else 1
    if k > 1 and finite.size >= 2 * k:
        n_blocks = finite.size // k
        finite = finite[: n_blocks * k].reshape(n_blocks, k).mean(axis=1)
    if finite.size < 4:
        separation = 0.0
    else:
        mid = float(np.median(finite))
        upper = finite[finite >= mid]
        lower = finite[finite < mid]
        if upper.size == 0 or lower.size == 0:
            separation = 0.0
        else:
            spread = 0.5 * (float(upper.std()) + float(lower.std()))
            separation = (float(upper.mean()) - float(lower.mean())) / max(
                spread, 1e-9
            )
    num_bits = len(result.sliced.bits)
    erasure_fraction = (
        len(result.sliced.erasures) / num_bits if num_bits else 0.0
    )
    quality = LinkQuality(
        separation=separation,
        erasure_fraction=erasure_fraction,
        mean_support=float(support.mean()) if support.size else 0.0,
        repaired_values=result.repaired_values,
        degraded=result.fallback_from is not None,
    )
    obs.gauge("uplink.quality.separation").set(separation)
    obs.gauge("uplink.quality.erasure_fraction").set(erasure_fraction)
    return quality


class UplinkDecoder:
    """Decodes tag transmissions from a reader's measurement stream."""

    def __init__(self, config: Optional[UplinkDecoderConfig] = None) -> None:
        self.config = config or UplinkDecoderConfig()
        #: Per-mode stream-memo keys for the resolve cache (computed
        #: once: the config is fixed for the decoder's lifetime).
        self._resolve_keys: Dict[str, str] = {}

    # -- measurement matrices -------------------------------------------------

    def _matrix(self, stream: MeasurementStream, mode: str) -> np.ndarray:
        if mode == "csi":
            return stream.flattened_csi()
        if mode == "rssi":
            return stream.rssi_matrix()
        raise ConfigurationError(f"mode must be one of {MODES}, got {mode!r}")

    def _resolve_matrix(self, stream: MeasurementStream, mode: str):
        """Pick the effective mode and sanitized matrix (degradation rung 1).

        CSI-mode decoding degrades to RSSI when the stream's CSI is
        unusable — records without CSI at all, or so many sub-channel
        dropouts that fewer usable channels remain than the selector
        needs.  RSSI carries no frequency diversity, but it is always
        reported, so a corrupted capture still yields a decode attempt
        instead of an exception.

        Returns:
            ``(effective_mode, matrix, repaired_count)``.
        """
        cfg = self.config
        # Clean resolutions (no degradation, hence no counter/span side
        # effects) memoize on the stream: re-decodes of the same stream
        # (retries, the batched decoder's pack step) skip the probe.
        memo_key = self._resolve_keys.get(mode)
        if memo_key is None:
            memo_key = self._resolve_keys.setdefault(mode, (
                f"resolve:{mode}:{cfg.good_count}:{cfg.rssi_fallback}:"
                f"{cfg.nonfinite_policy}"
            ))
        cached = stream.memo_get(memo_key)
        if cached is not None:
            return cached
        if mode == "csi" and cfg.rssi_fallback:
            reason = None
            if stream.csi_coverage() < 1.0:
                reason = "records without CSI"
            else:
                raw = self._matrix(stream, "csi")
                finite_frac = stream.finite_column_fraction("csi")
                usable = int(
                    (finite_frac >= MIN_CHANNEL_FINITE_FRACTION).sum()
                )
                if usable >= min(cfg.good_count, raw.shape[1]):
                    return stream.memo_put(
                        memo_key,
                        ("csi",) + self._sanitized(stream, "csi", raw),
                    )
                reason = f"only {usable} usable CSI sub-channels"
            obs.counter("uplink.degradation.rssi_fallbacks").inc()
            sp = obs.current_span()
            if sp is not None:
                sp.set(rssi_fallback_reason=reason)
            return ("rssi",) + self._sanitized(
                stream, "rssi", self._matrix(stream, "rssi")
            )
        return stream.memo_put(
            memo_key,
            (mode,) + self._sanitized(stream, mode, self._matrix(stream, mode)),
        )

    def _sanitized(self, stream: MeasurementStream, mode: str, raw: np.ndarray):
        """Sanitize gate with a cached clean-stream bypass.

        The stream memoizes its non-finite cell count; when it is zero
        the sanitize pass is the identity, so the per-decode
        full-matrix ``isfinite`` scan can be skipped outright.  Dirty
        matrices take the full :func:`conditioning.sanitize` path.
        """
        if stream.nonfinite_cells(mode) == 0:
            return np.asarray(raw, dtype=float), 0
        return conditioning.sanitize(raw, self.config.nonfinite_policy)

    def _condition(
        self,
        stream: MeasurementStream,
        matrix: np.ndarray,
        timestamps: np.ndarray,
    ) -> conditioning.ConditionedMeasurements:
        """Condition the measurement matrix, optionally per source.

        With per-source conditioning, each transmitter's packets are
        baseline-removed and normalized against their own history, then
        re-interleaved in time order — so measurements taken over
        different helper channels become commensurable.
        """
        cfg = self.config
        # The matrix has already been through the decoder's own
        # sanitize gate, so conditioning must not re-reject here.
        if not cfg.per_source_conditioning:
            return conditioning.condition(
                matrix, timestamps, cfg.window_s, nonfinite="propagate"
            )
        sources = np.array([m.source for m in stream])
        normalized = np.empty_like(matrix, dtype=float)
        scale = np.zeros(matrix.shape[1])
        for source in np.unique(sources):
            rows = np.nonzero(sources == source)[0]
            if len(rows) < 2:
                normalized[rows] = 0.0
                continue
            part = conditioning.condition(
                matrix[rows], timestamps[rows], cfg.window_s,
                nonfinite="propagate",
            )
            normalized[rows] = part.normalized
            scale = np.maximum(scale, part.scale)
        return conditioning.ConditionedMeasurements(
            normalized=normalized, scale=scale, timestamps_s=timestamps
        )

    # -- pipeline --------------------------------------------------------------

    def decode_bits(
        self,
        stream: MeasurementStream,
        num_bits: int,
        bit_duration_s: float,
        mode: str = "csi",
        start_time_s: Optional[float] = None,
    ) -> UplinkDecodeResult:
        """Decode ``num_bits`` data bits following the preamble.

        Args:
            stream: reader measurements covering the transmission.
            num_bits: data bits after the preamble (payload [+ CRC +
                postamble] as the caller counts them).
            bit_duration_s: tag bit duration.
            mode: "csi" or "rssi".
            start_time_s: known frame start (skips preamble search when
                provided — used by experiments that control the tag).

        Raises:
            PreambleNotFound: no preamble above the detection threshold.
            DecodeError: the stream is too short to cover the data bits.
        """
        if len(stream) == 0:
            raise DecodeError("empty measurement stream")
        if num_bits < 1:
            raise ConfigurationError("num_bits must be >= 1")
        t_decode = time.perf_counter() if obs.metrics_enabled() else 0.0
        with forensics.ensure_record("uplink"), \
                obs.span("uplink.decode", mode=mode, num_bits=num_bits,
                         packets=len(stream)), obs.profile("uplink.decode"):
            requested_mode = mode
            mode, matrix, repaired = self._resolve_matrix(stream, mode)
            if repaired:
                obs.counter("uplink.nonfinite.repaired").inc(repaired)
            timestamps = stream.timestamps
            with obs.span("uplink.decode.condition"), \
                    obs.profile("uplink.decode.condition"):
                cond = self._condition(stream, matrix, timestamps)
            if obs.recording_enabled():
                forensics.stage(
                    "condition",
                    mode=mode,
                    requested_mode=requested_mode,
                    packets=len(stream),
                    channels=int(matrix.shape[1]),
                    repaired=int(repaired),
                    window_s=float(self.config.window_s),
                )

            cfg = self.config
            with obs.span("uplink.decode.detect",
                          known_timing=start_time_s is not None) \
                    as sp_detect, obs.profile("uplink.decode.detect"):
                if start_time_s is None:
                    detection = subchannel.detect_preamble(
                        cond.normalized,
                        timestamps,
                        cfg.preamble_bits,
                        bit_duration_s,
                        search_step_s=cfg.search_step_fraction * bit_duration_s,
                        min_score=cfg.min_detection_score,
                    )
                else:
                    corr = subchannel.correlate_at(
                        cond.normalized,
                        timestamps,
                        start_time_s,
                        cfg.preamble_bits,
                        bit_duration_s,
                    )
                    detection = subchannel.PreambleDetection(
                        start_time_s=start_time_s,
                        correlations=corr,
                        score=float(np.abs(corr).sum()),
                        threshold=0.0,
                    )
                if sp_detect is not None:
                    sp_detect.set(start_time_s=detection.start_time_s,
                                  score=detection.score)
                if obs.recording_enabled():
                    forensics.stage(
                        "detect",
                        search="known" if start_time_s is not None
                        else "scan",
                        start_time_s=detection.start_time_s,
                        score=detection.score,
                        threshold=detection.threshold,
                        correlations=detection.correlations,
                    )

            # RSSI mode keeps only the single best antenna channel (§3.3);
            # CSI mode keeps the top `good_count` of all 90 channels.
            good_count = 1 if mode == "rssi" else cfg.good_count
            with obs.span("uplink.decode.combine") as sp_combine, \
                    obs.profile("uplink.decode.combine"):
                good = subchannel.select_good_subchannels(
                    detection.correlations, good_count
                )
                variances = combining.estimate_noise_variance(
                    cond.normalized,
                    timestamps,
                    detection.start_time_s,
                    cfg.preamble_bits,
                    bit_duration_s,
                    detection.correlations,
                )
                weights = combining.make_weights(
                    detection.correlations, variances, good
                )
                combined = combining.combine(cond.normalized, weights)
                obs.add_ops(cond.normalized.size, cond.normalized.nbytes)
                self._emit_combine_diagnostics(
                    detection, good, weights, sp_combine
                )
                if obs.recording_enabled():
                    forensics.stage(
                        "select",
                        **subchannel.selection_diagnostics(
                            detection.correlations, good
                        ),
                    )
                    forensics.stage(
                        "combine",
                        noise_variances=variances[good],
                        **combining.weight_diagnostics(weights),
                    )

            with obs.span("uplink.decode.slice") as sp_slice, \
                    obs.profile("uplink.decode.slice"):
                thresholds = slicer.compute_thresholds(
                    combined, cfg.hysteresis_width
                )
                decisions = slicer.hysteresis_slice(combined, thresholds)
                data_start = (
                    detection.start_time_s
                    + len(cfg.preamble_bits) * bit_duration_s
                )
                last_needed = data_start + num_bits * bit_duration_s
                if timestamps[-1] < data_start:
                    raise DecodeError(
                        "measurement stream ends before the data bits begin"
                    )
                if timestamps[-1] + bit_duration_s < last_needed:
                    raise DecodeError(
                        f"stream covers only {timestamps[-1] - data_start:.3f}"
                        f" s of the {num_bits * bit_duration_s:.3f} s data span"
                    )
                sliced = slicer.majority_vote_bits(
                    decisions,
                    timestamps,
                    data_start,
                    bit_duration_s,
                    num_bits,
                )
                self._emit_slice_diagnostics(
                    combined, decisions, thresholds, sliced, sp_slice
                )
                if obs.recording_enabled():
                    forensics.stage(
                        "slice",
                        low=thresholds.low,
                        high=thresholds.high,
                        support=sliced.support,
                        erasures=len(sliced.erasures),
                        preamble_len=len(cfg.preamble_bits),
                        bit_margins=slicer.margin_profile(
                            combined, thresholds, timestamps,
                            data_start, bit_duration_s, num_bits,
                        ),
                    )
            obs.counter("uplink.decodes").inc()
            if obs.metrics_enabled():
                obs.timeseries("uplink.decode.latency_s").sample(
                    time.perf_counter() - t_decode
                )
            frame_lo, frame_hi = np.searchsorted(
                timestamps, [detection.start_time_s, last_needed]
            )
            return UplinkDecodeResult(
                bits=sliced.bits,
                detection=detection,
                weights=weights,
                combined=combined,
                sliced=sliced,
                mode=mode,
                fallback_from=(
                    requested_mode if mode != requested_mode else None
                ),
                repaired_values=repaired,
                frame_slice=(int(frame_lo), int(frame_hi)),
            )

    # -- diagnostics ----------------------------------------------------------

    @staticmethod
    def _emit_combine_diagnostics(
        detection: subchannel.PreambleDetection,
        good: np.ndarray,
        weights: combining.CombinerWeights,
        span,
    ) -> None:
        """Selected sub-channels, correlation scores, and MRC weights."""
        if not obs.metrics_enabled() and span is None:
            return
        selected_corr = detection.correlations[good]
        obs.gauge("uplink.preamble.score").set(detection.score)
        obs.histogram("uplink.subchannel.correlation").observe_many(
            np.abs(selected_corr)
        )
        obs.histogram("uplink.mrc.weight").observe_many(np.abs(weights.weights))
        if span is not None:
            span.set(
                selected_subchannels=good,
                correlation_scores=selected_corr,
                mrc_weights=weights.weights,
            )

    @staticmethod
    def _emit_slice_diagnostics(
        combined: np.ndarray,
        decisions: np.ndarray,
        thresholds: slicer.HysteresisThresholds,
        sliced: slicer.SlicedBits,
        span,
    ) -> None:
        """Slicer margins, hysteresis flips, and erasures.

        The margin of a sample is its distance past the threshold it
        must clear (negative inside the dead band): small margins mean
        the two reflection levels are barely separable at this range.
        """
        if not obs.metrics_enabled() and span is None:
            return
        flips = int(np.count_nonzero(np.diff(decisions)))
        mid = 0.5 * (thresholds.low + thresholds.high)
        margins = np.where(
            combined >= mid, combined - thresholds.high,
            thresholds.low - combined,
        )
        obs.counter("uplink.slicer.flips").inc(flips)
        obs.counter("uplink.slicer.erasures").inc(len(sliced.erasures))
        obs.histogram("uplink.slicer.margin").observe_many(margins)
        obs.histogram("uplink.slicer.support").observe_many(sliced.support)
        if span is not None:
            span.set(
                threshold_low=thresholds.low,
                threshold_high=thresholds.high,
                hysteresis_flips=flips,
                erasures=len(sliced.erasures),
                margin_mean=float(margins.mean()) if margins.size else None,
            )

    def decode_frame(
        self,
        stream: MeasurementStream,
        payload_len: int,
        bit_duration_s: float,
        mode: str = "csi",
        start_time_s: Optional[float] = None,
    ) -> UplinkFrame:
        """Decode and CRC-check a complete uplink frame.

        The frame layout is preamble | payload | crc8 | postamble; the
        preamble is consumed by detection, the rest is decoded and
        handed to :meth:`UplinkFrame.parse`.

        Raises:
            CrcError: the payload failed its CRC.
            FrameError: structural mismatch.
        """
        pre = list(self.config.preamble_bits)
        tail_bits = payload_len + 8 + len(pre)  # payload + crc + postamble
        result = self.decode_bits(
            stream, tail_bits, bit_duration_s, mode=mode, start_time_s=start_time_s
        )
        full = pre + list(result.bits)
        return UplinkFrame.parse(full, payload_len)
