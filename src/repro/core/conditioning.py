"""Signal conditioning for uplink channel measurements (§3.2 step 1).

Two-fold goal, per the paper: "1) remove the natural temporal
variations in the channel measurements due to mobility in the
environment, and 2) normalize the channel measurements to map to -1
and +1 values."

* Temporal variations: subtract a moving average "computed over a
  duration of 400 ms" — time-based, not sample-count-based, because
  the packet rate varies with network load.
* Normalization: divide the zero-mean measurements by the mean of
  their absolute values, so a '1' (reflecting) bit maps near +1 and a
  '0' near -1 without knowing the transmitted bits.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro import obs
from repro.errors import ConfigurationError, MeasurementError

#: Moving-average window used in the paper's experiments.
DEFAULT_WINDOW_S = 0.4

#: Non-finite sample policies accepted by :func:`sanitize`.
NONFINITE_POLICIES = ("reject", "repair", "propagate")


def sanitize(
    values: np.ndarray, policy: str = "reject"
) -> Tuple[np.ndarray, int]:
    """Handle NaN/inf samples before they poison the pipeline.

    A single NaN CSI cell, left alone, turns the moving-average
    baseline, the normalization scale, the MRC weights, and finally
    every sliced bit into NaN — silent corruption.  Decoders therefore
    run their matrices through this gate first.

    Args:
        values: measurement matrix, shape ``(n_packets, n_channels)``.
        policy: ``"reject"`` raises :class:`MeasurementError` on any
            non-finite sample; ``"repair"`` replaces each non-finite
            cell with its channel's finite median (0 for channels with
            no finite samples at all); ``"propagate"`` returns the
            input untouched (the pre-fix legacy behaviour, kept for
            diagnosis).

    Returns:
        ``(clean_matrix, num_repaired)`` — ``num_repaired`` counts the
        non-finite cells found (0 under ``reject`` when it returns).

    Raises:
        MeasurementError: non-finite samples under the reject policy.
    """
    if policy not in NONFINITE_POLICIES:
        raise ConfigurationError(
            f"nonfinite policy must be one of {NONFINITE_POLICIES}, "
            f"got {policy!r}"
        )
    values = np.asarray(values, dtype=float)
    bad = ~np.isfinite(values)
    count = int(bad.sum())
    if count == 0 or policy == "propagate":
        return values, count
    if policy == "reject":
        raise MeasurementError(
            f"measurement matrix contains {count} non-finite sample(s); "
            "repair or drop them before decoding"
        )
    repaired = values.copy()
    if repaired.ndim == 1:
        repaired = repaired[:, None]
        bad = bad[:, None]
    for col in np.nonzero(bad.any(axis=0))[0]:
        finite = repaired[~bad[:, col], col]
        fill = float(np.median(finite)) if finite.size else 0.0
        repaired[bad[:, col], col] = fill
    repaired = repaired.reshape(np.asarray(values).shape)
    obs.counter("conditioning.nonfinite.repaired").inc(count)
    return repaired, count


def moving_average_by_time(
    values: np.ndarray, timestamps_s: np.ndarray, window_s: float = DEFAULT_WINDOW_S
) -> np.ndarray:
    """Centered time-windowed moving average of each column.

    For each packet ``i`` the average is taken over packets whose
    timestamp lies within ``window_s / 2`` of packet ``i``'s.

    Args:
        values: measurement matrix, shape ``(n_packets, n_channels)``.
        timestamps_s: packet timestamps, shape ``(n_packets,)``,
            non-decreasing.
        window_s: full window width in seconds.

    Returns:
        Matrix of the same shape holding the local means.
    """
    values = np.asarray(values, dtype=float)
    timestamps = np.asarray(timestamps_s, dtype=float)
    if values.ndim != 2:
        raise ConfigurationError("values must be 2-D (packets x channels)")
    if len(timestamps) != values.shape[0]:
        raise ConfigurationError("timestamps length must match values rows")
    if window_s <= 0:
        raise ConfigurationError("window_s must be positive")
    if len(timestamps) > 1 and np.any(np.diff(timestamps) < 0):
        raise ConfigurationError("timestamps must be non-decreasing")
    n = values.shape[0]
    half = window_s / 2.0
    lo = np.searchsorted(timestamps, timestamps - half, side="left")
    hi = np.searchsorted(timestamps, timestamps + half, side="right")
    csum = np.vstack([np.zeros((1, values.shape[1])), np.cumsum(values, axis=0)])
    counts = (hi - lo).astype(float)
    return (csum[hi] - csum[lo]) / counts[:, None]


@dataclass(frozen=True)
class ConditionedMeasurements:
    """Output of signal conditioning.

    Attributes:
        normalized: zero-mean, unit-mean-absolute measurements with the
            same shape as the input — '1' bits cluster near +1, '0'
            bits near -1 on sub-channels where the tag is visible.
        scale: the per-channel normalization divisor (mean |zero-mean|),
            useful as a raw signal-strength diagnostic.
        timestamps_s: pass-through packet timestamps.
        repaired: non-finite input cells repaired before conditioning.
    """

    normalized: np.ndarray
    scale: np.ndarray
    timestamps_s: np.ndarray
    repaired: int = 0


def condition(
    values: np.ndarray,
    timestamps_s: np.ndarray,
    window_s: float = DEFAULT_WINDOW_S,
    nonfinite: str = "reject",
) -> ConditionedMeasurements:
    """Full §3.2-step-1 conditioning of a measurement matrix.

    Args:
        values: raw CSI amplitudes or RSSI values, shape
            ``(n_packets, n_channels)``. RSSI streams use
            ``n_channels == num_antennas``.
        timestamps_s: packet timestamps.
        window_s: moving-average window.
        nonfinite: NaN/inf policy — see :func:`sanitize`.  The default
            rejects with a typed :class:`MeasurementError` rather than
            silently propagating NaN downstream.

    Returns:
        :class:`ConditionedMeasurements`.

    Raises:
        MeasurementError: non-finite samples under the reject policy.
    """
    values = np.asarray(values, dtype=float)
    if values.ndim == 1:
        values = values[:, None]
    if values.shape[0] == 0:
        raise ConfigurationError("cannot condition an empty measurement set")
    with obs.profile("conditioning.condition"):
        values, repaired = sanitize(values, nonfinite)
        baseline = moving_average_by_time(values, timestamps_s, window_s)
        zero_mean = values - baseline
        scale = np.abs(zero_mean).mean(axis=0)
        # Guard sub-channels with no variation at all (e.g. all-quantized
        # to one level): leave them at zero rather than dividing by zero.
        safe = np.where(scale > 0, scale, 1.0)
        normalized = zero_mean / safe
        obs.add_ops(values.size, values.nbytes)
    return ConditionedMeasurements(
        normalized=normalized,
        scale=scale,
        timestamps_s=np.asarray(timestamps_s, dtype=float),
        repaired=repaired,
    )
