"""Signal conditioning for uplink channel measurements (§3.2 step 1).

Two-fold goal, per the paper: "1) remove the natural temporal
variations in the channel measurements due to mobility in the
environment, and 2) normalize the channel measurements to map to -1
and +1 values."

* Temporal variations: subtract a moving average "computed over a
  duration of 400 ms" — time-based, not sample-count-based, because
  the packet rate varies with network load.
* Normalization: divide the zero-mean measurements by the mean of
  their absolute values, so a '1' (reflecting) bit maps near +1 and a
  '0' near -1 without knowing the transmitted bits.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError

#: Moving-average window used in the paper's experiments.
DEFAULT_WINDOW_S = 0.4


def moving_average_by_time(
    values: np.ndarray, timestamps_s: np.ndarray, window_s: float = DEFAULT_WINDOW_S
) -> np.ndarray:
    """Centered time-windowed moving average of each column.

    For each packet ``i`` the average is taken over packets whose
    timestamp lies within ``window_s / 2`` of packet ``i``'s.

    Args:
        values: measurement matrix, shape ``(n_packets, n_channels)``.
        timestamps_s: packet timestamps, shape ``(n_packets,)``,
            non-decreasing.
        window_s: full window width in seconds.

    Returns:
        Matrix of the same shape holding the local means.
    """
    values = np.asarray(values, dtype=float)
    timestamps = np.asarray(timestamps_s, dtype=float)
    if values.ndim != 2:
        raise ConfigurationError("values must be 2-D (packets x channels)")
    if len(timestamps) != values.shape[0]:
        raise ConfigurationError("timestamps length must match values rows")
    if window_s <= 0:
        raise ConfigurationError("window_s must be positive")
    if len(timestamps) > 1 and np.any(np.diff(timestamps) < 0):
        raise ConfigurationError("timestamps must be non-decreasing")
    n = values.shape[0]
    half = window_s / 2.0
    lo = np.searchsorted(timestamps, timestamps - half, side="left")
    hi = np.searchsorted(timestamps, timestamps + half, side="right")
    csum = np.vstack([np.zeros((1, values.shape[1])), np.cumsum(values, axis=0)])
    counts = (hi - lo).astype(float)
    return (csum[hi] - csum[lo]) / counts[:, None]


@dataclass(frozen=True)
class ConditionedMeasurements:
    """Output of signal conditioning.

    Attributes:
        normalized: zero-mean, unit-mean-absolute measurements with the
            same shape as the input — '1' bits cluster near +1, '0'
            bits near -1 on sub-channels where the tag is visible.
        scale: the per-channel normalization divisor (mean |zero-mean|),
            useful as a raw signal-strength diagnostic.
        timestamps_s: pass-through packet timestamps.
    """

    normalized: np.ndarray
    scale: np.ndarray
    timestamps_s: np.ndarray


def condition(
    values: np.ndarray,
    timestamps_s: np.ndarray,
    window_s: float = DEFAULT_WINDOW_S,
) -> ConditionedMeasurements:
    """Full §3.2-step-1 conditioning of a measurement matrix.

    Args:
        values: raw CSI amplitudes or RSSI values, shape
            ``(n_packets, n_channels)``. RSSI streams use
            ``n_channels == num_antennas``.
        timestamps_s: packet timestamps.
        window_s: moving-average window.

    Returns:
        :class:`ConditionedMeasurements`.
    """
    values = np.asarray(values, dtype=float)
    if values.ndim == 1:
        values = values[:, None]
    if values.shape[0] == 0:
        raise ConfigurationError("cannot condition an empty measurement set")
    baseline = moving_average_by_time(values, timestamps_s, window_s)
    zero_mean = values - baseline
    scale = np.abs(zero_mean).mean(axis=0)
    # Guard sub-channels with no variation at all (e.g. all-quantized to
    # one level): leave them at zero rather than dividing by zero.
    safe = np.where(scale > 0, scale, 1.0)
    normalized = zero_mean / safe
    return ConditionedMeasurements(
        normalized=normalized,
        scale=scale,
        timestamps_s=np.asarray(timestamps_s, dtype=float),
    )
