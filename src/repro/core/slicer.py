"""Bit slicing: timestamp binning, hysteresis, majority vote (§3.2 step 3).

Three mechanisms from the paper combine here:

* **Timestamp binning** — "it is unlikely that every bit transmitted by
  the tag sees the same number of Wi-Fi packets ... we use the
  timestamp that is in every Wi-Fi packet header to accurately group
  Wi-Fi packets belonging to the same bit transmission."
* **Hysteresis** — Intel cards "report spurious changes in the CSI once
  every so often", so per-measurement decisions use two thresholds
  ``Thresh1``/``Thresh0`` at ``mu +/- sigma/2``; values between them
  repeat the previous decision instead of flipping on a glitch.
* **Majority vote** — "each bit transmitted by the tag corresponds to
  multiple channel measurements ... [the reader] uses a simple
  majority vote to compute the transmitted bits."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.errors import ConfigurationError, DecodeError


@dataclass(frozen=True)
class HysteresisThresholds:
    """The two slicing thresholds.

    Attributes:
        low: ``Thresh0`` — output 0 when the value is below this.
        high: ``Thresh1`` — output 1 when the value is above this.
    """

    low: float
    high: float

    def __post_init__(self) -> None:
        if self.low > self.high:
            raise ConfigurationError(
                f"low threshold {self.low} exceeds high threshold {self.high}"
            )


def compute_thresholds(values: np.ndarray, width: float = 0.5) -> HysteresisThresholds:
    """Thresholds at ``mu +/- width * sigma`` of the combined statistic.

    The paper sets them from "the mean and standard deviation of
    CSI_weighted computed across packets" with a half-sigma offset.
    """
    values = np.asarray(values, dtype=float)
    if values.size == 0:
        raise ConfigurationError("cannot compute thresholds of empty input")
    if width < 0:
        raise ConfigurationError("width must be >= 0")
    mu = float(values.mean())
    sigma = float(values.std())
    return HysteresisThresholds(low=mu - width * sigma, high=mu + width * sigma)


def hysteresis_slice(
    values: np.ndarray,
    thresholds: HysteresisThresholds,
    initial: int = 0,
) -> np.ndarray:
    """Per-measurement hard decisions with hysteresis.

    Values above ``high`` output 1, below ``low`` output 0, and values
    in the dead band repeat the previous output — absorbing spurious
    single-packet CSI jumps.
    """
    values = np.asarray(values, dtype=float)
    if initial not in (0, 1):
        raise ConfigurationError("initial state must be 0 or 1")
    out = np.empty(len(values), dtype=int)
    state = initial
    for i, v in enumerate(values):
        if v > thresholds.high:
            state = 1
        elif v < thresholds.low:
            state = 0
        out[i] = state
    return out


def margin_profile(
    combined: np.ndarray,
    thresholds: HysteresisThresholds,
    timestamps_s: np.ndarray,
    start_time_s: float,
    bit_duration_s: float,
    num_bits: int,
) -> np.ndarray:
    """Per-bit slicing margin: how far outside the dead band each bit sat.

    The per-measurement margin is the distance from the value to the
    threshold it had to clear (``combined - high`` when above the dead
    band's midpoint, ``low - combined`` below it); negative values mean
    the measurement landed inside the dead band and rode on hysteresis.
    Each bit's margin is the mean over its binned measurements — the
    forensics signal for "the slicer decided with no confidence".

    Returns:
        ``num_bits`` floats; bits with no measurements get NaN.
    """
    combined = np.asarray(combined, dtype=float)
    mid = 0.5 * (thresholds.low + thresholds.high)
    per_sample = np.where(
        combined >= mid, combined - thresholds.high, thresholds.low - combined
    )
    bins = bin_by_timestamp(timestamps_s, start_time_s, bit_duration_s, num_bits)
    out = np.full(num_bits, np.nan)
    for k, indices in enumerate(bins):
        if len(indices):
            out[k] = float(per_sample[indices].mean())
    return out


def bin_by_timestamp(
    timestamps_s: np.ndarray,
    start_time_s: float,
    bit_duration_s: float,
    num_bits: int,
) -> List[np.ndarray]:
    """Packet indices belonging to each transmitted bit interval.

    Args:
        timestamps_s: packet timestamps.
        start_time_s: first bit's start time (from preamble detection).
        bit_duration_s: tag bit duration.
        num_bits: number of bit intervals to produce.

    Returns:
        List of ``num_bits`` index arrays (possibly empty for bits that
        saw no packets — the caller decides how to handle erasures).
    """
    if bit_duration_s <= 0:
        raise ConfigurationError("bit_duration_s must be positive")
    if num_bits < 1:
        raise ConfigurationError("num_bits must be >= 1")
    ts = np.asarray(timestamps_s, dtype=float)
    idx = np.floor((ts - start_time_s) / bit_duration_s).astype(int)
    return [np.nonzero(idx == k)[0] for k in range(num_bits)]


@dataclass(frozen=True)
class SlicedBits:
    """Decoded bit decisions with per-bit support counts.

    Attributes:
        bits: decided bit per interval (erasures resolved to
            ``erasure_value``).
        support: measurements contributing to each bit.
        erasures: indices of bits that saw zero measurements.
    """

    bits: np.ndarray
    support: np.ndarray
    erasures: np.ndarray


def majority_vote_bits(
    decisions: np.ndarray,
    timestamps_s: np.ndarray,
    start_time_s: float,
    bit_duration_s: float,
    num_bits: int,
    erasure_value: int = 0,
    min_support: int = 1,
    strict: bool = False,
) -> SlicedBits:
    """Majority vote of per-measurement decisions within each bit bin.

    Args:
        decisions: 0/1 per-measurement decisions (from hysteresis).
        timestamps_s: matching packet timestamps.
        start_time_s: first bit boundary.
        bit_duration_s: tag bit duration.
        num_bits: bits to decode.
        erasure_value: value assigned to bins with no measurements.
        min_support: bins with fewer measurements than this count as
            erasures.
        strict: raise :class:`DecodeError` on any erasure instead of
            substituting ``erasure_value``.

    Ties (equal ones and zeros) resolve to 1 — the combined statistic
    is zero-mean so ties are rare and unbiased either way.
    """
    decisions = np.asarray(decisions, dtype=int)
    if len(decisions) != len(timestamps_s):
        raise ConfigurationError("decisions and timestamps must align")
    bins = bin_by_timestamp(timestamps_s, start_time_s, bit_duration_s, num_bits)
    bits = np.empty(num_bits, dtype=int)
    support = np.empty(num_bits, dtype=int)
    erasures: List[int] = []
    for k, indices in enumerate(bins):
        support[k] = len(indices)
        if len(indices) < min_support:
            erasures.append(k)
            bits[k] = erasure_value
            continue
        ones = int(decisions[indices].sum())
        bits[k] = 1 if 2 * ones >= len(indices) else 0
    if erasures and strict:
        raise DecodeError(
            f"{len(erasures)} bit(s) saw fewer than {min_support} "
            f"measurement(s): {erasures[:10]}"
        )
    return SlicedBits(
        bits=bits, support=support, erasures=np.asarray(erasures, dtype=int)
    )


def soft_average_bits(
    combined: np.ndarray,
    timestamps_s: np.ndarray,
    start_time_s: float,
    bit_duration_s: float,
    num_bits: int,
    erasure_value: int = 0,
) -> SlicedBits:
    """Ablation alternative: average the soft statistic per bin, then slice.

    Compared in the ablation benches against the paper's
    hysteresis+majority approach.
    """
    combined = np.asarray(combined, dtype=float)
    bins = bin_by_timestamp(timestamps_s, start_time_s, bit_duration_s, num_bits)
    bits = np.empty(num_bits, dtype=int)
    support = np.empty(num_bits, dtype=int)
    erasures: List[int] = []
    for k, indices in enumerate(bins):
        support[k] = len(indices)
        if len(indices) == 0:
            erasures.append(k)
            bits[k] = erasure_value
            continue
        bits[k] = 1 if combined[indices].mean() >= 0 else 0
    return SlicedBits(
        bits=bits, support=support, erasures=np.asarray(erasures, dtype=int)
    )
