"""Preamble correlation and good-sub-channel selection (§3.2 step 2).

"The set of 'good' sub-channels and antennas varies significantly with
the position of the tag" (Fig 5), so the reader re-learns them per
transmission: it "correlates with the preamble along every sub-channel
(treating multiple antennas as additional sub-channels), while waiting
for an incoming transmission. When a transmission arrives (which is
identified by a peak in the correlation), the Wi-Fi reader sorts the
sub-channels based on the correlation value" and keeps the top ten.

Because measurements arrive at packet times (not on a uniform grid),
correlation is evaluated against the preamble *waveform*: the expected
chip for a packet is determined by which preamble bit interval its
timestamp falls into, relative to a candidate frame start time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.core.barker import bits_to_chips
from repro.errors import ConfigurationError, PreambleNotFound

#: Number of good sub-channels the paper's reader keeps.
DEFAULT_GOOD_COUNT = 10


def expected_chips_at(
    timestamps_s: np.ndarray,
    start_time_s: float,
    preamble_bits: Sequence[int],
    bit_duration_s: float,
) -> np.ndarray:
    """Expected +1/-1 chip for each packet, or 0 outside the preamble.

    Args:
        timestamps_s: packet timestamps.
        start_time_s: candidate frame start.
        preamble_bits: the known preamble (0/1).
        bit_duration_s: tag bit duration.
    """
    chips = bits_to_chips(preamble_bits)
    idx = np.floor((np.asarray(timestamps_s) - start_time_s) / bit_duration_s)
    out = np.zeros(len(timestamps_s))
    valid = (idx >= 0) & (idx < len(chips))
    out[valid] = chips[idx[valid].astype(int)]
    return out


def correlate_at(
    normalized: np.ndarray,
    timestamps_s: np.ndarray,
    start_time_s: float,
    preamble_bits: Sequence[int],
    bit_duration_s: float,
) -> np.ndarray:
    """Per-channel normalized correlation with the preamble at one offset.

    Returns:
        Signed correlation per channel in [-1, 1]-ish range: the mean of
        ``measurement * expected_chip`` over in-preamble packets. The
        sign captures the channel's polarity (reflection may raise or
        lower a given sub-channel's amplitude).
    """
    normalized = np.asarray(normalized, dtype=float)
    if normalized.ndim != 2:
        raise ConfigurationError("normalized must be 2-D (packets x channels)")
    chips = expected_chips_at(timestamps_s, start_time_s, preamble_bits, bit_duration_s)
    mask = chips != 0
    count = int(mask.sum())
    if count == 0:
        return np.zeros(normalized.shape[1])
    return (normalized[mask] * chips[mask, None]).mean(axis=0)


#: Candidate start times evaluated per batched-correlation block.  Caps
#: the (candidates x packets) expected-chip matrix at a few MB for
#: typical streams so the vectorized search stays cache-friendly.
SEARCH_CHUNK = 256


def correlation_matrix(
    normalized: np.ndarray,
    timestamps_s: np.ndarray,
    start_times_s: np.ndarray,
    preamble_bits: Sequence[int],
    bit_duration_s: float,
) -> np.ndarray:
    """Per-channel preamble correlations at many candidate offsets.

    The batched form of :func:`correlate_at`.  Packet timestamps are
    sorted, so the packets expecting chip ``k`` of a candidate starting
    at ``s`` are exactly the contiguous run in
    ``[s + k*bit, s + (k+1)*bit)`` — each candidate's per-chip
    measurement sums are prefix-sum differences at ``searchsorted``
    bit boundaries.  That replaces the per-offset Python loop (and the
    dense candidates-x-packets expected-chip matrix) with O(candidates
    x preamble_len) work, independent of the packet count.  A
    ``sliding_window_view`` over the sample axis does not apply here
    because the timestamps are non-uniform.

    Chip assignment brackets timestamps between bit boundaries, which
    matches :func:`correlate_at`'s ``floor`` indexing in exact
    arithmetic; a timestamp landing within one float ulp of a boundary
    may fall on the other side of it, a measure-zero event for the
    continuous packet-arrival processes this decodes.

    Returns:
        Array of shape ``(len(start_times_s), channels)``; rows with no
        in-preamble packets are all-zero, matching
        :func:`correlate_at`'s empty-mask behaviour.
    """
    normalized = np.asarray(normalized, dtype=float)
    if normalized.ndim != 2:
        raise ConfigurationError("normalized must be 2-D (packets x channels)")
    timestamps = np.asarray(timestamps_s, dtype=float)
    starts = np.atleast_1d(np.asarray(start_times_s, dtype=float))
    chips = bits_to_chips(preamble_bits)
    num_chips = len(chips)
    channels = normalized.shape[1]
    prefix = np.zeros((len(timestamps) + 1, channels))
    np.cumsum(normalized, axis=0, out=prefix[1:])
    boundaries = np.arange(num_chips + 1) * bit_duration_s
    # Telescope the per-chip sum: sum_l chips[l] * (P[b_{l+1}] - P[b_l])
    # == sum_k coef[k] * P[b_k], where coef is nonzero only at the two
    # ends and at chip transitions — for a Barker code that prunes most
    # boundary gathers (the dominant cost).
    coef = np.zeros(num_chips + 1)
    coef[0] = -chips[0]
    coef[-1] = chips[-1]
    coef[1:-1] = chips[:-1] - chips[1:]
    nz = np.flatnonzero(coef)
    out = np.zeros((len(starts), channels))
    for lo in range(0, len(starts), SEARCH_CHUNK):
        block = starts[lo:lo + SEARCH_CHUNK]
        bounds = block[:, None] + boundaries[None, :]
        pos = np.searchsorted(timestamps, bounds.ravel()).reshape(
            len(block), num_chips + 1
        )
        sums = np.einsum("k,bkj->bj", coef[nz], prefix[pos[:, nz]])
        counts = (pos[:, -1] - pos[:, 0]).astype(float)
        nonzero = counts > 0
        out[lo:lo + SEARCH_CHUNK][nonzero] = (
            sums[nonzero] / counts[nonzero, None]
        )
    return out


def correlation_matrix_batch(
    normalized: np.ndarray,
    timestamps_s: np.ndarray,
    lengths: np.ndarray,
    start_times_per_item: Sequence[np.ndarray],
    preamble_bits: Sequence[int],
    bit_durations_s: np.ndarray,
) -> list:
    """Batch-axis extension of :func:`correlation_matrix`.

    Evaluates every item's candidate offsets in one shot: per-lane
    prefix sums are taken with a single batched ``cumsum`` over the
    packed ``(K, samples, channels)`` array, and all K items' boundary
    gathers feed one telescoped ``einsum``.  ``einsum`` (with the
    default non-optimized path) reduces each output row independently
    with a fixed-order sum over the contraction axis, so every row is
    bitwise identical to the row :func:`correlation_matrix` produces
    for that item alone — the batch dimension cannot perturb results.

    Args:
        normalized: packed conditioned measurements, shape
            ``(K, max_samples, channels)``, rows past each item's
            length zero-padded.
        timestamps_s: packed timestamps, shape ``(K, max_samples)``,
            padded with ``+inf`` so ``searchsorted`` against the full
            row equals ``searchsorted`` against the item's real prefix.
        lengths: valid sample count per item, shape ``(K,)``.
        start_times_per_item: K arrays of candidate frame starts.
        preamble_bits: the known preamble (shared across items).
        bit_durations_s: per-item tag bit duration, shape ``(K,)``.

    Returns:
        List of K arrays, item ``k`` of shape
        ``(len(start_times_per_item[k]), channels)``.
    """
    normalized = np.asarray(normalized, dtype=float)
    if normalized.ndim != 3:
        raise ConfigurationError(
            "normalized must be 3-D (items x packets x channels)"
        )
    timestamps = np.asarray(timestamps_s, dtype=float)
    num_items, max_samples, channels = normalized.shape
    if len(start_times_per_item) != num_items:
        raise ConfigurationError("one candidate array per item required")
    chips = bits_to_chips(preamble_bits)
    num_chips = len(chips)
    prefix = np.zeros((num_items, max_samples + 1, channels))
    np.cumsum(normalized, axis=1, out=prefix[:, 1:])
    flat_prefix = prefix.reshape(num_items * (max_samples + 1), channels)
    coef = np.zeros(num_chips + 1)
    coef[0] = -chips[0]
    coef[-1] = chips[-1]
    coef[1:-1] = chips[:-1] - chips[1:]
    nz = np.flatnonzero(coef)
    rows = []
    sizes = []
    for k in range(num_items):
        starts = np.atleast_1d(
            np.asarray(start_times_per_item[k], dtype=float)
        )
        sizes.append(len(starts))
        if len(starts) == 0:
            continue
        boundaries = np.arange(num_chips + 1) * float(bit_durations_s[k])
        bounds = starts[:, None] + boundaries[None, :]
        pos = np.searchsorted(timestamps[k], bounds.ravel()).reshape(
            len(starts), num_chips + 1
        )
        rows.append(pos + k * (max_samples + 1))
    out_per_item = []
    if rows:
        pos_all = np.concatenate(rows, axis=0)
        sums = np.einsum("k,bkj->bj", coef[nz], flat_prefix[pos_all[:, nz]])
        counts = (pos_all[:, -1] - pos_all[:, 0]).astype(float)
        nonzero = counts > 0
        out_all = np.zeros((len(pos_all), channels))
        out_all[nonzero] = sums[nonzero] / counts[nonzero, None]
    else:
        out_all = np.zeros((0, channels))
    offset = 0
    for size in sizes:
        out_per_item.append(out_all[offset:offset + size])
        offset += size
    return out_per_item


@dataclass(frozen=True)
class PreambleDetection:
    """Result of a preamble search.

    Attributes:
        start_time_s: estimated frame start.
        correlations: signed per-channel correlation at the peak.
        score: detection statistic (sum of |correlation| across
            channels) at the peak.
        threshold: the score needed for detection.
    """

    start_time_s: float
    correlations: np.ndarray
    score: float
    threshold: float


def detect_preamble(
    normalized: np.ndarray,
    timestamps_s: np.ndarray,
    preamble_bits: Sequence[int],
    bit_duration_s: float,
    search_step_s: Optional[float] = None,
    min_score: float = 0.0,
) -> PreambleDetection:
    """Scan candidate start times for the preamble correlation peak.

    Args:
        normalized: conditioned measurements (packets x channels).
        timestamps_s: packet timestamps.
        preamble_bits: the known preamble.
        bit_duration_s: tag bit duration.
        search_step_s: grid step for candidate starts (default: a
            quarter bit).
        min_score: detection threshold on the summed |correlation|;
            0 accepts the best peak unconditionally.

    Raises:
        PreambleNotFound: when no candidate reaches ``min_score`` or the
            stream is too short to contain the preamble.
    """
    timestamps = np.asarray(timestamps_s, dtype=float)
    if len(timestamps) == 0:
        raise PreambleNotFound("empty measurement stream")
    if bit_duration_s <= 0:
        raise ConfigurationError("bit_duration_s must be positive")
    preamble_span = len(preamble_bits) * bit_duration_s
    t_first, t_last = timestamps[0], timestamps[-1]
    if t_last - t_first < preamble_span:
        raise PreambleNotFound(
            f"stream spans {t_last - t_first:.3f} s, shorter than the "
            f"{preamble_span:.3f} s preamble"
        )
    step = search_step_s if search_step_s is not None else bit_duration_s / 4.0
    if step <= 0:
        raise ConfigurationError("search_step_s must be positive")
    candidates = np.arange(t_first, t_last - preamble_span + step, step)
    corr_matrix = correlation_matrix(
        normalized, timestamps, candidates, preamble_bits, bit_duration_s
    )
    scores = np.abs(corr_matrix).sum(axis=1)
    # argmax returns the first maximum, matching the legacy loop's
    # strict-> best tracking (first peak wins ties).
    best = int(np.argmax(scores))
    best_score = float(scores[best])
    if best_score < min_score:
        raise PreambleNotFound(
            f"best correlation score {best_score:.3f} below threshold "
            f"{min_score:.3f}"
        )
    return PreambleDetection(
        start_time_s=float(candidates[best]),
        correlations=corr_matrix[best],
        score=best_score,
        threshold=min_score,
    )


def _reference_detect_preamble(
    normalized: np.ndarray,
    timestamps_s: np.ndarray,
    preamble_bits: Sequence[int],
    bit_duration_s: float,
    search_step_s: Optional[float] = None,
    min_score: float = 0.0,
) -> PreambleDetection:
    """Pre-vectorization per-offset search, kept as the equivalence
    oracle for :func:`detect_preamble` (tests only — O(candidates)
    Python-loop iterations of :func:`correlate_at`)."""
    timestamps = np.asarray(timestamps_s, dtype=float)
    if len(timestamps) == 0:
        raise PreambleNotFound("empty measurement stream")
    if bit_duration_s <= 0:
        raise ConfigurationError("bit_duration_s must be positive")
    preamble_span = len(preamble_bits) * bit_duration_s
    t_first, t_last = timestamps[0], timestamps[-1]
    if t_last - t_first < preamble_span:
        raise PreambleNotFound(
            f"stream spans {t_last - t_first:.3f} s, shorter than the "
            f"{preamble_span:.3f} s preamble"
        )
    step = search_step_s if search_step_s is not None else bit_duration_s / 4.0
    if step <= 0:
        raise ConfigurationError("search_step_s must be positive")
    candidates = np.arange(t_first, t_last - preamble_span + step, step)
    best_score = -np.inf
    best_start = candidates[0]
    best_corr: Optional[np.ndarray] = None
    for t0 in candidates:
        corr = correlate_at(
            normalized, timestamps, t0, preamble_bits, bit_duration_s
        )
        score = float(np.abs(corr).sum())
        if score > best_score:
            best_score = score
            best_start = float(t0)
            best_corr = corr
    assert best_corr is not None
    if best_score < min_score:
        raise PreambleNotFound(
            f"best correlation score {best_score:.3f} below threshold "
            f"{min_score:.3f}"
        )
    return PreambleDetection(
        start_time_s=best_start,
        correlations=best_corr,
        score=best_score,
        threshold=min_score,
    )


def select_good_subchannels(
    correlations: np.ndarray, count: int = DEFAULT_GOOD_COUNT
) -> np.ndarray:
    """Indices of the ``count`` best channels by |preamble correlation|.

    "The sub-channels that correlate well with the preamble have a
    better signal from the Wi-Fi Backscatter tag than those that
    correlate poorly. The Wi-Fi reader picks the top ten 'good'
    sub-channels" (§3.2).
    """
    corr = np.asarray(correlations, dtype=float)
    if corr.ndim != 1:
        raise ConfigurationError("correlations must be 1-D")
    if count < 1:
        raise ConfigurationError("count must be >= 1")
    count = min(count, len(corr))
    order = np.argsort(-np.abs(corr))
    return order[:count]


def selection_diagnostics(
    correlations: np.ndarray, selected: np.ndarray
) -> dict:
    """Forensics summary of a good-sub-channel selection.

    ``selection_ratio`` compares the mean |correlation| of the chosen
    channels against the rejected ones; near 1.0 the "good" channels
    are indistinguishable from the rest (the attribution engine's
    ``bad_subchannel_selection`` signal). Infinite when every channel
    was selected or the rejects correlate at exactly zero.
    """
    corr = np.abs(np.asarray(correlations, dtype=float))
    idx = np.asarray(selected, dtype=int)
    mask = np.zeros(len(corr), dtype=bool)
    mask[idx] = True
    sel_mean = float(corr[mask].mean()) if mask.any() else 0.0
    rejected = corr[~mask]
    unsel_mean = float(rejected.mean()) if rejected.size else 0.0
    ratio = sel_mean / unsel_mean if unsel_mean > 0 else float("inf")
    return {
        "channels": [int(c) for c in idx],
        "num_selected": int(len(idx)),
        "sel_mean": sel_mean,
        "unsel_mean": unsel_mean,
        "selection_ratio": float(ratio),
    }
