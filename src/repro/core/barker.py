"""Barker-code preambles.

The prototype's uplink frames start with a 13-bit Barker code, "known
for its good auto-correlation properties" (§6): the aperiodic
autocorrelation of a Barker sequence has off-peak magnitudes of at most
1, making the correlation peak at frame start unambiguous even in noisy
channel measurements.
"""

from __future__ import annotations

from functools import lru_cache
from typing import List, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.obs.caches import register_cache

#: Known Barker codes by length, in +1/-1 chip form.
BARKER_CODES = {
    2: (1, -1),
    3: (1, 1, -1),
    4: (1, 1, -1, 1),
    5: (1, 1, 1, -1, 1),
    7: (1, 1, 1, -1, -1, 1, -1),
    11: (1, 1, 1, -1, -1, -1, 1, -1, -1, 1, -1),
    13: (1, 1, 1, 1, 1, -1, -1, 1, 1, -1, 1, -1, 1),
}

#: Length used by the prototype firmware (§6).
DEFAULT_LENGTH = 13


def barker_code(length: int = DEFAULT_LENGTH) -> np.ndarray:
    """Barker code of ``length`` as a +1/-1 float array.

    Raises:
        ConfigurationError: if no Barker code of that length exists.
    """
    if length not in BARKER_CODES:
        raise ConfigurationError(
            f"no Barker code of length {length}; known lengths: "
            f"{sorted(BARKER_CODES)}"
        )
    return np.array(BARKER_CODES[length], dtype=float)


def barker_bits(length: int = DEFAULT_LENGTH) -> List[int]:
    """Barker code as 0/1 bits (chip +1 -> bit 1, chip -1 -> bit 0)."""
    return [1 if chip > 0 else 0 for chip in BARKER_CODES[length]]


@lru_cache(maxsize=256)
def _chips_for(bits: Tuple[float, ...]) -> np.ndarray:
    """Validated, read-only chip template for a bit tuple.

    Chip templates are re-derived for every correlation call on the
    decode hot path (the preamble search alone used to do it once per
    candidate offset), so the handful of distinct templates in play are
    cached.  The array is marked non-writeable because it is shared.
    """
    chips = np.asarray(bits, dtype=float)
    if not np.all(np.isin(chips, (0.0, 1.0))):
        raise ConfigurationError("bits must be 0/1")
    out = 2.0 * chips - 1.0
    out.flags.writeable = False
    return out


def bits_to_chips(bits: Sequence[int]) -> np.ndarray:
    """Map 0/1 bits to -1/+1 chips for correlation.

    Returns a shared read-only array (cached per distinct bit pattern);
    callers that need to mutate it must copy.
    """
    return _chips_for(tuple(float(b) for b in bits))


def autocorrelation_sidelobe_ratio(code: np.ndarray) -> float:
    """Peak-to-max-sidelobe ratio of a code's aperiodic autocorrelation.

    Barker codes achieve the theoretical optimum (ratio == length).
    """
    code = np.asarray(code, dtype=float)
    full = np.correlate(code, code, mode="full")
    peak = full[len(code) - 1]
    sidelobes = np.delete(full, len(code) - 1)
    max_side = np.abs(sidelobes).max() if len(sidelobes) else 0.0
    if max_side == 0:
        return float("inf")
    return float(abs(peak) / max_side)


register_cache("core.barker_chip_templates", _chips_for)
