"""Noise-variance-weighted combining across sub-channels (§3.2 step 2.2).

"The Wi-Fi reader combines the information across the sub-channels by
computing a weighted average where sub-channels with low noise
variance are given a higher weight":

    CSI_weighted = sum_i CSI_i / sigma_i^2

"similar to maximum ratio combining techniques ... known to be optimal
for Gaussian noise". We additionally carry each channel's polarity
(sign of its preamble correlation) so that sub-channels where the
reflecting state *lowers* the amplitude contribute constructively.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.subchannel import expected_chips_at
from repro.errors import ConfigurationError

#: Floor applied to estimated noise variances to avoid infinite weights.
MIN_VARIANCE = 1e-6


def estimate_noise_variance(
    normalized: np.ndarray,
    timestamps_s: np.ndarray,
    start_time_s: float,
    preamble_bits: Sequence[int],
    bit_duration_s: float,
    correlations: np.ndarray,
) -> np.ndarray:
    """Per-channel noise variance from preamble residuals.

    During the preamble the transmitted chips are known, so the
    residual after removing each channel's best-fit modulation
    (``correlation * chip``) is pure noise.

    Returns:
        Variance per channel, floored at :data:`MIN_VARIANCE`.
    """
    normalized = np.asarray(normalized, dtype=float)
    chips = expected_chips_at(
        timestamps_s, start_time_s, preamble_bits, bit_duration_s
    )
    mask = chips != 0
    if int(mask.sum()) < 2:
        raise ConfigurationError(
            "need at least 2 preamble packets to estimate noise variance"
        )
    residual = normalized[mask] - np.outer(chips[mask], correlations)
    var = residual.var(axis=0)
    return np.maximum(var, MIN_VARIANCE)


@dataclass(frozen=True)
class CombinerWeights:
    """MRC weights for a set of good channels.

    Attributes:
        channel_indices: which channels participate.
        weights: signed weight per participating channel
            (``sign(correlation) / variance``).
    """

    channel_indices: np.ndarray
    weights: np.ndarray

    def __post_init__(self) -> None:
        if len(self.channel_indices) != len(self.weights):
            raise ConfigurationError("indices and weights must align")
        if len(self.channel_indices) == 0:
            raise ConfigurationError("combiner needs at least one channel")


def make_weights(
    correlations: np.ndarray,
    variances: np.ndarray,
    channel_indices: np.ndarray,
) -> CombinerWeights:
    """Build signed MRC weights for the selected channels.

    The magnitude follows the paper's ``1 / sigma_i^2``; the sign comes
    from the preamble correlation so inverted-polarity channels add
    constructively.
    """
    correlations = np.asarray(correlations, dtype=float)
    variances = np.asarray(variances, dtype=float)
    idx = np.asarray(channel_indices, dtype=int)
    if np.any(idx < 0) or np.any(idx >= len(correlations)):
        raise ConfigurationError("channel index out of range")
    signs = np.sign(correlations[idx])
    signs[signs == 0] = 1.0
    weights = signs / np.maximum(variances[idx], MIN_VARIANCE)
    return CombinerWeights(channel_indices=idx, weights=weights)


#: A single channel carrying more than this share of total |weight|
#: means the combiner has effectively collapsed onto it.
COLLAPSE_SHARE = 0.9


def weight_diagnostics(weights: CombinerWeights) -> dict:
    """Forensics summary of an MRC weight vector.

    ``weight_max_share`` is the dominant channel's fraction of the
    total absolute weight; near 1.0 the "combiner" is really a single
    (possibly poisoned) channel, which the attribution engine labels
    ``mrc_weight_collapse``.
    """
    magnitudes = np.abs(np.asarray(weights.weights, dtype=float))
    total = float(magnitudes.sum())
    share = float(magnitudes.max() / total) if total > 0 else 1.0
    return {
        "channels": [int(c) for c in weights.channel_indices],
        "weights": [float(w) for w in weights.weights],
        "weight_total": total,
        "weight_max_share": share,
        "collapsed": bool(len(magnitudes) > 1 and share > COLLAPSE_SHARE),
    }


def combine(normalized: np.ndarray, weights: CombinerWeights) -> np.ndarray:
    """Weighted per-packet decision statistic.

    Args:
        normalized: conditioned measurements (packets x channels).
        weights: output of :func:`make_weights`.

    Returns:
        1-D array (one combined value per packet), scaled so that the
        ideal '1'/'0' levels sit near +1/-1 (weights are normalized by
        their absolute sum).
    """
    normalized = np.asarray(normalized, dtype=float)
    if normalized.ndim != 2:
        raise ConfigurationError("normalized must be 2-D (packets x channels)")
    total = np.abs(weights.weights).sum()
    return normalized[:, weights.channel_indices] @ (weights.weights / total)
