"""Multi-tag inventory via framed slotted ALOHA (extension of §2).

"In the presence of multiple Wi-Fi Backscatter tags in the vicinity,
the interrogator can use protocols similar to EPC Gen-2 to identify
these devices and then query each of them individually." The paper
leaves this as future work; we implement the EPC Gen-2 Q-algorithm
style inventory round so multi-tag deployments can be simulated:

* the reader broadcasts a round announcement with a frame size 2^Q,
* each unidentified tag draws a random slot and backscatters its
  address in that slot,
* empty slots and collision slots are detected by the reader; singleton
  slots identify a tag, which is then ACKed and silenced,
* Q adapts between rounds based on the collision/empty ratio.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.errors import ConfigurationError

#: Bounds for the Q parameter (frame size = 2**Q slots).
Q_MIN = 0
Q_MAX = 8


@dataclass
class InventoryTag:
    """A simulated tag participating in inventory.

    Attributes:
        address: the tag's 16-bit address.
        respond_probability: chance its slot response is decodable at
            the reader (models range/SNR).
    """

    address: int
    respond_probability: float = 1.0

    def __post_init__(self) -> None:
        if not 0 <= self.address < (1 << 16):
            raise ConfigurationError("address must fit in 16 bits")
        if not 0.0 <= self.respond_probability <= 1.0:
            raise ConfigurationError("respond_probability must be in [0, 1]")


@dataclass(frozen=True)
class RoundStats:
    """Per-round inventory statistics."""

    q: int
    slots: int
    singletons: int
    collisions: int
    empties: int
    identified: Sequence[int]


@dataclass
class InventoryResult:
    """Outcome of a full inventory run."""

    identified: List[int] = field(default_factory=list)
    rounds: List[RoundStats] = field(default_factory=list)

    @property
    def total_slots(self) -> int:
        return sum(r.slots for r in self.rounds)


class SlottedAlohaInventory:
    """EPC Gen-2-style inventory engine at the reader.

    Attributes:
        initial_q: starting Q (frame size 2^Q).
        max_rounds: give-up bound.
        rng: random source.
    """

    def __init__(
        self,
        initial_q: int = 2,
        max_rounds: int = 32,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        if not Q_MIN <= initial_q <= Q_MAX:
            raise ConfigurationError(f"initial_q must be in [{Q_MIN}, {Q_MAX}]")
        if max_rounds < 1:
            raise ConfigurationError("max_rounds must be >= 1")
        self.initial_q = initial_q
        self.max_rounds = max_rounds
        self.rng = rng or np.random.default_rng()

    def run(self, tags: Sequence[InventoryTag]) -> InventoryResult:
        """Identify every tag (or stop at the round budget).

        Raises:
            ConfigurationError: on duplicate tag addresses.
        """
        addresses = [t.address for t in tags]
        if len(set(addresses)) != len(addresses):
            raise ConfigurationError("tag addresses must be unique")
        remaining: Dict[int, InventoryTag] = {t.address: t for t in tags}
        result = InventoryResult()
        q = self.initial_q
        for _ in range(self.max_rounds):
            if not remaining:
                break
            slots = 1 << q
            # Each remaining tag draws a slot; some responses are lost.
            slot_map: Dict[int, List[int]] = {}
            for tag in remaining.values():
                if self.rng.random() > tag.respond_probability:
                    continue
                slot = int(self.rng.integers(0, slots))
                slot_map.setdefault(slot, []).append(tag.address)
            singletons = [v[0] for v in slot_map.values() if len(v) == 1]
            collisions = sum(1 for v in slot_map.values() if len(v) > 1)
            empties = slots - len(slot_map)
            for address in singletons:
                result.identified.append(address)
                del remaining[address]
            result.rounds.append(
                RoundStats(
                    q=q,
                    slots=slots,
                    singletons=len(singletons),
                    collisions=collisions,
                    empties=empties,
                    identified=tuple(singletons),
                )
            )
            q = self._adapt_q(q, collisions, empties)
        return result

    @staticmethod
    def _adapt_q(q: int, collisions: int, empties: int) -> int:
        """Q-algorithm style adjustment: grow on collisions, shrink on
        empties."""
        if collisions > empties:
            return min(Q_MAX, q + 1)
        if empties > 2 * max(collisions, 1):
            return max(Q_MIN, q - 1)
        return q


def expected_rounds_lower_bound(num_tags: int, q: int) -> float:
    """Rough analytic lower bound on rounds to identify ``num_tags``.

    With frame size ``2**q`` and n tags, the expected singleton count
    per round is ``n * (1 - 1/2**q) ** (n - 1)``; the bound is
    ``n / that``. Used in tests as a sanity envelope.
    """
    if num_tags < 1:
        raise ConfigurationError("num_tags must be >= 1")
    slots = 1 << q
    p_single = (1.0 - 1.0 / slots) ** (num_tags - 1)
    per_round = num_tags * p_single
    if per_round <= 0:
        return float("inf")
    return num_tags / per_round
