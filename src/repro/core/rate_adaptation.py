"""Uplink bit-rate adaptation to network traffic (§5).

"Suppose the Wi-Fi helper can transmit, on average, N packets per
second given the current network load and suppose the Wi-Fi reader
requires the channel information from M packets to reliably decode
each bit. ... the rate at which the Wi-Fi Backscatter tag sends bits
is given by N/M bits per second. The Wi-Fi reader computes this bit
rate and transmits this information in the query packet."

The reader also "provides conservative bit rate estimates ... to
minimize the probability of not receiving channel information for some
of the transmitted bits" — implemented as a safety factor and by
rounding down to the tag's supported rate set.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.errors import ConfigurationError

#: Bit rates the paper's experiments exercise on the uplink (§7.2).
STANDARD_RATES_BPS = (100.0, 200.0, 500.0, 1000.0)


def estimate_packet_rate(timestamps_s: Sequence[float]) -> float:
    """Observed helper packet rate (packets/s) from capture timestamps.

    Raises:
        ConfigurationError: with fewer than 2 packets or zero span.
    """
    ts = np.asarray(timestamps_s, dtype=float)
    if len(ts) < 2:
        raise ConfigurationError("need at least 2 packets to estimate a rate")
    span = float(ts[-1] - ts[0])
    if span <= 0:
        raise ConfigurationError("timestamps must span a positive duration")
    return (len(ts) - 1) / span


@dataclass(frozen=True)
class RatePlan:
    """The reader's uplink rate decision, sent in the query packet.

    Attributes:
        bit_rate_bps: the rate the tag should transmit at.
        packets_per_bit: expected mean measurements per bit at that rate.
        helper_rate_pps: the measured helper packet rate.
    """

    bit_rate_bps: float
    packets_per_bit: float
    helper_rate_pps: float


class UplinkRatePlanner:
    """Computes N/M rate plans with a conservative margin.

    Attributes:
        packets_per_bit: M — measurements the decoder wants per bit
            (the paper sweeps 3/6/30 in Fig 10).
        safety_factor: multiplier > 1 shrinking the advertised rate to
            ride out bursty traffic ("conservative bit rate estimates").
        supported_rates_bps: discrete rates the tag supports; the plan
            rounds down into this set. ``None`` allows any rate.
    """

    def __init__(
        self,
        packets_per_bit: float = 5.0,
        safety_factor: float = 1.0,
        supported_rates_bps: Optional[Sequence[float]] = STANDARD_RATES_BPS,
    ) -> None:
        if packets_per_bit <= 0:
            raise ConfigurationError("packets_per_bit must be positive")
        if safety_factor < 1.0:
            raise ConfigurationError("safety_factor must be >= 1")
        if supported_rates_bps is not None and not supported_rates_bps:
            raise ConfigurationError("supported_rates_bps must be non-empty")
        self.packets_per_bit = packets_per_bit
        self.safety_factor = safety_factor
        self.supported_rates_bps = (
            tuple(sorted(supported_rates_bps))
            if supported_rates_bps is not None
            else None
        )

    def plan(self, helper_rate_pps: float) -> RatePlan:
        """Rate plan for an observed helper packet rate.

        Returns the largest supported rate not exceeding
        ``N / (M * safety_factor)``; if even the smallest supported
        rate is too fast, the smallest is returned anyway (the tag must
        transmit at *some* rate; reliability degrades gracefully via
        the majority vote).
        """
        if helper_rate_pps <= 0:
            raise ConfigurationError("helper_rate_pps must be positive")
        raw = helper_rate_pps / (self.packets_per_bit * self.safety_factor)
        if self.supported_rates_bps is None:
            rate = raw
        else:
            eligible = [r for r in self.supported_rates_bps if r <= raw]
            rate = eligible[-1] if eligible else self.supported_rates_bps[0]
        return RatePlan(
            bit_rate_bps=rate,
            packets_per_bit=helper_rate_pps / rate,
            helper_rate_pps=helper_rate_pps,
        )

    def plan_from_capture(self, timestamps_s: Sequence[float]) -> RatePlan:
        """Plan directly from observed capture timestamps."""
        return self.plan(estimate_packet_rate(timestamps_s))
