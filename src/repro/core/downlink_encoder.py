"""Downlink encoding at the Wi-Fi reader (§4.1).

The reader "encodes a '1' bit with presence of a Wi-Fi packet and a
'0' bit with silence ... the duration of the silence period is set to
be equal to that of the Wi-Fi packet", and protects the silences with
a CTS_to_SELF reservation. Reservations are capped at 32 ms, so long
messages are split across multiple CTS_to_SELF windows.

Two outputs are supported from the same encoding:

* :meth:`DownlinkEncoder.air_intervals` — packet on-air intervals for
  the envelope/circuit simulation;
* :meth:`DownlinkEncoder.schedule` — CTS_to_SELF + short mark frames
  queued into a MAC station, for whole-network simulations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro import units
from repro.core.frames import DownlinkMessage
from repro.errors import ConfigurationError
from repro.mac.cts_to_self import ReservationPlan, cts_to_self_frame, plan_reservations
from repro.mac.packets import FrameKind, WifiFrame
from repro.mac.station import Station
from repro.phy import constants
from repro.phy.envelope import AirInterval
from repro.phy.ofdm import airtime_for_duration

#: Paper bit rates and their packet/silence slot lengths.
BIT_DURATION_20KBPS_S = 50e-6
BIT_DURATION_10KBPS_S = 100e-6
BIT_DURATION_5KBPS_S = 200e-6


@dataclass
class DownlinkEncoder:
    """Builds the on-off keyed downlink transmission for a message.

    Attributes:
        bit_duration_s: packet/silence slot duration (50 us = 20 kbps).
        tx_power_w: reader transmit power (paper: +16 dBm).
        gap_between_windows_s: idle time between successive CTS_to_SELF
            windows (medium re-contention).
    """

    bit_duration_s: float = BIT_DURATION_20KBPS_S
    tx_power_w: float = field(default_factory=lambda: units.dbm_to_watts(16.0))
    gap_between_windows_s: float = 1e-3

    def __post_init__(self) -> None:
        if self.bit_duration_s < constants.MIN_WIFI_PACKET_DURATION_S:
            raise ConfigurationError(
                f"bit duration {self.bit_duration_s * 1e6:.0f} us is below "
                f"the minimum Wi-Fi packet airtime "
                f"({constants.MIN_WIFI_PACKET_DURATION_S * 1e6:.0f} us)"
            )
        if self.gap_between_windows_s < 0:
            raise ConfigurationError("gap_between_windows_s must be >= 0")

    @property
    def bit_rate_bps(self) -> float:
        """Downlink bit rate implied by the slot duration."""
        return 1.0 / self.bit_duration_s

    def plan(self, message: DownlinkMessage) -> ReservationPlan:
        """CTS_to_SELF window plan for ``message``."""
        return plan_reservations(message.num_bits, self.bit_duration_s)

    def message_airtime_s(self, message: DownlinkMessage) -> float:
        """Total airtime including inter-window gaps.

        For the paper's canonical 64-bit payload + 16-bit preamble at
        50 us bits this is 4.8 ms of reserved time (96 bits with the
        CRC; the paper's 4.0 ms figure counts the 80 preamble+payload
        bits).
        """
        plan = self.plan(message)
        return plan.total_reserved_s + self.gap_between_windows_s * (
            plan.num_windows - 1
        )

    def air_intervals(
        self, message: DownlinkMessage, start_s: float = 0.0
    ) -> List[AirInterval]:
        """Packet intervals (for the envelope simulation).

        '1' bits are packets of one slot; '0' bits are silence. Window
        gaps appear as extra silence between CTS windows.
        """
        bits = message.to_bits()
        plan = self.plan(message)
        intervals: List[AirInterval] = []
        t = start_s
        offset = 0
        for window_bits in plan.bits_per_window:
            for bit in bits[offset : offset + window_bits]:
                if bit:
                    intervals.append(
                        AirInterval(
                            start_s=t,
                            duration_s=self.bit_duration_s,
                            power_w=self.tx_power_w,
                        )
                    )
                t += self.bit_duration_s
            offset += window_bits
            t += self.gap_between_windows_s
        return intervals

    def schedule(self, station: Station, message: DownlinkMessage) -> int:
        """Queue the CTS_to_SELF frames + mark packets into a MAC station.

        Each window is one CTS_to_SELF (reserving the window's NAV)
        followed by a DOWNLINK_MARK frame per '1' bit. Returns the
        number of frames queued.

        Note: within a reserved window the mark frames are queued
        back-to-back; the receiver-side timing in whole-network
        simulations is approximate — bit-exact timing experiments use
        :meth:`air_intervals` with the envelope simulator instead.
        """
        bits = message.to_bits()
        plan = self.plan(message)
        queued = 0
        offset = 0
        mark = airtime_for_duration(self.bit_duration_s)
        for window_s, window_bits in zip(
            plan.window_durations_s, plan.bits_per_window
        ):
            station.send(
                cts_to_self_frame(
                    station.name, nav_s=window_s, tx_power_w=self.tx_power_w
                )
            )
            queued += 1
            for bit in bits[offset : offset + window_bits]:
                if bit:
                    station.send(
                        WifiFrame(
                            src=station.name,
                            dst="*",
                            kind=FrameKind.DOWNLINK_MARK,
                            payload_bytes=mark.payload_bytes,
                            rate_bps=mark.rate_bps,
                            tx_power_w=self.tx_power_w,
                        )
                    )
                    queued += 1
            offset += window_bits
        return queued


def bit_duration_for_rate(rate_bps: float) -> float:
    """Slot duration for a requested downlink bit rate.

    Raises:
        ConfigurationError: if the rate needs packets shorter than the
            40 us Wi-Fi minimum.
    """
    if rate_bps <= 0:
        raise ConfigurationError("rate_bps must be positive")
    duration = 1.0 / rate_bps
    if duration < constants.MIN_WIFI_PACKET_DURATION_S:
        raise ConfigurationError(
            f"rate {rate_bps:.0f} bps needs {duration * 1e6:.0f} us packets, "
            "below the Wi-Fi minimum"
        )
    return duration
