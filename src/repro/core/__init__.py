"""The paper's core contribution: uplink/downlink coding and decoding.

Everything in this package is the Wi-Fi Backscatter system proper —
the algorithms a real deployment would run on the reader and in the
tag firmware: framing (:mod:`~repro.core.frames`,
:mod:`~repro.core.barker`), the CSI/RSSI uplink pipeline
(:mod:`~repro.core.uplink_decoder` and its stages), the long-range
correlation decoder (:mod:`~repro.core.correlation_decoder`), downlink
on-off-keying over CTS_to_SELF windows
(:mod:`~repro.core.downlink_encoder`/``downlink_decoder``), rate
adaptation (:mod:`~repro.core.rate_adaptation`), the query-response
protocol (:mod:`~repro.core.protocol`), and multi-tag inventory
(:mod:`~repro.core.inventory`).
"""

from repro.core.ack import AckDetector, AckResult, ack_slot_start
from repro.core.barker import barker_bits, barker_code
from repro.core.coding import OrthogonalCodePair, correlation_gain_db, make_code_pair
from repro.core.combining import CombinerWeights, combine, make_weights
from repro.core.conditioning import ConditionedMeasurements, condition
from repro.core.correlation_decoder import CorrelationDecodeResult, CorrelationDecoder
from repro.core.downlink_decoder import (
    DownlinkDecoder,
    IntervalPreambleMatcher,
    PreambleMatch,
)
from repro.core.downlink_encoder import (
    BIT_DURATION_5KBPS_S,
    BIT_DURATION_10KBPS_S,
    BIT_DURATION_20KBPS_S,
    DownlinkEncoder,
    bit_duration_for_rate,
)
from repro.core.fragmentation import Reassembler, fragment_payload, parse_fragment
from repro.core.frames import DownlinkMessage, UplinkFrame, crc8, crc16
from repro.core.inventory import InventoryResult, InventoryTag, SlottedAlohaInventory
from repro.core.protocol import (
    Query,
    TransactionResult,
    WiFiBackscatterReader,
    decode_query,
    encode_query,
)
from repro.core.rate_adaptation import RatePlan, UplinkRatePlanner
from repro.core.slicer import (
    HysteresisThresholds,
    compute_thresholds,
    hysteresis_slice,
    majority_vote_bits,
)
from repro.core.subchannel import (
    PreambleDetection,
    detect_preamble,
    select_good_subchannels,
)
from repro.core.uplink_decoder import (
    UplinkDecodeResult,
    UplinkDecoder,
    UplinkDecoderConfig,
)

__all__ = [
    "AckDetector",
    "AckResult",
    "BIT_DURATION_10KBPS_S",
    "BIT_DURATION_20KBPS_S",
    "BIT_DURATION_5KBPS_S",
    "CombinerWeights",
    "ConditionedMeasurements",
    "CorrelationDecodeResult",
    "CorrelationDecoder",
    "DownlinkDecoder",
    "DownlinkEncoder",
    "DownlinkMessage",
    "HysteresisThresholds",
    "IntervalPreambleMatcher",
    "InventoryResult",
    "InventoryTag",
    "OrthogonalCodePair",
    "PreambleDetection",
    "PreambleMatch",
    "Query",
    "Reassembler",
    "RatePlan",
    "SlottedAlohaInventory",
    "TransactionResult",
    "UplinkDecodeResult",
    "UplinkDecoder",
    "UplinkDecoderConfig",
    "UplinkFrame",
    "UplinkRatePlanner",
    "WiFiBackscatterReader",
    "ack_slot_start",
    "barker_bits",
    "barker_code",
    "bit_duration_for_rate",
    "combine",
    "compute_thresholds",
    "condition",
    "correlation_gain_db",
    "crc16",
    "crc8",
    "decode_query",
    "detect_preamble",
    "encode_query",
    "fragment_payload",
    "hysteresis_slice",
    "majority_vote_bits",
    "make_code_pair",
    "make_weights",
    "parse_fragment",
    "select_good_subchannels",
]
