"""Tag/reader message framing.

Uplink frames (§6): "Each packet consists of a Wi-Fi Backscatter
preamble, payload and a postamble. The reader uses the preamble and
postamble to recover the bit clock." The preamble is the 13-bit Barker
code; we use its reverse as the postamble so the two are individually
identifiable.

Downlink messages (§4.1): a 16-bit preamble followed by a payload of
up to 64 bits including a CRC — "the Wi-Fi reader can transmit a
64-bit payload message with a 16-bit preamble in 4.0 ms".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.core.barker import barker_bits
from repro.errors import ConfigurationError, CrcError, FrameError

#: 16-bit downlink preamble: alternating pairs chosen for a distinctive
#: on-off interval structure that plain Wi-Fi traffic rarely mimics.
DOWNLINK_PREAMBLE_BITS: Tuple[int, ...] = (
    1, 0, 1, 0, 0, 1, 1, 0, 1, 1, 0, 0, 1, 0, 1, 1,
)

#: CRC-8 polynomial (CRC-8/ATM: x^8 + x^2 + x + 1).
CRC8_POLY = 0x07

#: CRC-16 polynomial (CRC-16/CCITT-FALSE).
CRC16_POLY = 0x1021


def crc8(bits: Sequence[int]) -> int:
    """CRC-8 over a bit sequence (MSB first)."""
    _validate_bits(bits)
    crc = 0
    for bit in bits:
        crc ^= bit << 7
        crc = ((crc << 1) ^ CRC8_POLY) & 0xFF if crc & 0x80 else (crc << 1) & 0xFF
    return crc


def crc16(bits: Sequence[int]) -> int:
    """CRC-16/CCITT over a bit sequence (MSB first)."""
    _validate_bits(bits)
    crc = 0xFFFF
    for bit in bits:
        crc ^= bit << 15
        crc = ((crc << 1) ^ CRC16_POLY) & 0xFFFF if crc & 0x8000 else (crc << 1) & 0xFFFF
    return crc


def int_to_bits(value: int, width: int) -> List[int]:
    """Big-endian bit list of ``value`` in ``width`` bits."""
    if value < 0 or value >= (1 << width):
        raise ConfigurationError(f"value {value} does not fit in {width} bits")
    return [(value >> (width - 1 - i)) & 1 for i in range(width)]


def bits_to_int(bits: Sequence[int]) -> int:
    """Big-endian integer from a bit list."""
    _validate_bits(bits)
    out = 0
    for bit in bits:
        out = (out << 1) | bit
    return out


def bytes_to_bits(data: bytes) -> List[int]:
    """MSB-first bit list of a byte string."""
    return [(byte >> (7 - i)) & 1 for byte in data for i in range(8)]


def bits_to_bytes(bits: Sequence[int]) -> bytes:
    """Pack an MSB-first bit list (length multiple of 8) into bytes."""
    _validate_bits(bits)
    if len(bits) % 8:
        raise FrameError(f"bit count {len(bits)} is not a multiple of 8")
    return bytes(
        bits_to_int(bits[i : i + 8]) for i in range(0, len(bits), 8)
    )


def _validate_bits(bits: Sequence[int]) -> None:
    for bit in bits:
        if bit not in (0, 1):
            raise ConfigurationError(f"bits must be 0/1, got {bit!r}")


@dataclass(frozen=True)
class UplinkFrame:
    """A tag-to-reader frame: preamble | payload | crc8 | postamble."""

    payload_bits: Tuple[int, ...]

    def __post_init__(self) -> None:
        _validate_bits(self.payload_bits)
        if not self.payload_bits:
            raise FrameError("payload must be non-empty")

    @property
    def preamble(self) -> List[int]:
        return barker_bits()

    @property
    def postamble(self) -> List[int]:
        return list(reversed(barker_bits()))

    def to_bits(self, include_crc: bool = True) -> List[int]:
        """Full on-air bit sequence."""
        bits = list(self.preamble) + list(self.payload_bits)
        if include_crc:
            bits += int_to_bits(crc8(self.payload_bits), 8)
        return bits + self.postamble

    @classmethod
    def parse(cls, bits: Sequence[int], payload_len: int) -> "UplinkFrame":
        """Parse and CRC-check a full frame bit sequence.

        Args:
            bits: received bits starting at the preamble.
            payload_len: expected payload length in bits.

        Raises:
            FrameError: wrong length or preamble mismatch.
            CrcError: payload CRC check failed.
        """
        pre = barker_bits()
        expected_len = len(pre) * 2 + payload_len + 8
        if len(bits) != expected_len:
            raise FrameError(
                f"frame length {len(bits)} != expected {expected_len}"
            )
        if list(bits[: len(pre)]) != pre:
            raise FrameError("preamble mismatch")
        payload = tuple(bits[len(pre) : len(pre) + payload_len])
        crc_bits = bits[len(pre) + payload_len : len(pre) + payload_len + 8]
        expected_crc = crc8(payload)
        actual_crc = bits_to_int(crc_bits)
        if actual_crc != expected_crc:
            raise CrcError(expected=expected_crc, actual=actual_crc)
        return cls(payload_bits=payload)


@dataclass(frozen=True)
class DownlinkMessage:
    """A reader-to-tag message: 16-bit preamble | payload | crc16.

    The paper's canonical message is a 64-bit payload; with the 16-bit
    preamble and 50 us bits it fits a single 4.0 ms CTS_to_SELF window.
    """

    payload_bits: Tuple[int, ...]

    MAX_PAYLOAD_BITS = 64

    def __post_init__(self) -> None:
        _validate_bits(self.payload_bits)
        if not self.payload_bits:
            raise FrameError("payload must be non-empty")
        if len(self.payload_bits) > self.MAX_PAYLOAD_BITS:
            raise FrameError(
                f"payload of {len(self.payload_bits)} bits exceeds the "
                f"{self.MAX_PAYLOAD_BITS}-bit downlink limit; split across "
                "multiple messages"
            )

    def to_bits(self) -> List[int]:
        """Full on-air bit sequence (preamble + payload + CRC-16)."""
        return (
            list(DOWNLINK_PREAMBLE_BITS)
            + list(self.payload_bits)
            + int_to_bits(crc16(self.payload_bits), 16)
        )

    @property
    def num_bits(self) -> int:
        return len(DOWNLINK_PREAMBLE_BITS) + len(self.payload_bits) + 16

    def airtime_s(self, bit_duration_s: float) -> float:
        """Message duration at the given on-off bit slot length."""
        if bit_duration_s <= 0:
            raise ConfigurationError("bit_duration_s must be positive")
        return self.num_bits * bit_duration_s

    @classmethod
    def parse(cls, bits: Sequence[int], payload_len: int) -> "DownlinkMessage":
        """Parse a post-preamble downlink bit sequence and check CRC.

        Args:
            bits: payload + CRC bits (the preamble is consumed by the
                tag's preamble detector before decoding starts).
            payload_len: expected payload bit count.

        Raises:
            FrameError: wrong length.
            CrcError: CRC check failed.
        """
        if len(bits) != payload_len + 16:
            raise FrameError(
                f"expected {payload_len + 16} bits (payload+crc), got {len(bits)}"
            )
        payload = tuple(bits[:payload_len])
        actual = bits_to_int(bits[payload_len:])
        expected = crc16(payload)
        if actual != expected:
            raise CrcError(expected=expected, actual=actual)
        return cls(payload_bits=payload)
