"""Downlink fragmentation across CTS_to_SELF windows (§4.1).

A single downlink message is capped by the medium-reservation rules:
"the Wi-Fi reader can transmit a 64-bit payload message with a 16-bit
preamble in 4.0 ms. We can transmit more bits by splitting them across
multiple CTS_to_SELF packets." This module implements that splitting:

* the sender chops a byte payload into fragments, each carried in one
  :class:`~repro.core.frames.DownlinkMessage` with a small header
  (4-bit fragment index, 4-bit fragment count) ahead of the data;
* the tag-side :class:`Reassembler` accepts fragments in any order,
  tolerates duplicates (retransmissions), and yields the payload when
  complete.

Each fragment is individually CRC-16 protected by the message framing,
so a corrupted fragment is re-requested rather than poisoning the
whole transfer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.core.frames import (
    DownlinkMessage,
    bits_to_bytes,
    bits_to_int,
    bytes_to_bits,
    int_to_bits,
)
from repro.errors import ConfigurationError, FrameError

#: Header bits: 4-bit fragment index + 4-bit fragment count.
HEADER_BITS = 8

#: Data bits per fragment (message payload cap minus the header).
FRAGMENT_DATA_BITS = DownlinkMessage.MAX_PAYLOAD_BITS - HEADER_BITS

#: Maximum fragments addressable by the 4-bit index.
MAX_FRAGMENTS = 16

#: Largest transferable payload in bytes.
MAX_TRANSFER_BYTES = (MAX_FRAGMENTS * FRAGMENT_DATA_BITS) // 8


def fragment_payload(data: bytes) -> List[DownlinkMessage]:
    """Split ``data`` into a sequence of framed downlink fragments.

    Args:
        data: payload bytes (1 to :data:`MAX_TRANSFER_BYTES`).

    Raises:
        ConfigurationError: empty or oversized payload.
    """
    if not data:
        raise ConfigurationError("data must be non-empty")
    if len(data) > MAX_TRANSFER_BYTES:
        raise ConfigurationError(
            f"payload of {len(data)} bytes exceeds the "
            f"{MAX_TRANSFER_BYTES}-byte transfer limit "
            f"({MAX_FRAGMENTS} fragments)"
        )
    bits = bytes_to_bits(data)
    chunks = [
        bits[i : i + FRAGMENT_DATA_BITS]
        for i in range(0, len(bits), FRAGMENT_DATA_BITS)
    ]
    total = len(chunks)
    messages = []
    for index, chunk in enumerate(chunks):
        header = int_to_bits(index, 4) + int_to_bits(total - 1, 4)
        messages.append(DownlinkMessage(payload_bits=tuple(header + chunk)))
    return messages


@dataclass(frozen=True)
class Fragment:
    """A parsed fragment."""

    index: int
    total: int
    data_bits: Sequence[int]


def parse_fragment(message: DownlinkMessage) -> Fragment:
    """Extract the fragmentation header from a received message.

    Raises:
        FrameError: malformed header (index beyond the count).
    """
    bits = list(message.payload_bits)
    if len(bits) < HEADER_BITS + 1:
        raise FrameError("fragment too short to carry a header")
    index = bits_to_int(bits[:4])
    total = bits_to_int(bits[4:8]) + 1
    if index >= total:
        raise FrameError(f"fragment index {index} beyond count {total}")
    return Fragment(index=index, total=total, data_bits=bits[HEADER_BITS:])


@dataclass
class Reassembler:
    """Tag-side reassembly of a fragmented transfer.

    Fragments may arrive out of order or more than once (the reader
    retransmits anything unacknowledged). ``feed`` returns the
    completed payload once every fragment has arrived, else ``None``.
    """

    _fragments: Dict[int, Fragment] = field(default_factory=dict)
    _total: Optional[int] = None

    def feed(self, message: DownlinkMessage) -> Optional[bytes]:
        """Accept one fragment; returns the payload when complete.

        Raises:
            FrameError: a fragment disagrees with the transfer's
                fragment count (mixed-up transfers).
        """
        fragment = parse_fragment(message)
        if self._total is None:
            self._total = fragment.total
        elif fragment.total != self._total:
            raise FrameError(
                f"fragment count mismatch: transfer has {self._total}, "
                f"fragment says {fragment.total}"
            )
        self._fragments[fragment.index] = fragment
        if len(self._fragments) < self._total:
            return None
        bits: List[int] = []
        for index in range(self._total):
            bits.extend(self._fragments[index].data_bits)
        # Trim padding down to whole bytes (the last fragment may carry
        # fewer data bits than the slot allows).
        usable = len(bits) - (len(bits) % 8)
        return bits_to_bytes(bits[:usable])

    @property
    def missing(self) -> List[int]:
        """Fragment indices still outstanding (for selective repeat)."""
        if self._total is None:
            return []
        return [i for i in range(self._total) if i not in self._fragments]

    def reset(self) -> None:
        """Drop state ahead of a new transfer."""
        self._fragments.clear()
        self._total = None
