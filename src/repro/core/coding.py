"""Orthogonal code pairs for the long-range uplink (§3.4).

To extend range past the point where the two reflection states are
separable per-measurement, "the tag transmits two orthogonal codes of
length L each, to represent the one and the zero bits. The Wi-Fi
reader correlates the channel measurements with the two codes and
outputs the bit corresponding to the larger correlation value."

We generate the code pairs from Walsh-Hadamard rows, which are exactly
orthogonal, DC-balanced (important because the reader's signal
conditioning removes the mean), and cheap for the tag to store.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.obs.caches import register_cache


def _hadamard(order: int) -> np.ndarray:
    """Sylvester-construction Hadamard matrix of size ``order`` (power of 2)."""
    if order < 1 or order & (order - 1):
        raise ConfigurationError(f"Hadamard order must be a power of 2, got {order}")
    h = np.array([[1.0]])
    while h.shape[0] < order:
        h = np.block([[h, h], [h, -h]])
    return h


@dataclass(frozen=True)
class OrthogonalCodePair:
    """A (code_one, code_zero) pair of +1/-1 chip sequences.

    Attributes:
        code_one: chips transmitted for a '1' bit.
        code_zero: chips transmitted for a '0' bit.
    """

    code_one: Tuple[int, ...]
    code_zero: Tuple[int, ...]

    def __post_init__(self) -> None:
        if len(self.code_one) != len(self.code_zero):
            raise ConfigurationError("codes must have equal length")
        if not self.code_one:
            raise ConfigurationError("codes must be non-empty")
        for code in (self.code_one, self.code_zero):
            if any(chip not in (-1, 1) for chip in code):
                raise ConfigurationError("chips must be +1/-1")

    @property
    def length(self) -> int:
        return len(self.code_one)

    @property
    def cross_correlation(self) -> float:
        """Normalized inner product of the two codes (0 when orthogonal)."""
        a = np.asarray(self.code_one, dtype=float)
        b = np.asarray(self.code_zero, dtype=float)
        return float(a @ b) / self.length

    def chips_for_bit(self, bit: int) -> np.ndarray:
        if bit not in (0, 1):
            raise ConfigurationError(f"bit must be 0/1, got {bit!r}")
        return np.asarray(self.code_one if bit else self.code_zero, dtype=float)

    def encode(self, bits: Sequence[int]) -> np.ndarray:
        """Chip sequence for a whole message (length = L * len(bits))."""
        return np.concatenate([self.chips_for_bit(b) for b in bits])


@lru_cache(maxsize=64)
def make_code_pair(length: int) -> OrthogonalCodePair:
    """Orthogonal, DC-balanced code pair of exactly ``length`` chips.

    Cached: the pair is a pure function of ``length`` and an immutable
    dataclass, and trial workers rebuild it constantly (every
    correlation trial and every degraded ARQ attempt).

    For power-of-two lengths the pair comes straight from Hadamard rows.
    For other lengths (the paper quotes L = 20 and L = 150) we truncate
    rows of the next power-of-two Hadamard matrix, picking the row pair
    whose truncated prefixes stay orthogonal and balanced; truncation
    of rows with the right index structure preserves exact orthogonality
    when ``length`` is a multiple of 4.
    """
    if length < 2:
        raise ConfigurationError(f"code length must be >= 2, got {length}")
    # Build from a repeating 4-chip orthogonal kernel when possible:
    # rows [+1,+1,-1,-1] and [+1,-1,-1,+1] are orthogonal over every
    # window that is a multiple of 4 and both are DC balanced.
    kernel_one = np.array([1, 1, -1, -1])
    kernel_zero = np.array([1, -1, -1, 1])
    if length % 4 == 0:
        reps = length // 4
        one = np.tile(kernel_one, reps)
        zero = np.tile(kernel_zero, reps)
    else:
        # Fall back to Hadamard rows of the next power of 2, truncated;
        # re-orthogonalize by sign-flipping trailing chips if needed.
        order = 4  # need at least rows 1 and 2 of the Hadamard matrix
        while order < length:
            order *= 2
        h = _hadamard(order)
        one = h[1, :length].copy()
        zero = h[2, :length].copy()
        # Greedy repair of residual cross-correlation from truncation.
        for i in range(length - 1, -1, -1):
            dot = float(one @ zero)
            if dot == 0:
                break
            if np.sign(one[i] * zero[i]) == np.sign(dot):
                zero[i] = -zero[i]
    return OrthogonalCodePair(
        code_one=tuple(int(c) for c in one),
        code_zero=tuple(int(c) for c in zero),
    )


def correlation_gain_db(length: int) -> float:
    """Ideal SNR gain (dB) from correlating over an L-chip code.

    "Correlation with a L bit long code provides an increase in the SNR
    that is proportional to L" (§3.4).
    """
    if length < 1:
        raise ConfigurationError("length must be >= 1")
    return 10.0 * np.log10(length)


register_cache("core.make_code_pair", make_code_pair)
