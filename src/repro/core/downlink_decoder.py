"""Tag-side downlink decoding (§4.2).

The tag sees only the comparator's binary output. Decoding proceeds in
the two power modes of the paper's firmware:

* **Preamble detection mode** — "we keep the microcontroller asleep
  until a new transition occurs at the comparator's output. We then
  correlate the intervals between these transitions with the reference
  intervals for the preamble." This module implements that interval
  matcher: the known preamble's run-length structure is compared
  against the observed transition intervals with a timing tolerance.
* **Packet decoding mode** — after a preamble match, "the
  microcontroller ... sampl[es] the signal only in the middle of each
  transmitted bit", then checks framing and CRC.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro import obs
from repro.obs import forensics
from repro.core.frames import DOWNLINK_PREAMBLE_BITS, DownlinkMessage
from repro.errors import ConfigurationError, CrcError, DecodeError, FrameError


def run_lengths(bits: Sequence[int]) -> List[int]:
    """Run-length encoding of a bit sequence (first run starts the list)."""
    if not bits:
        raise ConfigurationError("bits must be non-empty")
    runs = [1]
    for prev, cur in zip(bits, bits[1:]):
        if cur == prev:
            runs[-1] += 1
        else:
            runs.append(1)
    return runs


#: Reference transition-interval pattern of the downlink preamble, in
#: bit-duration units.
PREAMBLE_RUNS: Tuple[int, ...] = tuple(run_lengths(list(DOWNLINK_PREAMBLE_BITS)))


def transitions(samples: np.ndarray, times_s: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Comparator output transitions.

    Args:
        samples: binary comparator output.
        times_s: matching sample times.

    Returns:
        ``(transition_times, new_levels)`` — the time of each level
        change and the level it changed to. The initial level at
        ``times_s[0]`` is prepended as a transition.
    """
    samples = np.asarray(samples, dtype=int)
    times = np.asarray(times_s, dtype=float)
    if samples.shape != times.shape:
        raise ConfigurationError("samples and times must have equal length")
    if samples.size == 0:
        raise ConfigurationError("samples must be non-empty")
    change = np.nonzero(np.diff(samples) != 0)[0] + 1
    t = np.concatenate([[times[0]], times[change]])
    levels = np.concatenate([[samples[0]], samples[change]])
    return t, levels


def debounce_transitions(
    transition_times_s: np.ndarray,
    levels: np.ndarray,
    min_run_s: float,
) -> Tuple[np.ndarray, np.ndarray]:
    """Remove runs shorter than ``min_run_s`` by merging neighbours.

    The analog comparator flickers on envelope troughs within a packet;
    the firmware's transition handler ignores runs much shorter than a
    bit. The final (open-ended) run is never removed.
    """
    if min_run_s < 0:
        raise ConfigurationError("min_run_s must be >= 0")
    t = np.asarray(transition_times_s, dtype=float)
    lv = np.asarray(levels, dtype=int)
    if len(t) != len(lv) or len(t) == 0:
        raise ConfigurationError("times and levels must be equal, non-empty")
    out_t = [float(t[0])]
    out_l = [int(lv[0])]
    for i in range(1, len(t)):
        ti, li = float(t[i]), int(lv[i])
        if li == out_l[-1]:
            continue
        if len(out_t) > 1 and ti - out_t[-1] < min_run_s:
            # The run being closed is shorter than the debounce window:
            # drop its opening transition, merging it into the level
            # before it. With binary levels the incoming level then
            # matches the merged-into level, so no new transition.
            out_t.pop()
            out_l.pop()
            if li == out_l[-1]:
                continue
        out_t.append(ti)
        out_l.append(li)
    return np.asarray(out_t), np.asarray(out_l)


@dataclass(frozen=True)
class PreambleMatch:
    """A matched downlink preamble.

    Attributes:
        end_time_s: time the preamble's final bit ends (payload starts
            here).
        bit_duration_s: estimated bit clock from the matched intervals.
        error: mean fractional interval mismatch of the match.
    """

    end_time_s: float
    bit_duration_s: float
    error: float


class IntervalPreambleMatcher:
    """Matches comparator transition intervals to the known preamble.

    Attributes:
        bit_duration_s: nominal bit duration the reader uses.
        tolerance: per-interval fractional timing tolerance.
    """

    def __init__(
        self,
        bit_duration_s: float,
        tolerance: float = 0.3,
        mean_tolerance: Optional[float] = None,
    ) -> None:
        """Args:
            bit_duration_s: nominal bit duration.
            tolerance: per-interval fractional tolerance (strict mode).
            mean_tolerance: when set, use the firmware's softer
                correlation criterion instead — accept an alignment
                when the *mean* fractional interval error is within
                this bound (individual intervals may stray up to
                ``2 * mean_tolerance``). This matches §4.2's "correlate
                the intervals between these transitions with the
                reference intervals", and is what produces the small
                but non-zero false-positive rate of Fig 18.
        """
        if bit_duration_s <= 0:
            raise ConfigurationError("bit_duration_s must be positive")
        if not 0 < tolerance < 1:
            raise ConfigurationError("tolerance must be in (0, 1)")
        if mean_tolerance is not None and not 0 < mean_tolerance < 1:
            raise ConfigurationError("mean_tolerance must be in (0, 1)")
        self.bit_duration_s = bit_duration_s
        self.tolerance = tolerance
        self.mean_tolerance = mean_tolerance

    def _alignment_ok(self, frac_err: np.ndarray) -> bool:
        if self.mean_tolerance is not None:
            return bool(
                frac_err.mean() <= self.mean_tolerance
                and frac_err.max() <= 2.0 * self.mean_tolerance
            )
        return bool(np.all(frac_err <= self.tolerance))

    def find_all(
        self, transition_times_s: np.ndarray, levels: np.ndarray
    ) -> List[PreambleMatch]:
        """All preamble matches in a transition record.

        The preamble starts with a '1' run, so candidate alignments are
        rising transitions. The first ``n_runs - 1`` intervals must each
        be within ``tolerance`` of the reference run lengths. The final
        run is special: when the first payload bit equals the
        preamble's last bit the two runs merge on air, so the final run
        is only required not to end *early* — it may be extended by the
        payload.
        """
        times = np.asarray(transition_times_s, dtype=float)
        levels = np.asarray(levels, dtype=int)
        n_runs = len(PREAMBLE_RUNS)
        inner = np.asarray(PREAMBLE_RUNS[:-1], dtype=float) * self.bit_duration_s
        matches: List[PreambleMatch] = []
        # Transitions start .. start+n_runs-1 delimit the inner runs.
        for start in range(len(times) - (n_runs - 1)):
            if levels[start] != 1:
                continue
            intervals = np.diff(times[start : start + n_runs])
            frac_err = np.abs(intervals - inner) / inner
            if not self._alignment_ok(frac_err):
                continue
            # Recover the bit clock from the matched inner runs.
            inner_bits = sum(PREAMBLE_RUNS[:-1])
            est_bit = float(intervals.sum()) / inner_bits
            final_expected = PREAMBLE_RUNS[-1] * est_bit
            final_start = times[start + n_runs - 1]
            next_idx = start + n_runs
            if next_idx < len(times):
                final_observed = times[next_idx] - final_start
                if final_observed < final_expected * (1.0 - self.tolerance):
                    continue  # final run ended too early: not our preamble
            matches.append(
                PreambleMatch(
                    end_time_s=float(final_start + final_expected),
                    bit_duration_s=est_bit,
                    error=float(frac_err.mean()),
                )
            )
        return matches

    def find_first(
        self, transition_times_s: np.ndarray, levels: np.ndarray
    ) -> PreambleMatch:
        """First preamble match.

        Raises:
            DecodeError: when no alignment matches.
        """
        matches = self.find_all(transition_times_s, levels)
        if not matches:
            raise DecodeError("no downlink preamble found in transitions")
        return matches[0]


def sample_mid_bits(
    samples: np.ndarray,
    times_s: np.ndarray,
    start_time_s: float,
    bit_duration_s: float,
    num_bits: int,
) -> np.ndarray:
    """Mid-bit sampling of the comparator output (packet decoding mode).

    Args:
        samples: binary comparator output.
        times_s: sample times (uniform or not; nearest sample is used).
        start_time_s: first payload bit start.
        bit_duration_s: recovered bit clock.
        num_bits: bits to read.

    Raises:
        DecodeError: if a required sample time falls outside the record.
    """
    samples = np.asarray(samples, dtype=int)
    times = np.asarray(times_s, dtype=float)
    targets = start_time_s + (np.arange(num_bits) + 0.5) * bit_duration_s
    if targets[-1] > times[-1] + 1e-12:
        raise DecodeError(
            f"record ends at {times[-1]:.6f} s, before the last bit sample "
            f"at {targets[-1]:.6f} s"
        )
    idx = np.searchsorted(times, targets)
    idx = np.clip(idx, 0, len(times) - 1)
    # Snap to the nearer neighbour.
    left = np.maximum(idx - 1, 0)
    nearer_left = np.abs(times[left] - targets) < np.abs(times[idx] - targets)
    idx[nearer_left] = left[nearer_left]
    return samples[idx]


def bits_from_transitions(
    transition_times_s: np.ndarray,
    levels: np.ndarray,
    start_time_s: float,
    bit_duration_s: float,
    num_bits: int,
) -> np.ndarray:
    """Decode payload bits from run lengths, resyncing at transitions.

    The bit clock recovered from the 16-bit preamble is only accurate
    to a few percent, which is not enough to blindly mid-sample an
    80-bit message. Like any OOK receiver, the firmware re-synchronizes
    its bit phase on every comparator transition: each run contributes
    ``round(duration / bit_duration)`` bits of its level.

    Args:
        transition_times_s: debounced transition times.
        levels: level after each transition.
        start_time_s: payload start (preamble match end).
        bit_duration_s: nominal bit duration.
        num_bits: bits to emit.

    Raises:
        DecodeError: when the record ends before ``num_bits`` are
            recovered and the trailing level cannot cover the rest.
    """
    if bit_duration_s <= 0:
        raise ConfigurationError("bit_duration_s must be positive")
    if num_bits < 1:
        raise ConfigurationError("num_bits must be >= 1")
    times = np.asarray(transition_times_s, dtype=float)
    lv = np.asarray(levels, dtype=int)
    if times.size == 0:
        raise DecodeError("no transitions to decode from")
    out: List[int] = []
    # Index of the run active at start_time_s.
    i = int(np.searchsorted(times, start_time_s, side="right") - 1)
    i = max(i, 0)
    t_cursor = start_time_s
    bit = bit_duration_s
    while len(out) < num_bits and i < len(times):
        run_end = times[i + 1] if i + 1 < len(times) else None
        if run_end is None:
            # Open-ended final run: fill the remainder with its level.
            out.extend([int(lv[i])] * (num_bits - len(out)))
            break
        duration = run_end - t_cursor
        n = max(0, int(round(duration / bit)))
        if i == len(times) - 2 and lv[i + 1] == 0:
            # Run ending into trailing silence: cap at what's needed.
            n = min(n, num_bits - len(out))
        out.extend([int(lv[i])] * min(n, num_bits - len(out)))
        if n >= 4:
            # DLL-style clock tracking on long runs only: a long run's
            # per-bit duration is a reliable clock reference, while 1-2
            # bit runs are dominated by the envelope detector's
            # asymmetric edge delays and would bias the estimate.
            bit += 0.3 * (duration / n - bit)
        t_cursor = run_end
        i += 1
    if len(out) < num_bits:
        raise DecodeError(
            f"transitions cover only {len(out)} of {num_bits} bits"
        )
    return np.asarray(out[:num_bits], dtype=int)


def measure_packet_lengths(
    transition_times_s: np.ndarray,
    levels: np.ndarray,
    resolution_s: float = 50e-6,
) -> List[float]:
    """Packet airtimes measured by the tag, quantized to the circuit's
    resolution.

    §4.2: "since longer packets can be intuitively thought of as
    multiple small packets sent back-to-back without any gap, the Wi-Fi
    Backscatter tag outputs a continuous sequence of ones corresponding
    to each long packet. By counting the number of ones, Wi-Fi
    Backscatter can resolve the length of a Wi-Fi packet to a
    resolution of 50 us."

    Args:
        transition_times_s: comparator transition times.
        levels: level after each transition.
        resolution_s: quantization step (the detectable minimum).

    Returns:
        One duration per completed '1' run, rounded up to the
        resolution (a packet shorter than the resolution still reads
        as one unit). The final run is skipped if still high.
    """
    if resolution_s <= 0:
        raise ConfigurationError("resolution_s must be positive")
    times = np.asarray(transition_times_s, dtype=float)
    lv = np.asarray(levels, dtype=int)
    if times.shape != lv.shape:
        raise ConfigurationError("times and levels must align")
    lengths: List[float] = []
    for i in range(len(times) - 1):
        if lv[i] == 1:
            duration = times[i + 1] - times[i]
            units = max(1, int(np.ceil(duration / resolution_s - 0.25)))
            lengths.append(units * resolution_s)
    return lengths


@dataclass
class DownlinkDecoder:
    """Full tag-side downlink receive path on comparator samples.

    Attributes:
        bit_duration_s: nominal bit duration (from the reader's query
            parameters).
        payload_len: expected payload bit count.
        tolerance: preamble interval matching tolerance.
    """

    bit_duration_s: float
    payload_len: int = 64
    tolerance: float = 0.3
    #: Comparator runs shorter than this fraction of a bit are treated
    #: as analog flicker and merged away before interval matching.
    debounce_fraction: float = 0.4

    def __post_init__(self) -> None:
        if self.payload_len < 1:
            raise ConfigurationError("payload_len must be >= 1")
        if not 0 <= self.debounce_fraction < 1:
            raise ConfigurationError("debounce_fraction must be in [0, 1)")
        self._matcher = IntervalPreambleMatcher(
            self.bit_duration_s, self.tolerance
        )

    def _transitions(self, samples: np.ndarray, times_s: np.ndarray):
        t, levels = transitions(samples, times_s)
        return debounce_transitions(
            t, levels, self.debounce_fraction * self.bit_duration_s
        )

    def decode(self, samples: np.ndarray, times_s: np.ndarray) -> DownlinkMessage:
        """Decode one message from a comparator-output record.

        Every preamble match is tried in order; a match whose payload
        fails the CRC sends the firmware back to preamble-detection
        mode to try the next (§4.2: the wake-up on a false preamble is
        wasted energy, but not a wrong message).

        Raises:
            DecodeError: no preamble match anywhere in the record.
            CrcError: a preamble matched but every candidate payload
                failed its CRC.
        """
        with forensics.ensure_record("downlink"), \
                obs.span("downlink.decode", payload_len=self.payload_len) as sp:
            t, levels = self._transitions(samples, times_s)
            matches = self._matcher.find_all(t, levels)
            obs.counter("downlink.preamble.matches").inc(len(matches))
            if sp is not None:
                sp.set(transitions=len(t), preamble_matches=len(matches))
            if obs.recording_enabled():
                forensics.stage(
                    "downlink",
                    transitions=len(t),
                    preamble_matches=len(matches),
                    match_errors=[m.error for m in matches],
                )
            if not matches:
                obs.counter("downlink.decode.no_preamble").inc()
                raise DecodeError("no downlink preamble found in transitions")
            last_error: Exception = DecodeError("no decodable payload")
            crc_failures = 0
            for match in matches:
                try:
                    bits = bits_from_transitions(
                        t,
                        levels,
                        match.end_time_s,
                        match.bit_duration_s,
                        self.payload_len + 16,
                    )
                    message = DownlinkMessage.parse(list(bits), self.payload_len)
                    obs.counter("downlink.decode.ok").inc()
                    return message
                except (CrcError, DecodeError, FrameError) as exc:
                    obs.counter("downlink.decode.crc_failures").inc()
                    crc_failures += 1
                    last_error = exc
            obs.counter("downlink.decode.failed").inc()
            if obs.recording_enabled():
                forensics.stage("downlink", crc_failures=crc_failures)
            raise last_error

    def count_false_preambles(
        self, samples: np.ndarray, times_s: np.ndarray
    ) -> int:
        """Number of preamble matches in traffic *not* carrying a message.

        Used by the false-positive experiment (Fig 18): each match would
        wake the microcontroller for a doomed decode attempt.
        """
        t, levels = self._transitions(samples, times_s)
        count = len(self._matcher.find_all(t, levels))
        obs.counter("downlink.preamble.false_positives").inc(count)
        return count
