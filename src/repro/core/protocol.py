"""Query-response reader protocol (§2, §4.1).

"Wi-Fi Backscatter follows a request-response model, similar to RFID
systems. Specifically, the Wi-Fi reader asks the Wi-Fi Backscatter tag
for information on the downlink and receives a response on the uplink
... if the Wi-Fi Backscatter tag does not respond to the Wi-Fi
reader's query, the reader re-transmits its packet until it gets a
response."

The protocol layer is transport-agnostic: it drives abstract downlink
and uplink transports, so the same state machine runs over the
bit-exact envelope/circuit simulation, the whole-network MAC
simulation, or (in principle) real hardware.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro import obs
from repro.core.frames import DownlinkMessage, UplinkFrame, bits_to_int, int_to_bits
from repro.core.rate_adaptation import RatePlan, UplinkRatePlanner
from repro.errors import ConfigurationError, LinkTimeoutError

#: Query payload layout: 16-bit tag address | 8-bit rate code |
#: 8-bit command | 32-bit argument = 64 bits.
TAG_ADDRESS_BITS = 16
RATE_CODE_BITS = 8
COMMAND_BITS = 8
ARGUMENT_BITS = 32

#: Rate code values map to these uplink bit rates (bps).
RATE_CODE_TABLE = {0: 100.0, 1: 200.0, 2: 500.0, 3: 1000.0}

#: Command values.
CMD_READ_SENSOR = 0x01
CMD_READ_ID = 0x02
CMD_ACK_ONLY = 0x03


def encode_query(
    tag_address: int, rate_bps: float, command: int = CMD_READ_SENSOR,
    argument: int = 0,
) -> DownlinkMessage:
    """Build the reader's 64-bit query payload.

    Raises:
        ConfigurationError: for unknown rates or out-of-range fields.
    """
    codes = {v: k for k, v in RATE_CODE_TABLE.items()}
    if rate_bps not in codes:
        raise ConfigurationError(
            f"rate {rate_bps} bps has no rate code; choose from "
            f"{sorted(RATE_CODE_TABLE.values())}"
        )
    bits = (
        int_to_bits(tag_address, TAG_ADDRESS_BITS)
        + int_to_bits(codes[rate_bps], RATE_CODE_BITS)
        + int_to_bits(command, COMMAND_BITS)
        + int_to_bits(argument, ARGUMENT_BITS)
    )
    return DownlinkMessage(payload_bits=tuple(bits))


@dataclass(frozen=True)
class Query:
    """Decoded query fields at the tag."""

    tag_address: int
    rate_bps: float
    command: int
    argument: int


def decode_query(message: DownlinkMessage) -> Query:
    """Parse a received query payload into its fields."""
    bits = list(message.payload_bits)
    expected = TAG_ADDRESS_BITS + RATE_CODE_BITS + COMMAND_BITS + ARGUMENT_BITS
    if len(bits) != expected:
        raise ConfigurationError(
            f"query payload must be {expected} bits, got {len(bits)}"
        )
    pos = 0
    address = bits_to_int(bits[pos : pos + TAG_ADDRESS_BITS])
    pos += TAG_ADDRESS_BITS
    rate_code = bits_to_int(bits[pos : pos + RATE_CODE_BITS])
    pos += RATE_CODE_BITS
    command = bits_to_int(bits[pos : pos + COMMAND_BITS])
    pos += COMMAND_BITS
    argument = bits_to_int(bits[pos:])
    if rate_code not in RATE_CODE_TABLE:
        raise ConfigurationError(f"unknown rate code {rate_code}")
    return Query(
        tag_address=address,
        rate_bps=RATE_CODE_TABLE[rate_code],
        command=command,
        argument=argument,
    )


@dataclass(frozen=True)
class BackoffPolicy:
    """Exponential backoff with jitter between ARQ retransmissions.

    Blind immediate retransmission is the worst response to a bursty
    channel: if an outage burst ate the last attempt, an immediate
    retry lands in the same burst.  Exponential backoff walks the retry
    out of the burst, and jitter decorrelates multiple readers sharing
    a helper.

    Attributes:
        initial_s: delay before the first retransmission.
        multiplier: growth factor per retry.
        max_s: delay ceiling.
        jitter_fraction: uniform +/- fraction applied to each delay.
    """

    initial_s: float = 0.05
    multiplier: float = 2.0
    max_s: float = 2.0
    jitter_fraction: float = 0.1

    def __post_init__(self) -> None:
        if self.initial_s < 0:
            raise ConfigurationError("initial_s must be >= 0")
        if self.multiplier < 1.0:
            raise ConfigurationError("multiplier must be >= 1")
        if self.max_s < self.initial_s:
            raise ConfigurationError("max_s must be >= initial_s")
        if not 0.0 <= self.jitter_fraction < 1.0:
            raise ConfigurationError("jitter_fraction must be in [0, 1)")

    def delay_s(
        self,
        retry_index: int,
        rng: Optional[np.random.Generator] = None,
    ) -> float:
        """Delay before retry ``retry_index`` (0 = first retransmission)."""
        if retry_index < 0:
            raise ConfigurationError("retry_index must be >= 0")
        base = min(self.initial_s * self.multiplier ** retry_index, self.max_s)
        if rng is not None and self.jitter_fraction > 0:
            base *= 1.0 + rng.uniform(
                -self.jitter_fraction, self.jitter_fraction
            )
        return base


class DownlinkTransport(abc.ABC):
    """Sends one downlink message toward the tag."""

    @abc.abstractmethod
    def send(self, message: DownlinkMessage) -> bool:
        """Transmit; returns True when the tag decoded the message."""


class UplinkTransport(abc.ABC):
    """Receives one uplink frame from the tag."""

    @abc.abstractmethod
    def receive(self, payload_len: int, bit_rate_bps: float) -> Optional[UplinkFrame]:
        """Listen for a response; None on timeout/CRC failure."""


@dataclass
class TransactionResult:
    """Outcome of one reader query transaction.

    Attributes:
        frame: the decoded response, or None after all retries failed.
        attempts: downlink transmissions performed.
        rate_plan: the rate decision used for this transaction.
        backoff_delays_s: the ARQ delay inserted before each retry.
        elapsed_s: total (virtual) backoff time spent on retries.
        timed_out: the attempt budget was cut short by ``timeout_s``.
    """

    frame: Optional[UplinkFrame]
    attempts: int
    rate_plan: RatePlan
    backoff_delays_s: Tuple[float, ...] = ()
    elapsed_s: float = 0.0
    timed_out: bool = False

    @property
    def success(self) -> bool:
        return self.frame is not None

    @property
    def gave_up(self) -> bool:
        """The reader stopped trying without a decoded response."""
        return self.frame is None


class WiFiBackscatterReader:
    """The reader's protocol engine.

    Attributes:
        downlink: transport delivering queries to the tag.
        uplink: transport decoding the tag's responses.
        planner: rate planner (N/M with conservative margin).
        max_attempts: downlink retransmission budget per transaction.
        backoff: ARQ backoff policy between retransmissions, or None
            for the paper's plain immediate retransmit loop.
        timeout_s: per-transaction budget of accumulated backoff time;
            when the next delay would exceed it the reader gives up
            (and raises :class:`LinkTimeoutError` if
            ``raise_on_timeout``). None = attempts-bounded only.
        raise_on_timeout: escalate timeouts as exceptions instead of a
            failed :class:`TransactionResult`.
    """

    def __init__(
        self,
        downlink: DownlinkTransport,
        uplink: UplinkTransport,
        planner: Optional[UplinkRatePlanner] = None,
        max_attempts: int = 5,
        backoff: Optional[BackoffPolicy] = None,
        timeout_s: Optional[float] = None,
        raise_on_timeout: bool = False,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        if max_attempts < 1:
            raise ConfigurationError("max_attempts must be >= 1")
        if timeout_s is not None and timeout_s <= 0:
            raise ConfigurationError("timeout_s must be positive")
        self.downlink = downlink
        self.uplink = uplink
        self.planner = planner or UplinkRatePlanner()
        self.max_attempts = max_attempts
        self.backoff = backoff
        self.timeout_s = timeout_s
        self.raise_on_timeout = raise_on_timeout
        if rng is None and backoff is not None:
            # Jitter needs a generator; resolve the library default
            # seed lazily to avoid a core -> sim import cycle.
            from repro.sim.seeding import resolve_rng

            rng, _ = resolve_rng(None, None)
        self.rng = rng
        self.transaction_log: List[TransactionResult] = []

    def query(
        self,
        tag_address: int,
        helper_rate_pps: float,
        payload_len: int = 90,
        command: int = CMD_READ_SENSOR,
    ) -> TransactionResult:
        """Run one query-response transaction.

        The reader computes the rate plan from the current helper
        packet rate, embeds it in the query, and retransmits the query
        until a CRC-valid response arrives or the attempt budget (or
        backoff-time budget) is spent.  With a :class:`BackoffPolicy`
        configured, each retransmission is preceded by an exponentially
        growing, jittered delay so retries ride out outage bursts
        instead of slamming into them.
        """
        plan = self.planner.plan(helper_rate_pps)
        message = encode_query(tag_address, plan.bit_rate_bps, command)
        frame: Optional[UplinkFrame] = None
        attempts = 0
        delays: List[float] = []
        elapsed = 0.0
        timed_out = False
        for attempt in range(self.max_attempts):
            if attempt > 0 and self.backoff is not None:
                delay = self.backoff.delay_s(attempt - 1, self.rng)
                if (
                    self.timeout_s is not None
                    and elapsed + delay > self.timeout_s
                ):
                    timed_out = True
                    obs.counter("arq.timeouts").inc()
                    break
                delays.append(delay)
                elapsed += delay
            attempts += 1
            obs.counter("arq.attempts").inc()
            if attempt > 0:
                obs.counter("arq.retries").inc()
            if not self.downlink.send(message):
                continue  # tag missed the query; retransmit
            frame = self.uplink.receive(payload_len, plan.bit_rate_bps)
            if frame is not None:
                break
        if frame is None:
            obs.counter("arq.giveups").inc()
        if elapsed:
            obs.histogram("arq.backoff_s").observe(elapsed)
        result = TransactionResult(
            frame=frame,
            attempts=attempts,
            rate_plan=plan,
            backoff_delays_s=tuple(delays),
            elapsed_s=elapsed,
            timed_out=timed_out,
        )
        self.transaction_log.append(result)
        if timed_out and frame is None and self.raise_on_timeout:
            raise LinkTimeoutError(
                f"transaction to tag {tag_address:#06x} exceeded "
                f"{self.timeout_s:.3f} s of backoff budget",
                attempts=attempts,
                elapsed_s=elapsed,
            )
        return result
