"""Long-range uplink decoding with orthogonal codes (§3.4).

Past ~65 cm "there are no two distinct levels in the channel
measurements" (Fig 6), so per-measurement slicing fails. Instead the
tag expands each bit into an L-chip orthogonal code and the reader
correlates: "The Wi-Fi reader correlates the channel measurements with
the two codes and outputs the bit corresponding to the larger
correlation value", repeating "on all the frequency sub-channels" and
picking "the Wi-Fi sub-channels that provide the maximum correlation
peaks". SNR grows with L, trading bit rate for range (Fig 20).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro import obs
from repro.obs import forensics
from repro.core import conditioning
from repro.core.coding import OrthogonalCodePair
from repro.errors import ConfigurationError, DecodeError
from repro.measurement import MeasurementStream


@dataclass(frozen=True)
class CorrelationDecodeResult:
    """Decoded bits plus per-bit decision margins.

    Attributes:
        bits: decided bits.
        margins: |corr_one| - |corr_zero| per bit on the chosen
            channels (positive margin = confident).
        channel_indices: sub-channels used for the decision.
    """

    bits: np.ndarray
    margins: np.ndarray
    channel_indices: np.ndarray


class CorrelationDecoder:
    """Code-correlation decoder over conditioned channel measurements.

    Attributes:
        code_pair: the tag's (one, zero) code pair.
        good_count: number of sub-channels combined for the decision.
        window_s: conditioning moving-average window.
    """

    def __init__(
        self,
        code_pair: OrthogonalCodePair,
        good_count: int = 10,
        window_s: float = conditioning.DEFAULT_WINDOW_S,
        nonfinite_policy: str = "repair",
    ) -> None:
        if good_count < 1:
            raise ConfigurationError("good_count must be >= 1")
        if nonfinite_policy not in conditioning.NONFINITE_POLICIES:
            raise ConfigurationError(
                f"nonfinite_policy must be one of "
                f"{conditioning.NONFINITE_POLICIES}"
            )
        self.code_pair = code_pair
        self.good_count = good_count
        self.window_s = window_s
        self.nonfinite_policy = nonfinite_policy

    def _chip_means(
        self,
        normalized: np.ndarray,
        timestamps_s: np.ndarray,
        start_time_s: float,
        chip_duration_s: float,
        num_chips: int,
    ) -> np.ndarray:
        """Mean measurement per chip interval, shape (num_chips, channels).

        Chips with no packet measurements contribute zero (an erasure
        that simply doesn't add correlation energy).
        """
        idx = np.floor((timestamps_s - start_time_s) / chip_duration_s).astype(int)
        valid = (idx >= 0) & (idx < num_chips)
        idx = idx[valid]
        sums = np.zeros((num_chips, normalized.shape[1]))
        np.add.at(sums, idx, normalized[valid])
        counts = np.bincount(idx, minlength=num_chips).astype(float)
        nonzero = counts > 0
        sums[nonzero] /= counts[nonzero, None]
        return sums

    def _reference_chip_means(
        self,
        normalized: np.ndarray,
        timestamps_s: np.ndarray,
        start_time_s: float,
        chip_duration_s: float,
        num_chips: int,
    ) -> np.ndarray:
        """Pre-vectorization per-chip loop, kept as the equivalence
        oracle for :meth:`_chip_means` (tests only)."""
        idx = np.floor((timestamps_s - start_time_s) / chip_duration_s).astype(int)
        out = np.zeros((num_chips, normalized.shape[1]))
        for k in range(num_chips):
            sel = idx == k
            if np.any(sel):
                out[k] = normalized[sel].mean(axis=0)
        return out

    def decode_bits(
        self,
        stream: MeasurementStream,
        num_bits: int,
        chip_duration_s: float,
        start_time_s: float,
        mode: str = "csi",
    ) -> CorrelationDecodeResult:
        """Decode ``num_bits`` code-expanded bits.

        Args:
            stream: reader measurements.
            num_bits: bits to decode (each spans ``L`` chips).
            chip_duration_s: one chip's duration (the pre-expansion bit
                clock of the tag).
            start_time_s: start of the first code word. Long-range
                operation assumes reader/tag synchronization from the
                query-response handshake, so the start is known.
            mode: "csi" or "rssi".

        Raises:
            DecodeError: if the stream cannot cover the coded span.
        """
        if num_bits < 1:
            raise ConfigurationError("num_bits must be >= 1")
        if chip_duration_s <= 0:
            raise ConfigurationError("chip_duration_s must be positive")
        if len(stream) == 0:
            raise DecodeError("empty measurement stream")
        if mode == "csi":
            matrix = stream.flattened_csi()
        elif mode == "rssi":
            matrix = stream.rssi_matrix()
        else:
            raise ConfigurationError(f"unknown mode {mode!r}")
        timestamps = stream.timestamps
        span = num_bits * self.code_pair.length * chip_duration_s
        if timestamps[-1] + chip_duration_s < start_time_s + span:
            raise DecodeError(
                f"stream covers {timestamps[-1] - start_time_s:.3f} s of the "
                f"{span:.3f} s coded message"
            )
        # Correlation is the last rung of the degradation ladder, so it
        # must digest poisoned samples rather than bail: repair (or
        # reject, per policy) before conditioning.
        t_decode = time.perf_counter() if obs.metrics_enabled() else 0.0
        with forensics.ensure_record("correlation"), \
                obs.profile("correlation.decode"):
            matrix, repaired = conditioning.sanitize(
                matrix, self.nonfinite_policy
            )
            if repaired:
                obs.counter("correlation.nonfinite.repaired").inc(repaired)
            cond = conditioning.condition(
                matrix, timestamps, self.window_s, nonfinite="propagate"
            )

            length = self.code_pair.length
            chips = self._chip_means(
                cond.normalized,
                timestamps,
                start_time_s,
                chip_duration_s,
                num_bits * length,
            )
            code_one = np.asarray(self.code_pair.code_one, dtype=float)
            code_zero = np.asarray(self.code_pair.code_zero, dtype=float)

            # Per-bit, per-channel correlations with both codes.
            per_bit = chips.reshape(num_bits, length, -1)
            corr_one = np.einsum("blc,l->bc", per_bit, code_one) / length
            corr_zero = np.einsum("blc,l->bc", per_bit, code_zero) / length

            # Pick the channels with the strongest total correlation energy
            # ("the sub-channels that provide the maximum correlation
            # peaks").
            energy = (np.abs(corr_one) + np.abs(corr_zero)).sum(axis=0)
            count = min(self.good_count, matrix.shape[1])
            best = np.argsort(-energy)[:count]

            # Decision: larger |correlation| wins, energy-combined across
            # the selected channels (|.| makes the decision polarity-free).
            score_one = np.abs(corr_one[:, best]).sum(axis=1)
            score_zero = np.abs(corr_zero[:, best]).sum(axis=1)
            bits = (score_one > score_zero).astype(int)
            margins = score_one - score_zero
            obs.add_ops(2 * per_bit.size, per_bit.nbytes)
            if obs.recording_enabled():
                forensics.stage(
                    "condition",
                    mode=mode,
                    packets=len(stream),
                    channels=int(matrix.shape[1]),
                    repaired=int(repaired),
                    window_s=float(self.window_s),
                )
                forensics.stage(
                    "correlate",
                    code_length=length,
                    channels=best,
                    channel_energy=energy[best],
                    score_one=score_one,
                    score_zero=score_zero,
                    bit_margins=margins,
                )
        if obs.enabled():
            obs.counter("correlation.decodes").inc()
            if obs.metrics_enabled():
                obs.timeseries("correlation.decode.latency_s").sample(
                    time.perf_counter() - t_decode
                )
            obs.histogram("correlation.margin").observe_many(np.abs(margins))
            obs.histogram("correlation.subchannel.energy").observe_many(
                energy[best]
            )
            sp = obs.current_span()
            if sp is not None:
                sp.set(
                    code_length=length,
                    selected_subchannels=best,
                    margin_mean=float(np.abs(margins).mean()),
                )
        return CorrelationDecodeResult(
            bits=bits, margins=margins, channel_indices=best
        )
