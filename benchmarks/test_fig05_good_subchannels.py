"""Fig 5: which sub-channels decode with BER < 1e-2, vs distance.

Paper: "For each Wi-Fi sub-channel, the figure shows the experiments
where decoding using only that sub-channel achieves a bit error rate
less than 1e-2 ... the set of good sub-channels varies significantly
with the position of the Wi-Fi Backscatter tag" and "in general, there
are no Wi-Fi sub-channels that are consistently good."
"""

import numpy as np

from conftest import emit
from repro.analysis.report import format_table
from repro.core.barker import barker_bits
from repro.core.conditioning import condition
from repro.core.slicer import majority_vote_bits
from repro.sim.link import helper_packet_times, simulate_uplink_stream
from repro.tag.modulator import random_payload

DISTANCES_CM = (10, 25, 40, 55, 70)


def good_subchannels_at(distance_m, seed):
    rng = np.random.default_rng(seed)
    bit_s = 0.01
    payload = random_payload(60, rng)
    bits = barker_bits() + payload
    times = helper_packet_times(3000.0, len(bits) * bit_s + 1.1, rng=rng)
    stream, tx_start = simulate_uplink_stream(
        bits, bit_s, times, tag_to_reader_m=distance_m, rng=rng
    )
    csi = stream.csi_matrix()[:, 0, :]  # single antenna, like the figure
    cond = condition(csi, stream.timestamps)
    data_start = tx_start + 13 * bit_s
    good = []
    for ch in range(csi.shape[1]):
        decisions = (cond.normalized[:, ch] > 0).astype(int)
        sliced = majority_vote_bits(
            decisions, stream.timestamps, data_start, bit_s, len(payload)
        )
        errors = int(np.count_nonzero(sliced.bits != np.asarray(payload)))
        # Channels may be polarity-inverted; count either way.
        errors = min(errors, len(payload) - errors)
        if errors == 0:
            good.append(ch)
    return set(good)


def run_fig05():
    table = {}
    for i, cm in enumerate(DISTANCES_CM):
        table[cm] = good_subchannels_at(cm / 100.0, seed=50 + i)
    return table


def test_fig05_good_set_varies_with_distance(once):
    table = once(run_fig05)
    rows = [
        [f"{cm} cm", len(chs), ",".join(map(str, sorted(chs)[:12]))]
        for cm, chs in table.items()
    ]
    emit(
        format_table(
            ["tag-reader distance", "# good sub-channels", "good sub-channels (first 12)"],
            rows,
            title="Fig 5 — sub-channels with BER < 1e-2 per position",
        )
    )
    non_empty = [chs for chs in table.values() if chs]
    assert len(non_empty) >= 3  # close positions have good channels
    # No sub-channel is consistently good across every position.
    consistently_good = set.intersection(*table.values()) if table else set()
    assert len(consistently_good) < 10
    # The good sets differ between positions (position-dependent multipath).
    sets = list(table.values())
    assert any(a != b for a in sets for b in sets)
