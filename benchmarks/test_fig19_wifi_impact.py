"""Fig 19: effect of the tag's modulation on normal Wi-Fi throughput.

Paper: a laptop sends UDP for 2 minutes to a Linksys AP from locations
2-5, with the tag 5 cm / 30 cm from the receiver, idle or modulating
at 100 bps / 1 kbps. "While there is variation in the observed data
rate across these scenarios ... they are mostly within the variance
... Wi-Fi rate adaptation can easily adapt for the small variations in
the channel quality."

Simulation: the DCF + ARF stack runs a saturated UDP sender whose link
SNR gets a small square-wave perturbation from the tag's modulated
reflection (larger at 5 cm than 30 cm).
"""

import math

import numpy as np

from conftest import emit
from repro.analysis.report import format_table
from repro.mac.rate_control import SnrLinkQualityModel, snr_from_distance
from repro.sim.geometry import HELPER_LOCATIONS, TESTBED, helper_geometry
from repro.sim.scenario import build_throughput_scenario
from repro.sim.metrics import throughput_mbytes_per_s

RUN_SECONDS = 6.0

#: SNR wiggle (dB) the tag's reflection induces on the Wi-Fi link at
#: 5 cm / 30 cm from the receiver — small by construction (§9).
PERTURBATION_DB = {0.05: 0.8, 0.30: 0.25}

#: Effective link SNR (dB) per transmitter location. Free-space path
#: loss alone would leave every location at very high SNR; the real
#: testbed's multipath fading margin, walls, and co-channel
#: interference (heavy near location 5's classroom) compress the
#: dynamic range to the paper's 2-3.7 MB/s spread.
LOCATION_SNR_DB = {"2": 28.0, "3": 24.0, "4": 20.0, "5": 13.0}


def throughput(location, tag_rate_bps, tag_distance_m, seed):
    snr = LOCATION_SNR_DB[location]
    perturbation = None
    if tag_rate_bps:
        depth = PERTURBATION_DB[tag_distance_m]
        period = 1.0 / tag_rate_bps

        def perturbation(t, depth=depth, period=period):
            return -depth if int(t / period) % 2 else 0.0

    model = SnrLinkQualityModel(snr_db=snr, snr_perturbation_db=perturbation)
    scenario = build_throughput_scenario(model, seed=seed)
    scenario.run(RUN_SECONDS)
    return throughput_mbytes_per_s(
        scenario.helper.stats.bytes_delivered, RUN_SECONDS
    )


def run_fig19(tag_distance_m):
    rows = []
    for i, loc in enumerate(HELPER_LOCATIONS):
        base = throughput(loc, 0.0, tag_distance_m, seed=1900 + i)
        slow = throughput(loc, 100.0, tag_distance_m, seed=1900 + i)
        fast = throughput(loc, 1000.0, tag_distance_m, seed=1900 + i)
        rows.append((loc, base, slow, fast))
    return rows


def check(rows, title):
    emit(
        format_table(
            ["location", "no device (MB/s)", "100 bps (MB/s)", "1 kbps (MB/s)"],
            rows,
            title=title,
        )
    )
    for loc, base, slow, fast in rows:
        # Throughput with the tag modulating stays within ~15% of the
        # no-device baseline: rate adaptation absorbs the reflections.
        assert math.isclose(slow, base, rel_tol=0.15), (loc, base, slow)
        assert math.isclose(fast, base, rel_tol=0.15), (loc, base, fast)
    # Distant/NLOS locations see lower absolute throughput.
    by_loc = {loc: base for loc, base, _, _ in rows}
    assert by_loc["5"] < by_loc["2"]


def test_fig19a_impact_at_5cm(once):
    rows = once(run_fig19, 0.05)
    check(rows, "Fig 19(a) — Wi-Fi throughput, tag 5 cm from receiver")


def test_fig19b_impact_at_30cm(once):
    rows = once(run_fig19, 0.30)
    check(rows, "Fig 19(b) — Wi-Fi throughput, tag 30 cm from receiver")
