"""Sensitivity sweeps for the paper's magic numbers.

The paper fixes two decoder constants without exploring them: the
400 ms conditioning window (§3.2 step 1) and the µ ± σ/2 hysteresis
width (§3.2 step 3). These sweeps show each sits on a plateau — the
design is robust, not tuned to a knife edge — and show where the
plateau ends (too-short windows eat the signal, too-wide hysteresis
stops responding).
"""

import numpy as np

from conftest import emit
from repro.analysis.report import render_series
from repro.analysis.sweep import SweepResult
from repro.core.uplink_decoder import UplinkDecoder, UplinkDecoderConfig
from repro.sim.calibration import DEFAULTS, with_overrides
from repro.sim.link import run_uplink_trial
from repro.sim.metrics import ber_with_floor

DISTANCE_M = 0.5
TRIALS = 8


def ber_with_config(config, params=DEFAULTS, seed=0):
    errors = total = 0
    rng = np.random.default_rng(seed)
    decoder = UplinkDecoder(config)
    for _ in range(TRIALS):
        trial = run_uplink_trial(
            DISTANCE_M, 30, params=params, decoder=decoder, rng=rng
        )
        errors += trial.errors
        total += len(trial.sent_bits)
    return ber_with_floor(errors, total)


def run_window_sweep():
    """Conditioning window from 50 ms to 3.2 s under strong drift."""
    drifty = with_overrides(DEFAULTS, drift_amplitude=0.12,
                            drift_time_constant_s=1.0)
    result = SweepResult(
        label="BER @ 50 cm (strong drift)", x_name="window_s", y_name="ber"
    )
    for window in (0.05, 0.1, 0.2, 0.4, 0.8, 1.6, 3.2):
        config = UplinkDecoderConfig(window_s=window)
        # Common random numbers: every window size sees the same
        # channel realizations, so differences are the window's.
        result.add(window, ber_with_config(config, drifty, seed=300))
    return result


def run_hysteresis_sweep():
    """Hysteresis width from 0 (plain slicer) to 1.5 sigma."""
    result = SweepResult(
        label="BER @ 50 cm", x_name="width_sigma", y_name="ber"
    )
    for width in (0.0, 0.25, 0.5, 0.75, 1.0, 1.5):
        config = UplinkDecoderConfig(hysteresis_width=width)
        result.add(width, ber_with_config(config, seed=400))
    return result


def test_sensitivity_conditioning_window(once):
    result = once(run_window_sweep)
    emit(
        render_series(
            [result],
            title="Sensitivity — conditioning moving-average window "
            "(paper: 400 ms)",
        )
    )
    by_x = dict(zip(result.xs, result.ys))
    # The paper's 400 ms sits inside the broad usable band: clearly
    # better than both extremes, and within a small factor of the best
    # point of the sweep.
    best = min(result.ys)
    assert by_x[0.4] < by_x[0.05]
    assert by_x[0.4] < by_x[3.2]
    assert by_x[0.4] <= max(5 * best, 0.06)


def test_sensitivity_hysteresis_width(once):
    result = once(run_hysteresis_sweep)
    emit(
        render_series(
            [result],
            title="Sensitivity — hysteresis width in sigmas "
            "(paper: 0.5)",
        )
    )
    by_x = dict(zip(result.xs, result.ys))
    best = min(result.ys)
    # 0.5 sigma is on the plateau.
    assert by_x[0.5] <= max(3 * best, 0.02)
    # Excessive hysteresis (1.5 sigma dead band swallows the signal
    # transitions) must hurt.
    assert by_x[1.5] >= by_x[0.5]
