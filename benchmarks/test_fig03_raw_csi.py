"""Fig 3: raw CSI for one sub-channel, tag 5 cm away, alternating bits.

Paper: "Raw CSI measurements for a single Wi-Fi sub-channel in the
presence of the Wi-Fi Backscatter tag 5 centimeters away. The plot
clearly shows a binary modulation on top of the CSI measurements."
Setup: reader next to tag, helper 5 m away, 1 GB media download
(saturated traffic), ~3000 packets.
"""

import numpy as np

from conftest import emit
from repro.analysis.report import format_table
from repro.sim.link import helper_packet_times, simulate_uplink_stream
from repro.tag.modulator import alternating_bits


def run_fig03():
    rng = np.random.default_rng(3)
    bit_s = 0.01  # 100 bps alternation
    bits = alternating_bits(120)
    times = helper_packet_times(2000.0, len(bits) * bit_s + 1.1, rng=rng)
    stream, tx_start = simulate_uplink_stream(
        bits, bit_s, times, tag_to_reader_m=0.05, helper_to_tag_m=5.0, rng=rng
    )
    csi = stream.flattened_csi()
    # Pick the sub-channel where the modulation is most visible, like
    # the paper's choice of sub-channel 19.
    spread = csi.std(axis=0)
    best = int(np.argmax(spread))
    ts = stream.timestamps
    in_tx = (ts >= tx_start) & (ts < tx_start + len(bits) * bit_s)
    column = csi[in_tx, best]
    bit_idx = np.floor((ts[in_tx] - tx_start) / bit_s).astype(int) % 2
    level_1 = column[bit_idx == 0].mean()  # alternating starts with '1'
    level_0 = column[bit_idx == 1].mean()
    noise = 0.5 * (column[bit_idx == 0].std() + column[bit_idx == 1].std())
    return best, level_1, level_0, noise, column


def test_fig03_raw_csi_two_levels(once):
    best, level_1, level_0, noise, column = once(run_fig03)
    separation = abs(level_1 - level_0)
    emit(
        format_table(
            ["quantity", "value"],
            [
                ["best sub-channel", best],
                ["CSI level while reflecting ('1')", level_1],
                ["CSI level while absorbing ('0')", level_0],
                ["level separation", separation],
                ["within-level noise (std)", noise],
                ["separation / noise", separation / max(noise, 1e-9)],
            ],
            title="Fig 3 — raw CSI at 5 cm shows two distinct levels",
        )
    )
    # The paper's figure shows clearly separated levels at 5 cm.
    assert separation > 2.0 * noise
