"""Fig 17: downlink BER vs distance at 20/10/5 kbps.

Paper: 200 kilobits per point at +16 dBm; packet sizes 50/100/200 us.
"At a target BER of 1e-2, the Wi-Fi Backscatter downlink can achieve
bit rates of 20 kbps at distances of 2.13 m. The range can be
increased to 2.90 m by decreasing the bit rate to 10 kbps."

Two models are reported: the calibrated analytic peak-detection model
(fast, 200 kbit Monte-Carlo like the paper) and a spot-check of the
full circuit simulation at selected distances (the ablation of
DESIGN.md §5).
"""

import numpy as np

from conftest import TRIAL_WORKERS, emit
from repro.analysis.ber import DownlinkDetectionModel
from repro.analysis.report import log_sparkline, render_series
from repro.analysis.sweep import SweepResult
from repro.sim.link import run_downlink_ber, run_downlink_circuit_trial
from repro.sim.metrics import bit_errors

DISTANCES_M = (0.5, 1.0, 1.5, 2.0, 2.5, 3.0, 3.5)
RATES = ((50e-6, "20 kbps"), (100e-6, "10 kbps"), (200e-6, "5 kbps"))
BITS_PER_POINT = 200_000


def run_fig17():
    series = []
    for bit_s, label in RATES:
        result = SweepResult(label=label, x_name="distance_m", y_name="ber")
        for i, d in enumerate(DISTANCES_M):
            ber = run_downlink_ber(
                d, bit_s, num_bits=BITS_PER_POINT, seed=1700 + i,
                workers=TRIAL_WORKERS,
            ).ber
            result.add(d, ber)
        series.append(result)
    return series


def circuit_spot_check():
    rows = []
    for d in (1.0, 2.0, 3.0):
        errors = total = 0
        for seed in range(5):
            sent, rec = run_downlink_circuit_trial(
                d, 50e-6, rng=np.random.default_rng(1750 + seed)
            )
            errors += bit_errors(sent, rec)
            total += len(sent)
        rows.append((d, errors, total))
    return rows


def test_fig17_downlink_ber_vs_distance(once):
    series = once(run_fig17)
    text = render_series(series, title="Fig 17 — downlink BER vs distance")
    for s in series:
        text += f"\n  {s.label:<8} |{log_sparkline(s.ys)}|"
    model = DownlinkDetectionModel()
    text += (
        f"\n  ranges at BER 1e-2: 20 kbps -> {model.range_at_ber(50e-6):.2f} m"
        f" (paper 2.13), 10 kbps -> {model.range_at_ber(100e-6):.2f} m"
        f" (paper 2.90), 5 kbps -> {model.range_at_ber(200e-6):.2f} m"
        f" (paper ~3.2)"
    )
    emit(text)
    by_label = {s.label: s for s in series}
    for s in series:
        # BER grows with distance.
        assert s.ys == sorted(s.ys)
    # Rate ordering: slower bits reach farther at every distance where
    # the curves have separated.
    far = DISTANCES_M.index(2.5)
    assert by_label["5 kbps"].ys[far] < by_label["20 kbps"].ys[far]
    # Paper anchors.
    assert model.range_at_ber(50e-6) == __import__("pytest").approx(2.13, abs=0.35)
    assert model.range_at_ber(100e-6) == __import__("pytest").approx(2.90, abs=0.35)


def test_fig17_circuit_simulation_agrees(once):
    rows = once(circuit_spot_check)
    from repro.analysis.report import format_table

    emit(
        format_table(
            ["distance_m", "bit errors", "bits"],
            rows,
            title="Fig 17 ablation — full circuit simulation at 20 kbps",
        )
    )
    by_d = {d: e / t for d, e, t in rows}
    # Circuit sim: clean at 1 m, degraded by 3 m — same shape as the
    # analytic model.
    assert by_d[1.0] < 5e-3
    assert by_d[3.0] > by_d[1.0]
