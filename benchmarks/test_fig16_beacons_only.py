"""Fig 16: achievable uplink rate using only the AP's beacons.

Paper: reader passively listens to beacons; "since Intel cards do not
currently provide CSI information for beacon packets, we again use
RSSI"; rate grows with beacon frequency, reaching ~45 bps at 70
beacons/s. "Wi-Fi Backscatter can establish uplink communication using
only the AP's beacon packets."
"""

import numpy as np

from conftest import emit
from repro.analysis.report import render_series
from repro.analysis.sweep import SweepResult
from repro.core.barker import barker_bits
from repro.core.uplink_decoder import UplinkDecoder
from repro.errors import ReproError
from repro.mac.beacons import build_beacon_network
from repro.sim import calibration
from repro.sim.metrics import achievable_bit_rate, ber_with_floor, bit_errors
from repro.tag.modulator import TagModulator, random_payload

BEACON_RATES = (10, 30, 50, 70)


def beacon_ber(tag_rate, beacons_per_s, seed):
    rng = np.random.default_rng(seed)
    bit_s = 1.0 / tag_rate
    payload = random_payload(24, rng)
    bits = barker_bits() + payload
    modulator = TagModulator(bit_duration_s=bit_s)
    tx_start = 0.6
    modulator.load_bits(bits, tx_start)
    channel = calibration.make_channel(0.05, rng=rng)
    net = build_beacon_network(
        float(beacons_per_s), channel, tag_state=modulator.state, rng=rng
    )
    net.run(tx_start + len(bits) * bit_s + 0.6)
    try:
        result = UplinkDecoder().decode_bits(
            net.capture.measurements(),
            num_bits=len(payload),
            bit_duration_s=bit_s,
            mode="rssi",
            start_time_s=tx_start,
        )
    except ReproError:
        return 0.5
    return ber_with_floor(bit_errors(payload, result.bits), len(payload))


def run_fig16():
    result = SweepResult(
        label="achievable bit rate (bps)", x_name="beacons_per_s", y_name="bps"
    )
    for i, bps in enumerate(BEACON_RATES):
        tested = [r for r in (2.0, 5.0, 10.0, 20.0, 30.0, 45.0) if r <= bps]
        rate_to_ber = {
            r: beacon_ber(r, bps, seed=1600 + 7 * i + int(r)) for r in tested
        }
        result.add(float(bps), achievable_bit_rate(rate_to_ber, ber_target=0.05))
    return result


def test_fig16_beacon_only_uplink(once):
    result = once(run_fig16)
    emit(
        render_series(
            [result], title="Fig 16 — uplink rate from AP beacons alone (RSSI)"
        )
    )
    rates = dict(zip(result.xs, result.ys))
    # The link works at every beacon rate.
    assert all(rate > 0 for rate in rates.values())
    # More beacons -> higher achievable rate; ~tens of bps at 70/s.
    assert rates[70.0] >= rates[10.0]
    assert rates[70.0] >= 20.0
