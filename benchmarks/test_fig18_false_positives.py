"""Fig 18: downlink false-positive preamble detections per hour.

Paper: prototype 30 cm from the AP, a client streaming music all day
for consistent traffic; count events where normal Wi-Fi traffic
matches the Wi-Fi Backscatter preamble (each falsely wakes the MCU);
"the maximum false positive rate we observe in our setup is less than
30/hour."

Simulation: synthetic office traffic (per time-of-day load, with the
SIFS/ACK/DIFS micro-burst structure of a busy channel) is turned into
comparator transition timelines at the tag (at 30 cm every packet is
detected cleanly, so transitions follow frame edges with small
jitter); the firmware's correlation-style interval matcher counts
matches, scaled to one hour. The MCU energy ledger prices each false
wake.
"""

import numpy as np

from conftest import emit
from repro.analysis.report import format_table
from repro.core.downlink_decoder import IntervalPreambleMatcher, debounce_transitions
from repro.tag.mcu import McuEnergyLedger
from repro.traces.synthetic import hours_range, office_traffic_sample, sample_to_intervals

BIT_S = 50e-6
SIM_SECONDS = 180.0
HOURS = hours_range(10.0, 18.0, 2.0)


def transitions_from_traffic(hour, seed):
    """Streaming-style MAC timeline at the tag, 30 cm from the AP.

    The paper streams music for consistent traffic. Each data frame is
    followed after SIFS by its ACK, and frames within a burst are
    separated by DIFS + a short backoff — so the comparator sees many
    runs and gaps at the 10-200 us scale, exactly the regime where the
    50 us preamble structure can occasionally be mimicked.
    """
    rng = np.random.default_rng(seed)
    sample = office_traffic_sample(hour, SIM_SECONDS, rng=rng)
    times = [0.0]
    levels = [0]
    n_frames = 0

    def emit(start, duration):
        t_up = max(start + rng.normal(scale=2e-6), times[-1] + 1e-9)
        t_down = t_up + max(duration, 5e-6)
        times.extend([t_up, t_down])
        levels.extend([1, 0])
        return t_down

    sifs, ack, difs, slot = 10e-6, 24e-6, 28e-6, 9e-6

    def frame_exchange(start):
        """One DATA + SIFS + ACK exchange; returns its end time."""
        airtime = float(rng.choice(
            [40e-6, 55e-6, 75e-6, 100e-6, 140e-6, 250e-6],
            p=[0.22, 0.22, 0.18, 0.15, 0.12, 0.11],
        ))
        end = emit(start, airtime)
        return emit(end + sifs, ack)

    for t in sample.packet_times_s:
        n_frames += 1
        end = frame_exchange(t)
        # A third of arrivals open a micro-burst: several frame
        # exchanges back-to-back, separated only by DIFS + backoff —
        # the dense regime (streaming + org co-channel traffic at peak
        # hours) where short on/off runs chain together.
        if rng.random() < 0.35:
            for _ in range(int(rng.integers(2, 10))):
                gap = difs + slot * float(rng.integers(0, 8))
                end = frame_exchange(end + gap)
                n_frames += 1
    return np.asarray(times), np.asarray(levels), n_frames


def false_positives_per_hour(hour, seed):
    t, lv, n_packets = transitions_from_traffic(hour, seed)
    t, lv = debounce_transitions(t, lv, 0.4 * BIT_S)
    matcher = IntervalPreambleMatcher(BIT_S, mean_tolerance=0.26)
    matches = len(matcher.find_all(t, lv))
    return matches * (3600.0 / SIM_SECONDS), n_packets


def run_fig18():
    rows = []
    for i, hour in enumerate(HOURS):
        fp_per_hour, n_packets = false_positives_per_hour(hour, 1800 + i)
        rows.append((hour, n_packets / SIM_SECONDS, fp_per_hour))
    return rows


def test_fig18_false_positive_rate(once):
    rows = once(run_fig18)
    ledger = McuEnergyLedger()
    wake_cost = ledger.false_wake_energy_cost_j(80)
    table = [
        [f"{int(h)}:00", f"{pps:.0f}", fp, fp * wake_cost * 1e6]
        for h, pps, fp in rows
    ]
    emit(
        format_table(
            ["time of day", "traffic (pkts/s)", "false positives / hour",
             "wasted MCU energy (uJ/hour)"],
            table,
            title="Fig 18 — downlink false-positive rate",
        )
    )
    # Paper: "the maximum false positive rate we observe in our setup
    # is less than 30/hour" — we assert the same order of magnitude
    # (small but non-zero; 3-minute windows resolve 20/hour steps).
    assert max(fp for _, _, fp in rows) <= 150.0
    assert any(fp > 0 for _, _, fp in rows)
