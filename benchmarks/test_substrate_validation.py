"""Substrate validation: the DCF simulator vs Bianchi's analytic model.

Not a paper figure — a credibility check on the 802.11 substrate every
uplink experiment rides on. The event-driven simulator's saturation
throughput must track the analytic model across station counts.
"""

import numpy as np

from conftest import emit
from repro.analysis.report import format_table
from repro.analysis.throughput import (
    saturation_throughput_bps,
    single_station_throughput_bps,
)
from repro.mac.dcf import DcfAccess, Medium
from repro.mac.packets import WifiFrame
from repro.mac.simulator import EventScheduler

PAYLOAD = 1470
RATE = 54e6
RUN_SECONDS = 3.0


def simulate_saturation(n_stations, seed=0):
    """Total delivered payload bits/s with n saturated stations."""
    rng = np.random.default_rng(seed)
    sched = EventScheduler()
    medium = Medium(sched, rng=rng)
    stations = []
    for i in range(n_stations):
        sta = DcfAccess(
            f"sta{i}", medium, sched, rng=np.random.default_rng(seed + i + 1)
        )
        stations.append(sta)

    def refill():
        for sta in stations:
            while sta.queue_length < 8:
                sta.enqueue(
                    WifiFrame(src=sta.name, dst="ap", payload_bytes=PAYLOAD,
                              rate_bps=RATE)
                )
        sched.schedule_in(0.5e-3, refill)

    refill()
    sched.run_until(RUN_SECONDS)
    delivered = sum(s.stats.bytes_delivered for s in stations)
    return delivered * 8 / RUN_SECONDS


def run_validation():
    rows = []
    for n in (1, 2, 5, 10):
        sim = simulate_saturation(n, seed=100 + n)
        analytic = (
            single_station_throughput_bps(PAYLOAD, RATE)
            if n == 1
            else saturation_throughput_bps(n, PAYLOAD, RATE)
        )
        rows.append((n, sim / 1e6, analytic / 1e6, sim / analytic))
    return rows


def test_dcf_simulator_matches_bianchi(once):
    rows = once(run_validation)
    emit(
        format_table(
            ["stations", "simulated (Mbps)", "Bianchi (Mbps)", "ratio"],
            [[n, f"{s:.1f}", f"{a:.1f}", f"{r:.2f}"] for n, s, a, r in rows],
            title="Substrate validation — DCF saturation throughput",
        )
    )
    for n, sim, analytic, ratio in rows:
        assert 0.7 < ratio < 1.3, (
            f"simulator diverges from Bianchi at n={n}: ratio {ratio:.2f}"
        )
    # Throughput should decline (slowly) as contention grows.
    assert rows[-1][1] < rows[0][1] * 1.1
