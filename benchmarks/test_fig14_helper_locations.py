"""Fig 14: packet delivery probability vs helper location (Fig 13 testbed).

Paper: tag + reader at location 1 (5 cm apart); helper at locations
2-5 (3-9 m, LOS and NLOS, location 5 in another room); tag sends 20
packets at 100 bps per location. "The figure shows that this
probability is high across all the helper locations ... the
communication capabilities on the uplink are fairly independent of the
Wi-Fi helper location."
"""

import numpy as np

from conftest import emit
from repro.analysis.report import format_table
from repro.core.uplink_decoder import UplinkDecoder
from repro.core.frames import UplinkFrame
from repro.errors import ReproError
from repro.sim.geometry import HELPER_LOCATIONS, helper_geometry
from repro.sim.link import helper_packet_times, simulate_uplink_stream
from repro.tag.modulator import random_payload

PACKETS_PER_LOCATION = 20


def delivery_probability(location, seed):
    rng = np.random.default_rng(seed)
    helper_to_tag, helper_to_reader, walls = helper_geometry(location)
    bit_s = 0.01  # 100 bps
    delivered = 0
    for _ in range(PACKETS_PER_LOCATION):
        payload = tuple(random_payload(16, rng))
        frame = UplinkFrame(payload_bits=payload)
        bits = frame.to_bits()
        times = helper_packet_times(
            2000.0, len(bits) * bit_s + 1.1, traffic="poisson", rng=rng
        )
        from repro.phy.backscatter_channel import LinkGeometry
        from repro.sim import calibration
        from repro.measurement import MeasurementStream
        from repro.tag.modulator import TagModulator

        # Build the channel with the location's true geometry + walls.
        channel = calibration.BackscatterChannel(
            geometry=LinkGeometry(
                helper_to_reader_m=helper_to_reader,
                helper_to_tag_m=helper_to_tag,
                tag_to_reader_m=0.05,
                walls_helper_reader=walls,
                walls_helper_tag=walls,
            ),
            tag_coupling=calibration.DEFAULTS.tag_coupling,
            tag_reader_exponent=calibration.DEFAULTS.tag_reader_exponent,
            rng=rng,
        )
        card = calibration.make_card(rng=rng)
        modulator = TagModulator(bit_duration_s=bit_s)
        tx_start = times[0] + 0.45
        modulator.load_bits(bits, tx_start)
        states = np.array([modulator.state(t) for t in times])
        records = card.measure_batch(channel.response_batch(times, states), times)
        stream = MeasurementStream()
        stream.extend(records)
        try:
            decoded = UplinkDecoder().decode_frame(
                stream, payload_len=len(payload), bit_duration_s=bit_s,
                start_time_s=tx_start,
            )
            if decoded.payload_bits == payload:
                delivered += 1
        except ReproError:
            pass
    return delivered / PACKETS_PER_LOCATION


def run_fig14():
    return {
        loc: delivery_probability(loc, seed=1400 + i)
        for i, loc in enumerate(HELPER_LOCATIONS)
    }


def test_fig14_delivery_independent_of_helper_location(once):
    table = once(run_fig14)
    rows = [
        [f"location {loc}", f"{helper_geometry(loc)[0]:.1f} m",
         "NLOS" if helper_geometry(loc)[2] else "LOS", prob]
        for loc, prob in table.items()
    ]
    emit(
        format_table(
            ["helper position", "distance to tag", "path", "P(correct packet)"],
            rows,
            title="Fig 14 — packet delivery vs helper location",
        )
    )
    # High delivery everywhere, including the other-room location 5.
    for loc, prob in table.items():
        assert prob >= 0.8, f"location {loc} delivered only {prob:.2f}"
    assert table["5"] >= 0.8  # works through the wall
