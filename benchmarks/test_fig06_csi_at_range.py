"""Fig 6: raw CSI with the tag ~1-2 m away — no distinct levels.

Paper: "at larger ranges, there are no longer two distinct levels in
the CSI measurements. Thus, we need to design a different decoding
mechanism [coding/correlation] to achieve higher ranges."
"""

import numpy as np

from conftest import emit
from repro.analysis.report import format_table
from repro.sim.link import helper_packet_times, simulate_uplink_stream
from repro.tag.modulator import alternating_bits


def level_separation(distance_m, seed):
    rng = np.random.default_rng(seed)
    bit_s = 0.01
    bits = alternating_bits(120)
    times = helper_packet_times(2000.0, len(bits) * bit_s + 1.1, rng=rng)
    stream, tx_start = simulate_uplink_stream(
        bits, bit_s, times, tag_to_reader_m=distance_m, rng=rng
    )
    csi = stream.flattened_csi()
    spread = csi.std(axis=0)
    best = int(np.argmax(spread))
    ts = stream.timestamps
    in_tx = (ts >= tx_start) & (ts < tx_start + len(bits) * bit_s)
    col = csi[in_tx, best]
    parity = np.floor((ts[in_tx] - tx_start) / bit_s).astype(int) % 2
    sep = abs(col[parity == 0].mean() - col[parity == 1].mean())
    noise = 0.5 * (col[parity == 0].std() + col[parity == 1].std())
    return sep / max(noise, 1e-12)


def run_fig06():
    near = np.mean([level_separation(0.05, s) for s in (60, 61, 62)])
    far = np.mean([level_separation(1.0, s) for s in (63, 64, 65)])
    return near, far


def test_fig06_no_levels_at_one_meter(once):
    near, far = once(run_fig06)
    emit(
        format_table(
            ["tag position", "level separation / noise"],
            [["5 cm (Fig 3)", near], ["1 m (Fig 6)", far]],
            title="Fig 6 — CSI levels merge at range",
        )
    )
    assert near > 2.0  # clear binary modulation up close
    assert far < 1.0  # indistinct at a meter: slicing breaks down
    assert near > 3 * far
