"""Fig 10(a): uplink BER vs distance using CSI, {3, 6, 30} pkts/bit.

Paper setup: Intel 5300 helper and reader on channel 6, helper 3 m
away, 90-bit payload x 20 runs (1800 bits) per point, BER floored at
~5e-4 when error-free. Expected shape: BER grows with distance, more
packets/bit is better, CSI decodes to ~65 cm at 30 pkts/bit.
"""

import numpy as np

from conftest import TRIAL_WORKERS, emit
from repro.analysis.report import log_sparkline, render_series
from repro.analysis.sweep import SweepResult
from repro.sim.link import run_uplink_ber

DISTANCES_CM = (5, 15, 25, 35, 45, 55, 65, 75)
PKTS_PER_BIT = (30, 6, 3)
REPEATS = 12


def run_fig10(mode):
    series = []
    for ppb in PKTS_PER_BIT:
        result = SweepResult(
            label=f"{ppb} pkts/bit", x_name="distance_cm", y_name="ber"
        )
        for i, cm in enumerate(DISTANCES_CM):
            ber = run_uplink_ber(
                cm / 100.0, ppb, mode=mode, repeats=REPEATS,
                seed=1000 + 17 * i + ppb, workers=TRIAL_WORKERS,
            ).ber
            result.add(float(cm), ber)
        series.append(result)
    return series


def test_fig10a_uplink_ber_vs_distance_csi(once):
    series = once(run_fig10, "csi")
    text = render_series(series, title="Fig 10(a) — uplink BER vs distance (CSI)")
    for s in series:
        text += f"\n  {s.label:<12} |{log_sparkline(s.ys)}|"
    emit(text)
    by_label = {s.label: s for s in series}
    s30 = by_label["30 pkts/bit"]
    s3 = by_label["3 pkts/bit"]
    # Shape: 30 pkts/bit works at short range and degrades by ~75 cm.
    assert s30.ys[0] < 0.01
    assert s30.ys[-1] > 0.02
    # Trend: BER grows with distance for every series (noisy Monte
    # Carlo — compare first vs last third).
    for s in series:
        assert np.mean(s.ys[-3:]) > np.mean(s.ys[:3])
    # Ordering: aggregated over the sweep, more packets/bit is better.
    assert sum(s30.ys) < sum(s3.ys)
