"""Shared helpers for the figure-regeneration benchmarks.

Every benchmark regenerates one figure of the paper's evaluation and
prints the rows/series the paper reports, plus a paper-vs-measured
summary. Run with::

    pytest benchmarks/ --benchmark-only -s

Each figure test also leaves a ``BENCH_<test>.json`` artifact under
``benchmarks/artifacts/`` (override with ``REPRO_BENCH_ARTIFACTS``)
recording wall time, the obs metric snapshot, aggregated span timings,
and the git SHA — so successive PRs can track a perf/quality
trajectory. See docs/observability.md.
"""

import json
import os
import time

import pytest

from repro import obs

#: Where per-figure artifacts land; override with REPRO_BENCH_ARTIFACTS.
ARTIFACT_DIR = os.environ.get(
    "REPRO_BENCH_ARTIFACTS",
    os.path.join(os.path.dirname(__file__), "artifacts"),
)


def emit(text: str) -> None:
    """Print a benchmark's result block (visible with -s; also kept in
    captured output otherwise)."""
    print("\n" + text + "\n")


@pytest.fixture
def obs_capture(request):
    """Observe one figure test and write its BENCH_*.json artifact.

    Yields the live :class:`~repro.obs.MetricsRegistry` so tests can
    record figure-level results as gauges. On teardown, writes wall
    time, the full metric snapshot, per-span aggregate timings, and
    the git SHA to ``benchmarks/artifacts/BENCH_<testname>.json``.
    """
    with obs.session(metrics=True, tracing=True) as (registry, tracer):
        start = time.perf_counter()
        yield registry
        wall_s = time.perf_counter() - start
        artifact = {
            "test": request.node.name,
            "wall_s": wall_s,
            "git_sha": obs.git_sha(),
            "metrics": registry.snapshot(),
            "spans": tracer.aggregate(),
        }
    name = request.node.name.replace("/", "_")
    obs.write_json(os.path.join(ARTIFACT_DIR, f"BENCH_{name}.json"), artifact)


@pytest.fixture
def once(benchmark, obs_capture):
    """Run the experiment exactly once under pytest-benchmark timing.

    Runs inside :func:`obs_capture`, so every figure regeneration gets
    a metrics/trace artifact for free.
    """

    def runner(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                                  rounds=1, iterations=1)

    return runner
