"""Shared helpers for the figure-regeneration benchmarks.

Every benchmark regenerates one figure of the paper's evaluation and
prints the rows/series the paper reports, plus a paper-vs-measured
summary. Run with::

    pytest benchmarks/ --benchmark-only -s

Each figure test leaves two artifacts:

* the full diagnostic record (wall time, metric snapshot, aggregated
  span timings, git SHA) under ``benchmarks/artifacts/`` (override
  with ``REPRO_BENCH_ARTIFACTS``), and
* the canonical trajectory artifact ``BENCH_<test>.json`` at the
  **repo root** with the schema ``{name, commit, timestamp,
  metrics{...}}`` — the location and shape the cross-PR tooling and
  ``python -m repro bench`` share. See docs/observability.md.
"""

import os
import time

import pytest

from repro import obs
from repro.obs.perf.bench import repo_root, write_root_artifact

#: Where per-figure diagnostic artifacts land; override with
#: REPRO_BENCH_ARTIFACTS.
ARTIFACT_DIR = os.environ.get(
    "REPRO_BENCH_ARTIFACTS",
    os.path.join(os.path.dirname(__file__), "artifacts"),
)

#: Trial workers for the Monte-Carlo figure regenerations; override with
#: REPRO_TRIAL_WORKERS=N (per-trial SeedSequence fan-out keeps the
#: figures bit-identical to serial at any worker count).
TRIAL_WORKERS = max(1, int(os.environ.get("REPRO_TRIAL_WORKERS", "1") or "1"))


def emit(text: str) -> None:
    """Print a benchmark's result block (visible with -s; also kept in
    captured output otherwise)."""
    print("\n" + text + "\n")


@pytest.fixture
def obs_capture(request):
    """Observe one figure test and write its BENCH_*.json artifact.

    Yields the live :class:`~repro.obs.MetricsRegistry` so tests can
    record figure-level results as gauges. On teardown, writes the
    full diagnostic record to ``benchmarks/artifacts/BENCH_<test>.json``
    and the canonical ``{name, commit, timestamp, metrics{...}}``
    trajectory artifact to ``<repo root>/BENCH_<test>.json``.
    """
    with obs.session(metrics=True, tracing=True) as (registry, tracer):
        start = time.perf_counter()
        yield registry
        wall_s = time.perf_counter() - start
        snapshot = registry.snapshot()
        artifact = {
            "test": request.node.name,
            "wall_s": wall_s,
            "git_sha": obs.git_sha(),
            "metrics": snapshot,
            "spans": tracer.aggregate(),
        }
    name = request.node.name.replace("/", "_")
    obs.write_json(os.path.join(ARTIFACT_DIR, f"BENCH_{name}.json"), artifact)
    # Canonical flat-schema artifact at the repo root: one scalar per
    # metric (counters/gauges keep their value, distributions their
    # mean), plus the wall time.
    flat = {"wall_s": wall_s}
    for metric, summary in snapshot.items():
        value = summary.get("value", summary.get("mean"))
        if isinstance(value, (int, float)):
            flat[metric] = value
    write_root_artifact(name, flat, root=repo_root(os.path.dirname(__file__)))


@pytest.fixture
def once(benchmark, obs_capture):
    """Run the experiment exactly once under pytest-benchmark timing.

    Runs inside :func:`obs_capture`, so every figure regeneration gets
    a metrics/trace artifact for free.
    """

    def runner(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                                  rounds=1, iterations=1)

    return runner
