"""Shared helpers for the figure-regeneration benchmarks.

Every benchmark regenerates one figure of the paper's evaluation and
prints the rows/series the paper reports, plus a paper-vs-measured
summary. Run with::

    pytest benchmarks/ --benchmark-only -s
"""

import pytest


def emit(text: str) -> None:
    """Print a benchmark's result block (visible with -s; also kept in
    captured output otherwise)."""
    print("\n" + text + "\n")


@pytest.fixture
def once(benchmark):
    """Run the experiment exactly once under pytest-benchmark timing."""

    def runner(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                                  rounds=1, iterations=1)

    return runner
