"""Fig 20: correlation length needed vs distance (long-range uplink).

Paper: helper 3 m from reader; the tag encodes bits as length-L
orthogonal codes; measured is the L at which BER < 1e-2 at each
distance. "Using a correlation length of 20 bits, we establish the
uplink at about 1.6 meters ... at distances of 2.1 meters, we need a
correlation length of about 150 bits."

Reported here: (a) the paper-anchored analytic model's L(d) curve, and
(b) a Monte-Carlo measurement of the real correlation decoder over the
simulated channel at 5 packets/chip. The simulated decoder integrates
more coherently than the authors' hardware (its CSI quantization is
noise-dithered), so its required L is smaller — the shape (monotone,
super-linear growth) is the reproduction target; see EXPERIMENTS.md.
"""

import numpy as np

from conftest import TRIAL_WORKERS, emit
from repro.analysis.ber import CorrelationRangeModel
from repro.analysis.report import render_series
from repro.analysis.sweep import SweepResult
from repro.sim.link import run_correlation_trial

DISTANCES_M = (0.8, 1.2, 1.6, 2.0, 2.2)
CANDIDATE_LENGTHS = (4, 8, 12, 20, 32, 60, 100, 150)
TRIALS = 3
BITS_PER_TRIAL = 10


def measured_required_length(distance_m, seed):
    """Smallest candidate L with zero errors across the trials."""
    for length in CANDIDATE_LENGTHS:
        errors = 0
        for t in range(TRIALS):
            trial = run_correlation_trial(
                distance_m,
                length,
                num_bits=BITS_PER_TRIAL,
                packets_per_chip=5.0,
                rng=np.random.default_rng(seed + 1000 * t + length),
                workers=TRIAL_WORKERS,
            )
            errors += trial.errors
        if errors == 0:
            return length
    return CANDIDATE_LENGTHS[-1]


def run_fig20():
    measured = SweepResult(
        label="simulated decoder L", x_name="distance_m", y_name="L"
    )
    analytic = SweepResult(
        label="paper-anchored model L", x_name="distance_m", y_name="L"
    )
    model = CorrelationRangeModel()
    for i, d in enumerate(DISTANCES_M):
        measured.add(d, float(measured_required_length(d, seed=2000 + i)))
        analytic.add(d, float(model.required_code_length(d)))
    return measured, analytic


def test_fig20_required_length_grows_with_distance(once):
    measured, analytic = once(run_fig20)
    emit(
        render_series(
            [measured, analytic],
            title="Fig 20 — correlation length needed for BER < 1e-2",
        )
    )
    # Analytic model reproduces the paper's anchors.
    a = dict(zip(analytic.xs, analytic.ys))
    assert 10 <= a[1.6] <= 30  # paper: ~20
    assert 100 <= a[2.2] or 100 <= a[2.0] or a[2.0] >= 80  # paper: ~150 at 2.1
    # The analytic curve grows monotonically with distance.
    assert list(analytic.ys) == sorted(analytic.ys)
    # The measured curve trends upward (individual points bounce with
    # the multipath realization, as in a real room): the far end needs
    # a longer code than the near end.
    m = dict(zip(measured.xs, measured.ys))
    assert m[2.2] >= 4 * m[0.8]
    assert np.mean(measured.ys[-2:]) > np.mean(measured.ys[:2])
    # Growth is super-linear in distance for the analytic curve.
    assert a[2.2] / a[1.2] > (2.2 / 1.2) ** 2
