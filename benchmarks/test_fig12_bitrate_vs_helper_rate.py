"""Fig 12: achievable uplink bit rate vs helper transmission rate.

Paper: reader and tag 5 cm apart, helper 3 m away; tested tag rates
{100, 200, 500, 1000} bps; "the achievable bit rate is the maximum bit
rate ... decoded at the Wi-Fi reader with a BER less than 1e-2. The
bit rate is around 100 bits/s at a helper transmission rate of 500
packets/s and is 1 kbps when the transmission rate is about 3070
packets/s."
"""

import numpy as np

from conftest import emit
from repro.analysis.report import render_series
from repro.analysis.sweep import SweepResult
from repro.core.barker import barker_bits
from repro.core.uplink_decoder import UplinkDecoder
from repro.sim.link import helper_packet_times, simulate_uplink_stream
from repro.sim.metrics import achievable_bit_rate, ber_with_floor, bit_errors
from repro.tag.modulator import random_payload

HELPER_RATES_PPS = (240, 500, 1000, 1500, 2070, 3070)
TAG_RATES_BPS = (100.0, 200.0, 500.0, 1000.0)
REPEATS = 4


def single_run_ber(tag_rate, helper_pps, rng):
    bit_s = 1.0 / tag_rate
    payload = random_payload(60, rng)
    bits = barker_bits() + payload
    # §7.2 injects traffic with a fixed inter-packet delay, so the
    # arrival process is near-CBR rather than Poisson.
    times = helper_packet_times(
        helper_pps, len(bits) * bit_s + 1.1, traffic="cbr", rng=rng
    )
    stream, tx_start = simulate_uplink_stream(
        bits, bit_s, times, tag_to_reader_m=0.05, rng=rng
    )
    result = UplinkDecoder().decode_bits(
        stream, len(payload), bit_s, start_time_s=tx_start
    )
    return ber_with_floor(bit_errors(payload, result.bits), len(payload))


def run_fig12():
    """Per the paper: 'We compute the average achievable bit rate by
    taking the mean of the achievable bit rates across multiple runs.'"""
    result = SweepResult(
        label="achievable bit rate (bps)",
        x_name="helper_pkts_per_s",
        y_name="bps",
    )
    for i, pps in enumerate(HELPER_RATES_PPS):
        per_run = []
        for r in range(REPEATS):
            rng = np.random.default_rng(1200 + 97 * i + r)
            rate_to_ber = {
                rate: single_run_ber(rate, pps, rng)
                for rate in TAG_RATES_BPS
                # A tag rate needing more than the helper offers is
                # pointless to test (every bit would see < 1 packet).
                if rate <= pps
            }
            per_run.append(achievable_bit_rate(rate_to_ber, ber_target=0.02))
        result.add(float(pps), float(np.mean(per_run)))
    return result


def test_fig12_bitrate_tracks_helper_rate(once):
    result = once(run_fig12)
    emit(render_series([result], title="Fig 12 — bit rate vs helper tx rate"))
    rates = dict(zip(result.xs, result.ys))
    # Paper's two quoted operating points: ~100 bps at 500 pkts/s,
    # ~1 kbps at 3070 pkts/s.
    assert rates[500.0] >= 100.0
    assert rates[3070.0] >= 750.0
    # Higher helper rates never reduce the achievable rate much
    # (allow small Monte-Carlo wiggle).
    assert rates[3070.0] >= rates[500.0]
    assert rates[1000.0] >= rates[240.0]
