"""Fig 15: achievable uplink rate from ambient office traffic vs time.

Paper: reader 5 cm from the tag, helper in monitor mode capturing "all
the packets transmitted by the organization's AP"; experiments every
10 minutes from 12 PM to 8 PM. "The achievable bit rate is
proportional to the number of packets on the network" — 100 to
~250 bps as load swings between ~100 and ~1100 packets/s.
"""

import numpy as np

from conftest import emit
from repro.analysis.report import render_series
from repro.analysis.sweep import SweepResult
from repro.core.barker import barker_bits
from repro.core.uplink_decoder import UplinkDecoder
from repro.mac.traffic import office_load_pps
from repro.sim.link import helper_packet_times, simulate_uplink_stream
from repro.sim.metrics import achievable_bit_rate, ber_with_floor, bit_errors
from repro.tag.modulator import random_payload
from repro.traces.synthetic import hours_range

HOURS = hours_range(12.0, 20.0, 1.0)
TESTED_RATES = (50.0, 100.0, 150.0, 200.0, 250.0)
REPEATS = 3


def ambient_ber(tag_rate, load_pps, seed):
    rng = np.random.default_rng(seed)
    errors = total = 0
    for _ in range(REPEATS):
        bit_s = 1.0 / tag_rate
        payload = random_payload(40, rng)
        bits = barker_bits() + payload
        # Ambient traffic is bursty/Poisson, not injected CBR.
        times = helper_packet_times(
            load_pps, len(bits) * bit_s + 1.1, traffic="poisson", rng=rng
        )
        stream, tx_start = simulate_uplink_stream(
            bits, bit_s, times, tag_to_reader_m=0.05, rng=rng
        )
        result = UplinkDecoder().decode_bits(
            stream, len(payload), bit_s, start_time_s=tx_start
        )
        errors += bit_errors(payload, result.bits)
        total += len(payload)
    return ber_with_floor(errors, total)


def run_fig15():
    rate_series = SweepResult(
        label="uplink bit rate (bps)", x_name="hour", y_name="bps"
    )
    load_series = SweepResult(
        label="network load (pkts/s)", x_name="hour", y_name="pps"
    )
    for i, hour in enumerate(HOURS):
        load = office_load_pps(hour)
        rate_to_ber = {
            rate: ambient_ber(rate, load, seed=1500 + 13 * i + int(rate))
            for rate in TESTED_RATES
        }
        rate_series.add(hour, achievable_bit_rate(rate_to_ber))
        load_series.add(hour, load)
    return rate_series, load_series


def test_fig15_rate_tracks_network_load(once):
    rate_series, load_series = once(run_fig15)
    emit(
        render_series(
            [load_series, rate_series],
            title="Fig 15 — achievable rate from ambient traffic vs time of day",
        )
    )
    rates = np.asarray(rate_series.ys)
    loads = np.asarray(load_series.ys)
    # Everything decodes at some rate (the link works from ambient
    # traffic alone), in the paper's 50-250 bps band.
    assert rates.min() >= 50.0
    assert rates.max() <= 250.0
    # The achievable rate is correlated with network load.
    corr = np.corrcoef(loads, rates)[0, 1]
    assert corr > 0.5
    # Peak-hour rate beats evening rate.
    assert rates[HOURS.index(14.0)] >= rates[HOURS.index(20.0)]
