"""Ablation benches for the design choices DESIGN.md §5 calls out.

Each ablation removes one mechanism the paper's design argues for and
measures the cost:

* hysteresis slicing vs a plain zero-threshold under spurious CSI
  glitches (§3.2 bullet 3);
* majority voting vs soft averaging across a bit's measurements;
* timestamp binning vs naive fixed-count grouping under bursty
  traffic (§3.2 bullet 2 / §5);
* peak-detection vs average-energy detection of OFDM packets at the
  tag (§4.2's core circuit argument).

(The frequency-diversity ablation — the paper's own — is Fig 11.)
"""

import numpy as np

from conftest import emit
from repro.analysis.report import format_table
from repro.core.barker import barker_bits
from repro.core.conditioning import condition
from repro.core.slicer import (
    HysteresisThresholds,
    bin_by_timestamp,
    compute_thresholds,
    hysteresis_slice,
    majority_vote_bits,
    soft_average_bits,
)
from repro.core.uplink_decoder import UplinkDecoder
from repro.phy.noise import SpuriousGlitchModel
from repro.sim import calibration
from repro.sim.link import helper_packet_times, simulate_uplink_stream
from repro.sim.metrics import ber_with_floor, bit_errors
from repro.tag.modulator import random_payload


# -- ablation 1: hysteresis vs plain threshold under glitches -----------------


def run_hysteresis_ablation():
    """Per-measurement slicing with/without the dead band, on a noisy
    combined statistic with spurious glitch excursions mixed in."""
    rng = np.random.default_rng(10)
    n = 20_000
    truth = rng.integers(0, 2, n // 10)  # 10 measurements per bit
    signal = np.repeat(2.0 * truth - 1.0, 10).astype(float)
    values = signal + rng.normal(scale=0.45, size=n)
    # Spurious mid-scale excursions (the Intel card's glitches land the
    # statistic inside the decision region).
    glitchy = rng.random(n) < 0.02
    values[glitchy] = rng.uniform(-0.45, 0.45, size=int(glitchy.sum()))

    th = compute_thresholds(values, width=0.5)
    with_hyst = hysteresis_slice(values, th)
    plain = (values > values.mean()).astype(int)
    truth_m = np.repeat(truth, 10)
    return (
        float(np.mean(with_hyst != truth_m)),
        float(np.mean(plain != truth_m)),
        int(glitchy.sum()),
    )


def test_ablation_hysteresis(once):
    hyst_err, plain_err, n_glitches = once(run_hysteresis_ablation)
    emit(
        format_table(
            ["slicer", "per-measurement error rate"],
            [
                ["hysteresis (paper)", hyst_err],
                ["plain threshold", plain_err],
            ],
            title=f"Ablation — hysteresis vs plain slicing "
            f"({n_glitches} spurious measurements injected)",
        )
    )
    assert hyst_err < plain_err


# -- ablation 2: majority vote vs soft averaging ------------------------------


def run_vote_ablation():
    """Both per-bit aggregators over the same mid-range streams."""
    rng = np.random.default_rng(11)
    results = {"majority": 0, "soft": 0}
    total = 0
    for trial in range(8):
        payload = random_payload(60, rng)
        bits = barker_bits() + payload
        bit_s = 0.01
        times = helper_packet_times(3000.0, len(bits) * bit_s + 1.1, rng=rng)
        stream, tx_start = simulate_uplink_stream(
            bits, bit_s, times, tag_to_reader_m=0.5, rng=rng
        )
        decoder = UplinkDecoder()
        res = decoder.decode_bits(
            stream, len(payload), bit_s, start_time_s=tx_start
        )
        data_start = tx_start + 13 * bit_s
        soft = soft_average_bits(
            res.combined, stream.timestamps, data_start, bit_s, len(payload)
        )
        results["majority"] += bit_errors(payload, res.bits)
        results["soft"] += bit_errors(payload, soft.bits)
        total += len(payload)
    return results, total


def test_ablation_majority_vs_soft(once):
    results, total = once(run_vote_ablation)
    emit(
        format_table(
            ["per-bit aggregator", "BER @ 50 cm"],
            [
                ["hysteresis + majority vote (paper)",
                 ber_with_floor(results["majority"], total)],
                ["soft averaging",
                 ber_with_floor(results["soft"], total)],
            ],
            title="Ablation — majority vote vs soft averaging",
        )
    )
    # Both work; they must be within the same order of magnitude (the
    # paper's choice is about robustness, not raw SNR).
    assert results["majority"] <= 3 * results["soft"] + 5
    assert results["soft"] <= 3 * results["majority"] + 5


# -- ablation 3: timestamp binning vs fixed-count grouping --------------------


def run_binning_ablation():
    """Decode bursty-traffic streams grouping measurements by timestamp
    (paper) vs by fixed count (naive)."""
    rng = np.random.default_rng(12)
    ts_errors = count_errors = total = 0
    for trial in range(8):
        payload = random_payload(60, rng)
        bits = barker_bits() + payload
        bit_s = 0.01
        times = helper_packet_times(
            2000.0, len(bits) * bit_s + 1.1, traffic="poisson", rng=rng
        )
        stream, tx_start = simulate_uplink_stream(
            bits, bit_s, times, tag_to_reader_m=0.1, rng=rng
        )
        decoder = UplinkDecoder()
        res = decoder.decode_bits(
            stream, len(payload), bit_s, start_time_s=tx_start
        )
        ts_errors += bit_errors(payload, res.bits)
        # Naive grouping: chop the post-preamble decisions into equal
        # chunks of the *average* packets-per-bit.
        data_start = tx_start + 13 * bit_s
        sel = stream.timestamps >= data_start
        decisions = (res.combined[sel] > 0).astype(int)
        per_bit = max(1, len(decisions) // len(payload))
        naive = []
        for k in range(len(payload)):
            chunk = decisions[k * per_bit : (k + 1) * per_bit]
            naive.append(1 if chunk.sum() * 2 >= len(chunk) else 0)
        count_errors += bit_errors(payload, naive)
        total += len(payload)
    return ts_errors, count_errors, total


def test_ablation_timestamp_binning(once):
    ts_errors, count_errors, total = once(run_binning_ablation)
    emit(
        format_table(
            ["grouping", "BER under Poisson traffic"],
            [
                ["timestamp binning (paper)", ber_with_floor(ts_errors, total)],
                ["fixed-count grouping", ber_with_floor(count_errors, total)],
            ],
            title="Ablation — timestamp binning vs fixed-count grouping",
        )
    )
    # Fixed-count grouping drifts out of phase under bursty arrivals.
    assert ts_errors < count_errors


# -- ablation 4: peak detection vs average-energy detection -------------------


def run_detector_ablation():
    """Maximum detection range of the tag's passive receiver with peak
    detection vs average-energy detection.

    The paper's argument (§4.2) is about *sensitivity*, not statistics:
    a passive detector + comparator can only react to instantaneous
    voltage above its floor — it cannot integrate. "The average energy
    in the Wi-Fi signal is small, with occasional peaks spread out
    during the transmission", so a peak detector fires on the peaks
    while an average-energy detector needs the *mean* above the same
    floor — costing the PAPR (~9 dB) in link budget.
    """
    from repro import units
    from repro.phy.ofdm import OfdmEnvelopeModel
    from repro.phy.pathloss import LogDistancePathLoss
    from repro.phy import constants as phyc
    from repro.tag.receiver_circuit import ReceiverCircuit

    rng = np.random.default_rng(13)
    duration = 50e-6
    model = OfdmEnvelopeModel(rng=rng)
    circuit = ReceiverCircuit()
    floor_w = circuit.minimum_detectable_power_w()
    tx_power_w = units.dbm_to_watts(16.0)
    pathloss = LogDistancePathLoss(
        frequency_hz=phyc.channel_center_frequency(phyc.DEFAULT_CHANNEL)
    )

    def detect_prob(distance_m, detector):
        rx = tx_power_w * pathloss.power_gain(distance_m)
        hits = 0
        trials = 300
        for _ in range(trials):
            env = model.envelope(duration, rx)
            value = env.max() if detector == "peak" else env.mean()
            hits += int(value > floor_w)
        return hits / trials

    def max_range(detector):
        lo, hi = 0.05, 20.0
        if detect_prob(lo, detector) < 0.99:
            return 0.0
        for _ in range(24):
            mid = 0.5 * (lo + hi)
            if detect_prob(mid, detector) >= 0.99:
                lo = mid
            else:
                hi = mid
        return lo

    return {d: max_range(d) for d in ("peak", "average")}


def test_ablation_peak_vs_average_energy(once):
    ranges = once(run_detector_ablation)
    emit(
        format_table(
            ["detector", "max range for 99% detection of a 50 us packet"],
            [[name, f"{r:.2f} m"] for name, r in ranges.items()],
            title="Ablation — peak vs average-energy detection "
            "(same comparator floor)",
        )
    )
    # The PAPR advantage: peaks cross the floor well beyond the point
    # where the mean does (~sqrt(PAPR) in range under exponent 2).
    assert ranges["peak"] > 1.5 * ranges["average"]
