"""Fig 10(b): uplink BER vs distance using RSSI, {3, 6, 30} pkts/bit.

Same setup as Fig 10(a), decoding from per-antenna RSSI only. Expected
shape: like CSI but with roughly half the range ("ranges of about
65 cm and 30 cm using CSI and RSSI respectively").
"""

import numpy as np

from conftest import TRIAL_WORKERS, emit
from repro.analysis.report import log_sparkline, render_series
from test_fig10a_uplink_ber_csi import DISTANCES_CM, run_fig10
from repro.sim.link import run_uplink_ber


def test_fig10b_uplink_ber_vs_distance_rssi(once):
    series = once(run_fig10, "rssi")
    text = render_series(series, title="Fig 10(b) — uplink BER vs distance (RSSI)")
    for s in series:
        text += f"\n  {s.label:<12} |{log_sparkline(s.ys)}|"
    emit(text)
    by_label = {s.label: s for s in series}
    s30 = by_label["30 pkts/bit"]
    # RSSI works near contact but is already failing around 45-55 cm.
    assert s30.ys[0] < 0.02
    assert np.mean(s30.ys[4:]) > 0.02  # >= 45 cm
    for s in series:
        assert np.mean(s.ys[-3:]) > np.mean(s.ys[:3])


def test_fig10_rssi_range_half_of_csi(once):
    """Cross-figure check: the CSI/RSSI range ratio from the paper."""

    def ber_pair():
        csi_mid = run_uplink_ber(0.50, 30, mode="csi", repeats=12, seed=77,
                                 workers=TRIAL_WORKERS).ber
        rssi_mid = run_uplink_ber(0.50, 30, mode="rssi", repeats=12, seed=77,
                                  workers=TRIAL_WORKERS).ber
        rssi_near = run_uplink_ber(0.18, 30, mode="rssi", repeats=12, seed=78,
                                   workers=TRIAL_WORKERS).ber
        return csi_mid, rssi_mid, rssi_near

    csi_mid, rssi_mid, rssi_near = once(ber_pair)
    emit(
        f"Fig 10 cross-check: @50cm CSI={csi_mid:.2e} RSSI={rssi_mid:.2e}; "
        f"@18cm RSSI={rssi_near:.2e}"
    )
    # At 50 cm CSI still works while RSSI is degrading; near its rated
    # range RSSI works.
    assert csi_mid < rssi_mid
    assert rssi_near < 0.03
