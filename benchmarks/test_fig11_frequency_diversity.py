"""Fig 11: our algorithm vs a random single sub-channel.

Paper: "using a random Wi-Fi sub-channel performs poorly and does not
operate reliably at distances greater than 15 centimeters. In
contrast, our algorithm significantly reduces the BER and also
operates at much larger distances." 30 packets/bit.
"""

import numpy as np

from conftest import emit
from repro.analysis.report import log_sparkline, render_series
from repro.analysis.sweep import SweepResult
from repro.core.barker import barker_bits
from repro.core.conditioning import condition
from repro.core.slicer import majority_vote_bits
from repro.core.uplink_decoder import UplinkDecoder
from repro.sim.link import helper_packet_times, simulate_uplink_stream
from repro.sim.metrics import ber_with_floor, bit_errors
from repro.tag.modulator import random_payload

DISTANCES_CM = (5, 15, 25, 35, 45, 55, 65)
REPEATS = 10


def one_trial(distance_m, rng):
    bit_s = 0.01
    payload = random_payload(90, rng)
    bits = barker_bits() + payload
    times = helper_packet_times(3000.0, len(bits) * bit_s + 1.1, rng=rng)
    stream, tx_start = simulate_uplink_stream(
        bits, bit_s, times, tag_to_reader_m=distance_m, rng=rng
    )
    # Our algorithm: the full pipeline.
    decoder = UplinkDecoder()
    ours = decoder.decode_bits(
        stream, len(payload), bit_s, start_time_s=tx_start
    )
    err_ours = bit_errors(payload, ours.bits)
    # Random sub-channel: pick one of the 90 channels uniformly and
    # threshold it directly.
    matrix = stream.flattened_csi()
    cond = condition(matrix, stream.timestamps)
    ch = int(rng.integers(0, matrix.shape[1]))
    decisions = (cond.normalized[:, ch] > 0).astype(int)
    sliced = majority_vote_bits(
        decisions, stream.timestamps, tx_start + 13 * bit_s, bit_s, len(payload)
    )
    err_rand = bit_errors(payload, sliced.bits)
    err_rand = min(err_rand, len(payload) - err_rand)  # polarity-free
    return err_ours, err_rand, len(payload)


def run_fig11():
    ours = SweepResult(label="our algorithm", x_name="distance_cm", y_name="ber")
    rand = SweepResult(label="random sub-channel", x_name="distance_cm", y_name="ber")
    for i, cm in enumerate(DISTANCES_CM):
        rng = np.random.default_rng(1100 + i)
        e_ours = e_rand = total = 0
        for _ in range(REPEATS):
            a, b, n = one_trial(cm / 100.0, rng)
            e_ours += a
            e_rand += b
            total += n
        ours.add(float(cm), ber_with_floor(e_ours, total))
        rand.add(float(cm), ber_with_floor(e_rand, total))
    return ours, rand


def test_fig11_diversity_beats_random_subchannel(once):
    ours, rand = once(run_fig11)
    text = render_series(
        [ours, rand], title="Fig 11 — effect of frequency diversity on BER"
    )
    text += f"\n  ours   |{log_sparkline(ours.ys)}|"
    text += f"\n  random |{log_sparkline(rand.ys)}|"
    emit(text)
    # Our algorithm must dominate overall.
    assert sum(ours.ys) < sum(rand.ys)
    # Random sub-channel is unreliable beyond short range (> 1e-2 BER
    # for most distances past 15 cm).
    beyond = [y for x, y in zip(rand.xs, rand.ys) if x > 15]
    assert np.median(beyond) > 1e-2
    # Our algorithm stays reliable through mid-range (allowing for
    # Monte-Carlo variance around the 1e-2 operating point).
    mid = [y for x, y in zip(ours.xs, ours.ys) if x <= 45]
    assert max(mid) < 0.03
