"""Fig 4: PDF of normalized channel values across the 30 sub-channels.

Paper: computed over 42,000 packets with the tag adjacent; "for about
30 percent of the Wi-Fi sub-channels, we see two Gaussian signals
centered at +1 and -1 ... the variance changes significantly with the
sub-channel ... some of the sub-channels do not see two distinct
Gaussian signals" — i.e. strong frequency diversity.

Substitution note: our calibrated tag coupling makes virtually every
sub-channel bimodal at 5 cm, so the diversity regime the paper shows
sits a little further out; this bench measures at 20 cm where the
same mixed picture (strong / weak / blind sub-channels) appears.
"""

import numpy as np

from conftest import emit
from repro.analysis.report import format_table
from repro.core.conditioning import condition
from repro.sim.link import helper_packet_times, simulate_uplink_stream
from repro.tag.modulator import alternating_bits


def run_fig04():
    rng = np.random.default_rng(4)
    bit_s = 0.01
    n_bits = 220
    bits = alternating_bits(n_bits)
    # High packet rate to approach the paper's 42k packet count.
    times = helper_packet_times(3000.0, n_bits * bit_s + 1.1, rng=rng)
    stream, tx_start = simulate_uplink_stream(
        bits, bit_s, times, tag_to_reader_m=0.20, rng=rng
    )
    csi = stream.csi_matrix()[:, 0, :]  # antenna 0's 30 sub-channels
    cond = condition(csi, stream.timestamps)
    ts = stream.timestamps
    in_tx = (ts >= tx_start) & (ts < tx_start + n_bits * bit_s)
    normalized = cond.normalized[in_tx]
    bit_sign = 1.0 - 2.0 * (np.floor((ts[in_tx] - tx_start) / bit_s) % 2)
    bimodal = 0
    separations = []
    for ch in range(normalized.shape[1]):
        ones = normalized[bit_sign > 0, ch]
        zeros = normalized[bit_sign < 0, ch]
        sep = abs(ones.mean() - zeros.mean())
        width = 0.5 * (ones.std() + zeros.std())
        separations.append(sep)
        if sep > 2 * width:
            bimodal += 1
    return len(normalized), bimodal, separations


def test_fig04_pdf_shows_frequency_diversity(once):
    n_packets, bimodal, separations = once(run_fig04)
    separations = np.asarray(separations)
    emit(
        format_table(
            ["quantity", "value"],
            [
                ["packets analysed", n_packets],
                ["sub-channels with two clear Gaussians", f"{bimodal}/30"],
                ["strongest separation", separations.max()],
                ["weakest separation", separations.min()],
                ["separation spread (max/min)", separations.max() / max(separations.min(), 1e-9)],
            ],
            title="Fig 4 — normalized channel value PDFs across 30 sub-channels",
        )
    )
    # Paper: ~30% bimodal; diversity = some channels strong, some blind.
    assert 3 <= bimodal <= 25
    assert separations.max() > 3 * separations.min()
